"""Stationary discrete-time Markov chains with named states.

This is the substrate for the paper's *service requester* (Definition
3.2) and for any autonomous component of the system model.  The chain is
defined on a slotted time axis; state transition times are geometrically
distributed (paper Eq. 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_stochastic_matrix,
)


class MarkovChain:
    """A stationary Markov chain over a finite, named state set.

    Parameters
    ----------
    transition_matrix:
        Row-stochastic matrix ``P`` where ``P[i, j]`` is the one-step
        probability of moving from state ``i`` to state ``j``.
    state_names:
        Optional names for the states; defaults to ``"0", "1", ...``.
        Names must be unique.

    Examples
    --------
    The paper's bursty service requester (Example 3.2)::

        >>> sr = MarkovChain([[0.95, 0.05], [0.15, 0.85]], ["0", "1"])
        >>> sr.n_states
        2
        >>> float(round(sr.stationary_distribution()[1], 3))
        0.25
    """

    def __init__(self, transition_matrix, state_names: Sequence[str] | None = None):
        self._matrix = check_stochastic_matrix(transition_matrix, "transition_matrix")
        n = self._matrix.shape[0]
        if state_names is None:
            state_names = [str(i) for i in range(n)]
        names = [str(s) for s in state_names]
        if len(names) != n:
            raise ValidationError(
                f"{len(names)} state names given for a {n}-state chain"
            )
        if len(set(names)) != len(names):
            raise ValidationError(f"state names must be unique, got {names}")
        self._names = tuple(names)
        self._index = {name: i for i, name in enumerate(names)}

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states in the chain."""
        return self._matrix.shape[0]

    @property
    def state_names(self) -> tuple[str, ...]:
        """Tuple of state names, in index order."""
        return self._names

    @property
    def matrix(self) -> np.ndarray:
        """A copy of the transition matrix."""
        return self._matrix.copy()

    def state_index(self, name: str) -> int:
        """Return the index of the state called ``name``."""
        try:
            return self._index[str(name)]
        except KeyError:
            raise KeyError(f"unknown state {name!r}; states are {self._names}") from None

    def transition_probability(self, src, dst) -> float:
        """One-step probability of ``src -> dst`` (names or indices)."""
        i = src if isinstance(src, (int, np.integer)) else self.state_index(src)
        j = dst if isinstance(dst, (int, np.integer)) else self.state_index(dst)
        return float(self._matrix[i, j])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarkovChain(n_states={self.n_states}, states={self._names})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, MarkovChain):
            return NotImplemented
        return self._names == other._names and np.allclose(
            self._matrix, other._matrix, atol=1e-12
        )

    # ------------------------------------------------------------------
    # distribution evolution
    # ------------------------------------------------------------------
    def step_distribution(self, distribution) -> np.ndarray:
        """Advance a state distribution one slice: ``p' = p P``."""
        p = check_distribution(distribution, "distribution")
        if p.size != self.n_states:
            raise ValidationError(
                f"distribution has {p.size} entries for a {self.n_states}-state chain"
            )
        return p @ self._matrix

    def distribution_at(self, distribution, t: int) -> np.ndarray:
        """Return the state distribution after ``t`` slices."""
        if t < 0:
            raise ValidationError(f"t must be >= 0, got {t}")
        p = check_distribution(distribution, "distribution")
        result = p
        for _ in range(int(t)):
            result = result @ self._matrix
        return result

    def stationary_distribution(self) -> np.ndarray:
        """Stationary distribution ``pi`` with ``pi P = pi``.

        Computed as the null space of ``(P^T - I)`` with the simplex
        normalisation added; for chains with several recurrent classes an
        arbitrary stationary distribution is returned.
        """
        from repro.markov.analysis import stationary_distribution

        return stationary_distribution(self._matrix)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_path(
        self,
        n_steps: int,
        rng: np.random.Generator,
        initial_state: int | str | None = None,
    ) -> np.ndarray:
        """Sample a state trajectory of ``n_steps`` transitions.

        Parameters
        ----------
        n_steps:
            Number of transitions; the returned array has ``n_steps + 1``
            entries including the initial state.
        rng:
            NumPy random generator (the caller owns seeding, see
            :mod:`repro.sim.rng`).
        initial_state:
            Starting state (name or index).  ``None`` draws it from the
            stationary distribution.
        """
        if initial_state is None:
            start = int(
                rng.choice(self.n_states, p=self.stationary_distribution())
            )
        elif isinstance(initial_state, (int, np.integer)):
            start = int(initial_state)
            if not 0 <= start < self.n_states:
                raise ValidationError(f"initial_state {start} out of range")
        else:
            start = self.state_index(initial_state)

        path = np.empty(int(n_steps) + 1, dtype=np.int64)
        path[0] = start
        # Pre-draw uniforms and walk the cumulative rows: one pass, no
        # per-step allocation of choice machinery.
        cumulative = np.cumsum(self._matrix, axis=1)
        uniforms = rng.random(int(n_steps))
        current = start
        for step in range(int(n_steps)):
            current = int(np.searchsorted(cumulative[current], uniforms[step]))
            if current >= self.n_states:  # guard against cumsum rounding
                current = self.n_states - 1
            path[step + 1] = current
        return path
