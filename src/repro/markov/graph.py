"""State-transition-diagram export (paper Figs. 2-4 and 8(a)).

The paper communicates its models as state-transition diagrams — "a
directed graph whose nodes are states, and whose edges are labeled with
conditional transition probabilities" (Section III-A).  This module
renders any chain of the library in three forms:

* a :mod:`networkx` digraph (for programmatic analysis of the model's
  topology — reachability, transient structure);
* a text edge table (the printable form of the figures);
* Graphviz DOT source (paste into ``dot -Tpng`` to draw the figure).

The ``fig8a`` experiment uses these to regenerate the disk drive's
transition-graph figure and verify its stated structural invariants.
"""

from __future__ import annotations

import networkx as nx

from repro.markov.chain import MarkovChain
from repro.markov.controlled import ControlledMarkovChain
from repro.util.tables import format_table
from repro.util.validation import ValidationError

#: Probabilities below this are treated as absent edges.
EDGE_TOL = 1e-12


def chain_graph(chain: MarkovChain) -> "nx.DiGraph":
    """Digraph of a plain Markov chain; edges carry ``probability``."""
    graph = nx.DiGraph()
    graph.add_nodes_from(chain.state_names)
    matrix = chain.matrix
    for i, src in enumerate(chain.state_names):
        for j, dst in enumerate(chain.state_names):
            if matrix[i, j] > EDGE_TOL:
                graph.add_edge(src, dst, probability=float(matrix[i, j]))
    return graph


def controlled_graph(
    chain: ControlledMarkovChain, command=None
) -> "nx.DiGraph":
    """Digraph of a controlled chain.

    With ``command`` given, edges carry that command's probabilities
    (attribute ``probability``).  Without it, an edge exists when *any*
    command enables the transition, and the attribute ``probabilities``
    maps command name to value — the labelling convention of the
    paper's Fig. 2 ("each edge is labeled with two transition
    probabilities, one for each command").
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(chain.state_names)
    if command is not None:
        matrix = chain.matrix(command)
        for i, src in enumerate(chain.state_names):
            for j, dst in enumerate(chain.state_names):
                if matrix[i, j] > EDGE_TOL:
                    graph.add_edge(src, dst, probability=float(matrix[i, j]))
        return graph

    tensor = chain.tensor
    for i, src in enumerate(chain.state_names):
        for j, dst in enumerate(chain.state_names):
            labels = {
                chain.command_names[a]: float(tensor[a, i, j])
                for a in range(chain.n_commands)
                if tensor[a, i, j] > EDGE_TOL
            }
            if labels:
                graph.add_edge(src, dst, probabilities=labels)
    return graph


def edge_table(chain: ControlledMarkovChain, states=None) -> str:
    """Printable edge list, optionally restricted to edges touching
    ``states`` (the paper's Fig. 8(a) shows only transitions from and
    to the active state "for the sake of readability")."""
    focus = None
    if states is not None:
        focus = {str(s) for s in states}
        unknown = focus - set(chain.state_names)
        if unknown:
            raise ValidationError(
                f"unknown states {sorted(unknown)}; chain has "
                f"{chain.state_names}"
            )
    graph = controlled_graph(chain)
    rows = []
    for src, dst, data in graph.edges(data=True):
        if focus is not None and src not in focus and dst not in focus:
            continue
        if src == dst:
            continue  # self-loops clutter the figure
        label = ", ".join(
            f"{cmd}: {p:.4g}" for cmd, p in sorted(data["probabilities"].items())
        )
        rows.append((src, dst, label))
    rows.sort()
    return format_table(
        ["from", "to", "P(transition | command)"],
        rows,
        title="state-transition edges",
    )


def to_dot(chain: ControlledMarkovChain, command=None) -> str:
    """Graphviz DOT source for the transition diagram."""
    graph = controlled_graph(chain, command)
    lines = ["digraph chain {", "  rankdir=LR;"]
    for node in graph.nodes:
        lines.append(f'  "{node}";')
    for src, dst, data in graph.edges(data=True):
        if "probability" in data:
            label = f"{data['probability']:.3g}"
        else:
            label = ", ".join(
                f"{cmd}:{p:.3g}" for cmd, p in sorted(data["probabilities"].items())
            )
        lines.append(f'  "{src}" -> "{dst}" [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def reachable_from(chain: ControlledMarkovChain, source, command) -> set[str]:
    """States reachable from ``source`` while holding ``command``."""
    graph = controlled_graph(chain, command)
    src = chain.state_names[chain.state_index(source)]
    return set(nx.descendants(graph, src)) | {src}
