"""Stationary *controlled* Markov chains (one transition matrix per command).

This is the substrate for the paper's service provider (Definition 3.1)
and for the composed system chain of Section III: a finite-state chain
whose one-step transition matrix is selected each slice by the command
``a`` issued by the power manager.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.markov.chain import MarkovChain
from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_stochastic_matrix,
)


class ControlledMarkovChain:
    """A controlled Markov chain: ``P^a`` for each command ``a``.

    Parameters
    ----------
    matrices:
        Mapping from command name to a row-stochastic transition matrix,
        or a sequence of matrices (commands are then named ``"0", ...``).
        All matrices must share the same state dimension.
    state_names:
        Optional state names (unique), defaults to ``"0", "1", ...``.
    command_names:
        Optional explicit command ordering when ``matrices`` is a mapping;
        defaults to the mapping's insertion order.

    Examples
    --------
    The paper's two-state service provider (Example 3.1)::

        >>> sp = ControlledMarkovChain(
        ...     {
        ...         "s_on": [[1.0, 0.0], [0.1, 0.9]],
        ...         "s_off": [[0.2, 0.8], [0.0, 1.0]],
        ...     },
        ...     state_names=["on", "off"],
        ... )
        >>> sp.n_commands
        2
        >>> float(sp.matrix("s_on")[1, 0])
        0.1
    """

    def __init__(
        self,
        matrices,
        state_names: Sequence[str] | None = None,
        command_names: Sequence[str] | None = None,
    ):
        if isinstance(matrices, Mapping):
            commands = list(matrices.keys()) if command_names is None else list(command_names)
            if command_names is not None and set(command_names) != set(matrices.keys()):
                raise ValidationError(
                    "command_names must match the mapping keys: "
                    f"{sorted(map(str, command_names))} vs {sorted(map(str, matrices.keys()))}"
                )
            raw = [matrices[c] for c in commands]
        else:
            raw = list(matrices)
            commands = (
                [str(i) for i in range(len(raw))]
                if command_names is None
                else list(command_names)
            )
            if len(commands) != len(raw):
                raise ValidationError(
                    f"{len(commands)} command names given for {len(raw)} matrices"
                )
        if not raw:
            raise ValidationError("a controlled chain needs at least one command")

        commands = [str(c) for c in commands]
        if len(set(commands)) != len(commands):
            raise ValidationError(f"command names must be unique, got {commands}")

        checked = [
            check_stochastic_matrix(m, f"transition matrix for command {c!r}")
            for c, m in zip(commands, raw)
        ]
        n = checked[0].shape[0]
        for c, m in zip(commands, checked):
            if m.shape[0] != n:
                raise ValidationError(
                    f"command {c!r} matrix has {m.shape[0]} states, expected {n}"
                )

        if state_names is None:
            state_names = [str(i) for i in range(n)]
        names = [str(s) for s in state_names]
        if len(names) != n:
            raise ValidationError(f"{len(names)} state names given for {n} states")
        if len(set(names)) != len(names):
            raise ValidationError(f"state names must be unique, got {names}")

        # Shape (n_commands, n_states, n_states) for fast indexing.
        self._tensor = np.stack(checked, axis=0)
        self._states = tuple(names)
        self._commands = tuple(commands)
        self._state_index = {s: i for i, s in enumerate(names)}
        self._command_index = {c: i for i, c in enumerate(commands)}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of states."""
        return self._tensor.shape[1]

    @property
    def n_commands(self) -> int:
        """Number of commands."""
        return self._tensor.shape[0]

    @property
    def state_names(self) -> tuple[str, ...]:
        """State names in index order."""
        return self._states

    @property
    def command_names(self) -> tuple[str, ...]:
        """Command names in index order."""
        return self._commands

    @property
    def tensor(self) -> np.ndarray:
        """A copy of the full ``(n_commands, n_states, n_states)`` tensor."""
        return self._tensor.copy()

    def state_index(self, name) -> int:
        """Index of state ``name`` (passes through integer indices)."""
        if isinstance(name, (int, np.integer)):
            idx = int(name)
            if not 0 <= idx < self.n_states:
                raise KeyError(f"state index {idx} out of range [0, {self.n_states})")
            return idx
        try:
            return self._state_index[str(name)]
        except KeyError:
            raise KeyError(
                f"unknown state {name!r}; states are {self._states}"
            ) from None

    def command_index(self, name) -> int:
        """Index of command ``name`` (passes through integer indices)."""
        if isinstance(name, (int, np.integer)):
            idx = int(name)
            if not 0 <= idx < self.n_commands:
                raise KeyError(
                    f"command index {idx} out of range [0, {self.n_commands})"
                )
            return idx
        try:
            return self._command_index[str(name)]
        except KeyError:
            raise KeyError(
                f"unknown command {name!r}; commands are {self._commands}"
            ) from None

    def matrix(self, command) -> np.ndarray:
        """Transition matrix ``P^a`` for ``command`` (a copy)."""
        return self._tensor[self.command_index(command)].copy()

    def transition_probability(self, src, dst, command) -> float:
        """One-step probability of ``src -> dst`` under ``command``."""
        return float(
            self._tensor[
                self.command_index(command),
                self.state_index(src),
                self.state_index(dst),
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlledMarkovChain(n_states={self.n_states}, "
            f"commands={self._commands})"
        )

    # ------------------------------------------------------------------
    # decisions and policies (paper Definition 3.5 / Eq. 5)
    # ------------------------------------------------------------------
    def decision_matrix(self, decision) -> np.ndarray:
        """Transition matrix under a single randomized decision.

        ``decision`` is a distribution over commands applied in *every*
        state; the result is the probability-weighted sum of the ``P^a``
        (paper Eq. 5).
        """
        d = check_distribution(decision, "decision")
        if d.size != self.n_commands:
            raise ValidationError(
                f"decision has {d.size} entries for {self.n_commands} commands"
            )
        return np.einsum("a,aij->ij", d, self._tensor)

    def policy_matrix(self, policy_matrix) -> np.ndarray:
        """Transition matrix under a randomized Markov stationary policy.

        ``policy_matrix`` has shape ``(n_states, n_commands)``; row ``i``
        is the decision taken in state ``i`` (paper Definition 3.7).  The
        induced chain is ``P_pi[i, j] = sum_a pi[i, a] P^a[i, j]``.
        """
        pi = np.asarray(policy_matrix, dtype=float)
        if pi.shape != (self.n_states, self.n_commands):
            raise ValidationError(
                f"policy matrix must have shape ({self.n_states}, "
                f"{self.n_commands}), got {pi.shape}"
            )
        for row in range(pi.shape[0]):
            check_distribution(pi[row], f"policy row {row}")
        return np.einsum("ia,aij->ij", pi, self._tensor)

    def induced_chain(self, policy_matrix) -> MarkovChain:
        """The :class:`MarkovChain` induced by a stationary policy."""
        return MarkovChain(self.policy_matrix(policy_matrix), self._states)
