"""Analysis helpers for slotted-time Markov chains.

Implements the probabilistic algebra the paper relies on:

* geometric transition-time distributions (paper Eq. 1) and the expected
  transition time ``1 / p`` (paper Eq. 2), together with the inverse map
  used when building service-provider models from data-sheet transition
  times (Table I);
* stationary distributions and expected hitting times;
* the trap-state discounting transform (paper Fig. 5): scale every
  transition by the discount ``gamma`` and add a ``1 - gamma`` escape to
  an absorbing session-end state;
* discounted state occupancy ``p0 (I - gamma P)^{-1}`` — the closed form
  behind both policy evaluation and the LP balance equations.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_probability,
    check_stochastic_matrix,
)


# ----------------------------------------------------------------------
# geometric transition times (paper Eq. 1 and Eq. 2)
# ----------------------------------------------------------------------
def geometric_pmf(p: float, t) -> np.ndarray:
    """P(transition happens exactly at slice ``t``) for exit probability ``p``.

    Paper Eq. 1: ``Prob(T = t) = p (1 - p)^(t-1)`` for ``t >= 1``.
    ``t`` may be a scalar or array of positive integers.
    """
    p = check_probability(p, "exit probability")
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 1):
        raise ValidationError("geometric_pmf is defined for t >= 1")
    return p * (1.0 - p) ** (t_arr - 1.0)


def geometric_survival(p: float, t) -> np.ndarray:
    """P(transition has not happened after ``t`` slices): ``(1 - p)^t``."""
    p = check_probability(p, "exit probability")
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise ValidationError("geometric_survival is defined for t >= 0")
    return (1.0 - p) ** t_arr


def expected_transition_time(p: float) -> float:
    """Expected slices until a geometric transition fires (paper Eq. 2).

    ``E[T] = 1 / p``; infinite when ``p == 0``.
    """
    p = check_probability(p, "exit probability")
    if p == 0.0:
        return float("inf")
    return 1.0 / p


def probability_from_expected_time(
    expected_time: float, time_resolution: float = 1.0
) -> float:
    """Per-slice exit probability realizing a mean transition time.

    This is the inverse of :func:`expected_transition_time`, used when a
    data sheet specifies "typical" transition delays (paper Table I): a
    delay of ``expected_time`` seconds at resolution ``time_resolution``
    seconds/slice becomes an exit probability
    ``time_resolution / expected_time`` (capped at one — transitions
    faster than a slice are performed in a single slice).
    """
    if expected_time <= 0:
        raise ValidationError(f"expected_time must be > 0, got {expected_time!r}")
    if time_resolution <= 0:
        raise ValidationError(
            f"time_resolution must be > 0, got {time_resolution!r}"
        )
    return min(1.0, time_resolution / float(expected_time))


# ----------------------------------------------------------------------
# stationary distribution / hitting times
# ----------------------------------------------------------------------
def stationary_distribution(matrix) -> np.ndarray:
    """A stationary distribution ``pi`` with ``pi P = pi``.

    Solves the linear system ``(P^T - I) pi = 0`` with the normalisation
    ``sum(pi) = 1`` appended, by least squares (robust to the rank
    deficiency the constraint introduces).  For chains with multiple
    recurrent classes this returns one valid stationary distribution.
    """
    P = check_stochastic_matrix(matrix, "matrix")
    n = P.shape[0]
    A = np.vstack([P.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(A, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise ValidationError("failed to compute a stationary distribution")
    return pi / total


def hitting_time(matrix, targets) -> np.ndarray:
    """Expected slices to reach the ``targets`` set from each state.

    Solves the standard first-step equations: ``h[i] = 0`` for targets,
    ``h[i] = 1 + sum_j P[i, j] h[j]`` otherwise.  States that cannot
    reach the target set get ``inf``.
    """
    P = check_stochastic_matrix(matrix, "matrix")
    n = P.shape[0]
    target_set = {int(t) for t in np.atleast_1d(np.asarray(targets, dtype=int))}
    for t in target_set:
        if not 0 <= t < n:
            raise ValidationError(f"target state {t} out of range [0, {n})")
    others = [i for i in range(n) if i not in target_set]
    h = np.zeros(n)
    if not others:
        return h

    # Restrict to non-target states: (I - Q) h = 1, Q = P[others][:, others].
    Q = P[np.ix_(others, others)]
    ones = np.ones(len(others))
    try:
        h_others = np.linalg.solve(np.eye(len(others)) - Q, ones)
    except np.linalg.LinAlgError:
        h_others = np.full(len(others), np.inf)
    else:
        # A singular-but-solvable system can still return garbage for
        # states with no path to the target; detect via reachability.
        reachable = _reaches_targets(P, target_set)
        h_others = np.where(
            [reachable[i] for i in others], np.maximum(h_others, 0.0), np.inf
        )
    h[others] = h_others
    return h


def _reaches_targets(P: np.ndarray, target_set: set[int]) -> np.ndarray:
    """Boolean vector: can state ``i`` ever reach the target set?"""
    n = P.shape[0]
    adjacency = P > 0.0
    reached = np.zeros(n, dtype=bool)
    frontier = list(target_set)
    for t in target_set:
        reached[t] = True
    # Reverse BFS over the adjacency graph.
    while frontier:
        node = frontier.pop()
        predecessors = np.where(adjacency[:, node])[0]
        for pred in predecessors:
            if not reached[pred]:
                reached[pred] = True
                frontier.append(int(pred))
    return reached


# ----------------------------------------------------------------------
# discounting (paper Section IV, Fig. 5)
# ----------------------------------------------------------------------
def with_trap_state(matrix, gamma: float) -> np.ndarray:
    """Add the session-end trap state of paper Fig. 5.

    Every original transition probability is multiplied by ``gamma`` and
    each state gains a ``1 - gamma`` transition to a new absorbing state
    appended as the last row/column.  The stopping time is then geometric
    with mean ``1 / (1 - gamma)`` slices.
    """
    P = check_stochastic_matrix(matrix, "matrix")
    gamma = check_probability(gamma, "gamma")
    n = P.shape[0]
    out = np.zeros((n + 1, n + 1))
    out[:n, :n] = gamma * P
    out[:n, n] = 1.0 - gamma
    out[n, n] = 1.0
    return out


def discounted_occupancy(matrix, gamma: float, initial_distribution) -> np.ndarray:
    """Total discounted expected visits to each state.

    Returns ``y = p0 (I - gamma P)^{-1}``, i.e. ``y[j] = E[sum_t gamma^t
    1{x_t = j}]``.  The entries sum to ``1 / (1 - gamma)`` (the expected
    session length); multiplying by ``1 - gamma`` yields the per-slice
    average occupancy the paper reports.
    """
    P = check_stochastic_matrix(matrix, "matrix")
    gamma = check_probability(gamma, "gamma")
    if gamma >= 1.0:
        raise ValidationError("discounted occupancy requires gamma < 1")
    p0 = check_distribution(initial_distribution, "initial_distribution")
    if p0.size != P.shape[0]:
        raise ValidationError(
            f"initial distribution has {p0.size} entries for "
            f"{P.shape[0]} states"
        )
    n = P.shape[0]
    # Solve y (I - gamma P) = p0  <=>  (I - gamma P)^T y^T = p0^T.
    y = np.linalg.solve(np.eye(n) - gamma * P.T, p0)
    return y
