"""Markov chain substrate.

Discrete-time (slotted) Markov chains as used throughout the paper:

* :class:`~repro.markov.chain.MarkovChain` — a stationary chain with a
  row-stochastic transition matrix and named states (the service
  requester, Definition 3.2).
* :class:`~repro.markov.controlled.ControlledMarkovChain` — a stationary
  *controlled* chain: one transition matrix per command (the service
  provider, Definition 3.1, and the composed system of Section III).
* :mod:`~repro.markov.analysis` — geometric transition-time algebra
  (paper Eq. 1–2), stationary distributions, hitting times, and the
  trap-state discounting transform (paper Fig. 5).
"""

from repro.markov.analysis import (
    discounted_occupancy,
    expected_transition_time,
    geometric_pmf,
    geometric_survival,
    hitting_time,
    probability_from_expected_time,
    stationary_distribution,
    with_trap_state,
)
from repro.markov.chain import MarkovChain
from repro.markov.controlled import ControlledMarkovChain

__all__ = [
    "MarkovChain",
    "ControlledMarkovChain",
    "stationary_distribution",
    "hitting_time",
    "expected_transition_time",
    "probability_from_expected_time",
    "geometric_pmf",
    "geometric_survival",
    "discounted_occupancy",
    "with_trap_state",
]
