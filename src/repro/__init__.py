"""repro — Policy Optimization for Dynamic Power Management.

A faithful, production-quality reproduction of L. Benini, A. Bogliolo,
G. A. Paleologo and G. De Micheli, "Policy Optimization for Dynamic
Power Management" (DAC 1998; IEEE TCAD 18(6), 1999).

The library models power-managed systems as controlled Markov chains —
a service provider, a service requester and a bounded queue — and
computes *globally optimal* power-management policies by linear
programming over state-action frequencies, exactly as the paper
prescribes.  It ships the paper's case studies (disk drive, web server,
CPU), the heuristic baselines it compares against (eager, timeout,
randomized, predictive), simulation engines for verification, a
workload-trace pipeline with the k-memory SR extractor, and experiment
drivers regenerating every table and figure in the evaluation.

Quickstart::

    from repro import PolicyOptimizer
    from repro.systems import example_system

    bundle = example_system.build()
    optimizer = PolicyOptimizer(
        bundle.system, bundle.costs, gamma=bundle.gamma,
        initial_distribution=bundle.initial_distribution,
    )
    result = optimizer.minimize_power(penalty_bound=0.5, loss_bound=0.2)
    print(result.average("power"))          # ~1.8 W (paper Example A.2)
    print(result.policy.matrix)             # the optimal randomized policy
"""

from repro.core import (
    AverageCostOptimizer,
    CostModel,
    InfeasibleProblemError,
    MarkovPolicy,
    OptimizationResult,
    ParetoCurve,
    ParetoPoint,
    ParetoSweepSolver,
    PolicyEvaluation,
    PolicyOptimizer,
    PowerManagedSystem,
    ServiceProvider,
    ServiceQueue,
    ServiceRequester,
    SweepStats,
    SystemState,
    evaluate_policy,
    min_achievable,
    policy_iteration,
    simulate_curve,
    trade_off_curve,
    value_iteration,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ServiceProvider",
    "ServiceRequester",
    "ServiceQueue",
    "PowerManagedSystem",
    "SystemState",
    "CostModel",
    "MarkovPolicy",
    "PolicyEvaluation",
    "evaluate_policy",
    "PolicyOptimizer",
    "AverageCostOptimizer",
    "OptimizationResult",
    "InfeasibleProblemError",
    "ParetoCurve",
    "ParetoPoint",
    "ParetoSweepSolver",
    "SweepStats",
    "simulate_curve",
    "trade_off_curve",
    "min_achievable",
    "value_iteration",
    "policy_iteration",
]
