"""Prebuilt system models for the paper's case studies.

Each module exposes a ``build(...)`` function returning a
:class:`SystemBundle` — the composed system, its cost model, the
initial distribution and the discount factor the paper uses — plus
case-specific metadata:

* :mod:`~repro.systems.example_system` — the running example of
  Sections III-IV (Examples 3.1-3.7, A.1, A.2);
* :mod:`~repro.systems.disk_drive` — the IBM Travelstar disk drive
  (Table I, Fig. 8; 11 SP states, 5 commands, 66 joint states);
* :mod:`~repro.systems.web_server` — the dual-processor web server
  (Fig. 9a);
* :mod:`~repro.systems.cpu` — the SA-1100 CPU (Figs. 9b and 10);
* :mod:`~repro.systems.baseline` — the Appendix-B baseline system used
  for all sensitivity experiments (Figs. 12-14).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem


@dataclass
class SystemBundle:
    """A ready-to-optimize case study.

    Attributes
    ----------
    name:
        Case-study identifier.
    system:
        The composed joint system.
    costs:
        Registered cost metrics (at least ``power``; plus ``penalty`` /
        ``loss`` / ``throughput`` as the case study defines).
    gamma:
        The paper's discount factor for this study.
    initial_distribution:
        The paper's initial joint-state distribution.
    time_resolution:
        Seconds per slice (tau).
    action_mask:
        Optional boolean ``(n_states, n_commands)`` array; False marks
        command choices the hardware does not expose to the power
        manager (the CPU's unconditional reactive wake).  ``None``
        means every command is available everywhere.
    metadata:
        Free-form extras (command indices for heuristics, etc.).
    """

    name: str
    system: PowerManagedSystem
    costs: CostModel
    gamma: float
    initial_distribution: np.ndarray = field(repr=False)
    time_resolution: float = 1.0
    action_mask: np.ndarray | None = field(repr=False, default=None)
    metadata: dict = field(default_factory=dict)


from repro.systems import (  # noqa: E402 - re-export after SystemBundle
    baseline,
    cpu,
    disk_drive,
    example_system,
    web_server,
)

__all__ = [
    "SystemBundle",
    "example_system",
    "disk_drive",
    "web_server",
    "cpu",
    "baseline",
]
