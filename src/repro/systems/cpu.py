"""ARM SA-1100 CPU case study (paper Section VI-C, Figs. 9b and 10).

The CPU is modelled with two SP states (the actual processor's active
and idle states are merged): ``active`` burns 0.3 W at full
performance, ``sleep`` burns nothing and serves nothing.  Shut-down and
turn-on both take about 100 ms; at tau = 50 ms that is a geometric
transition with probability 0.5 per slice.  Transition powers are 0.3 W
(shutting down) and 0.9 W (waking up).

The hardware wakes on interrupts regardless of the power manager:
"whenever there are incoming requests the SP is insensitive to PM
commands, and a turn-on transition is performed unconditionally if a
new request arrives when the SP is in sleep state.  In practice, only
when the SP is active and the SR is idle the PM can control the
evolution of the system."  We encode this as an *action mask* over the
joint states:

* (sleep, busy):   only ``run``   — the interrupt forces a wake;
* (sleep, idle):   only ``shutdown`` — the CPU stays asleep until work;
* (active, busy):  only ``run``   — requests must be served;
* (active, idle):  free            — the single degree of freedom.

Requests are not enqueued (queue capacity 0); the performance penalty
is 1 whenever the SR is busy while the SP sleeps (the constrained
"undesirable condition" of the paper).

The workload stands in for the laptop-monitor traces of ref [28]; the
nonstationary merged trace of Example 7.1 / Fig. 10 is produced by
:func:`repro.traces.synthetic.merge_traces`.
"""

from __future__ import annotations

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel, sleep_while_busy_penalty
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.systems import SystemBundle
from repro.traces.extractor import SRExtractor

#: 50 ms slices; the ~100 ms transitions become geometric with p = 0.5.
TIME_RESOLUTION = 0.05
TRANSITION_PROBABILITY = 0.5

ACTIVE_POWER = 0.3
WAKE_POWER = 0.9
SHUTDOWN_POWER = 0.3

SP_STATES = ["active", "sleep"]
COMMANDS = ["run", "shutdown"]

#: Default workload standing in for the monitored laptop CPU traces.
DEFAULT_SR_STAY_IDLE = 0.95
DEFAULT_SR_STAY_BUSY = 0.8

DEFAULT_GAMMA = 1.0 - 1e-5


def build_provider() -> ServiceProvider:
    """The two-state SA-1100 SP."""
    p = TRANSITION_PROBABILITY
    transitions = {
        # run: wake (or stay awake).
        "run": [[1.0, 0.0], [p, 1.0 - p]],
        # shutdown: go to (or stay in) sleep.
        "shutdown": [[1.0 - p, p], [0.0, 1.0]],
    }
    service_rates = {
        "active": {"run": 1.0, "shutdown": 0.0},
        "sleep": {"run": 0.0, "shutdown": 0.0},
    }
    power = {
        # Waking from sleep draws 0.9 W; shutting down from active 0.3 W
        # (same as running, per the paper's numbers).
        "active": {"run": ACTIVE_POWER, "shutdown": SHUTDOWN_POWER},
        "sleep": {"run": WAKE_POWER, "shutdown": 0.0},
    }
    return ServiceProvider.from_tables(
        states=SP_STATES,
        commands=COMMANDS,
        transitions=transitions,
        service_rates=service_rates,
        power=power,
    )


def build_requester(
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> ServiceRequester:
    """Two-state idle/busy workload."""
    chain = MarkovChain(
        [[stay_idle, 1.0 - stay_idle], [1.0 - stay_busy, stay_busy]],
        ["idle", "busy"],
    )
    return ServiceRequester(chain, arrivals={"idle": 0, "busy": 1})


def reactive_wake_mask(system: PowerManagedSystem) -> np.ndarray:
    """The action mask encoding the CPU's hardware-driven transitions.

    Works for any requester (including k-memory extracted models): an
    SR state is "busy" when it issues requests.
    """
    run = system.chain.command_index("run")
    shutdown = system.chain.command_index("shutdown")
    sleep = system.provider.chain.state_index("sleep")
    arrivals = system.requester.arrival_counts

    mask = np.zeros((system.n_states, system.n_commands), dtype=bool)
    sp_of = system.provider_index_of_state
    sr_of = system.requester_index_of_state
    for x in range(system.n_states):
        s, r = int(sp_of[x]), int(sr_of[x])
        if arrivals[r] > 0:
            mask[x, run] = True  # interrupts force service / wake
        elif s == sleep:
            mask[x, shutdown] = True  # stays asleep until an interrupt
        else:  # active and idle: the PM's one free decision
            mask[x, run] = True
            mask[x, shutdown] = True
    return mask


def standard_costs(system: PowerManagedSystem) -> CostModel:
    """The CPU study's cost model for any (possibly refit) requester.

    Standard metrics with the performance penalty replaced by the
    sleep-while-busy indicator of Section VI-C.  Usable as the
    ``build_costs`` hook of
    :class:`~repro.policies.adaptive.AdaptivePolicyAgent`.
    """
    costs = CostModel.standard(system)
    busy_states = [
        name
        for name in system.requester.state_names
        if system.requester.arrivals(name) > 0
    ]
    costs.add_metric(
        "penalty", sleep_while_busy_penalty(system, ["sleep"], busy_states)
    )
    return costs


def _bundle(
    provider: ServiceProvider,
    requester: ServiceRequester,
    gamma: float,
    name: str,
    extra_metadata: dict | None = None,
) -> SystemBundle:
    system = PowerManagedSystem(provider, requester, ServiceQueue(0))
    costs = standard_costs(system)
    idle_name = next(
        name_
        for name_ in requester.state_names
        if requester.arrivals(name_) == 0
    )
    p0 = system.point_distribution("active", idle_name, 0)
    metadata = {
        "active_command": system.chain.command_index("run"),
        "sleep_command": system.chain.command_index("shutdown"),
        "sleep_state_index": system.provider.chain.state_index("sleep"),
        "paper_reference": "Section VI-C, Figs. 9(b) and 10",
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return SystemBundle(
        name=name,
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=TIME_RESOLUTION,
        action_mask=reactive_wake_mask(system),
        metadata=metadata,
    )


def build(
    gamma: float = DEFAULT_GAMMA,
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> SystemBundle:
    """Compose the CPU case study (4 joint states)."""
    return _bundle(
        build_provider(), build_requester(stay_idle, stay_busy), gamma, "cpu"
    )


def build_from_trace(trace, gamma: float = DEFAULT_GAMMA, memory: int = 1) -> SystemBundle:
    """Compose with an SR extracted from a CPU activity trace.

    Used for the Fig. 10 experiment: fit a simple two-state model to a
    nonstationary merged trace, optimize, then simulate against the
    original trace.
    """
    model = SRExtractor(memory=memory).fit_trace(trace, TIME_RESOLUTION)
    requester = model.to_requester()
    # Rename states for the penalty definition: any state issuing
    # requests counts as busy.
    return _bundle(
        build_provider(),
        requester,
        gamma,
        "cpu-trace",
        extra_metadata={"sr_model": model},
    )
