"""The paper's running example (Examples 3.1-3.7, A.1, A.2).

A two-state service provider (on/off) with commands ``s_on`` / ``s_off``
(Example 3.1), a bursty two-state requester (Example 3.2), and a queue
of capacity 1 — giving the 8-state joint chain of Example 3.5.  Costs
follow Example A.2: the SP burns 3 W on, 0 W off and 4 W while being
switched in either direction; the performance penalty is the queue
length and the loss metric flags requests arriving at a full queue.

Example A.2 optimizes this system with gamma = 0.99999 from the initial
state (on, no request, empty queue) under an average-queue bound of 0.5
and a loss bound of 0.2, obtaining minimum expected power 1.798 W and a
randomized decision in state (on, 0, 0) — the reference numbers for the
integration tests.
"""

from __future__ import annotations

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.systems import SystemBundle

#: Example A.2 discount factor (time window of 1e5 slices).
DEFAULT_GAMMA = 0.99999


def build_provider() -> ServiceProvider:
    """The two-state SP of Example 3.1 with Example A.2's power table."""
    return ServiceProvider.from_tables(
        states=["on", "off"],
        commands=["s_on", "s_off"],
        transitions={
            "s_on": [[1.0, 0.0], [0.1, 0.9]],
            "s_off": [[0.2, 0.8], [0.0, 1.0]],
        },
        service_rates={
            "on": {"s_on": 0.8, "s_off": 0.0},
            "off": {"s_on": 0.0, "s_off": 0.0},
        },
        power={
            "on": {"s_on": 3.0, "s_off": 4.0},
            "off": {"s_on": 4.0, "s_off": 0.0},
        },
    )


def build_requester() -> ServiceRequester:
    """The bursty two-state SR of Example 3.2."""
    chain = MarkovChain([[0.95, 0.05], [0.15, 0.85]], ["0", "1"])
    return ServiceRequester(chain, arrivals=[0, 1])


def build(gamma: float = DEFAULT_GAMMA, queue_capacity: int = 1) -> SystemBundle:
    """Compose the running example.

    Parameters
    ----------
    gamma:
        Discount factor (Example A.2 uses 0.99999).
    queue_capacity:
        Queue capacity; 1 gives the paper's 8-state joint chain.
    """
    provider = build_provider()
    requester = build_requester()
    system = PowerManagedSystem(provider, requester, ServiceQueue(queue_capacity))
    costs = CostModel.standard(system)

    # Example A.2 initial state: SP on, no request, queue empty.
    p0 = system.point_distribution("on", "0", 0)
    return SystemBundle(
        name="example-system",
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=1.0,
        metadata={
            "active_command": system.chain.command_index("s_on"),
            "sleep_command": system.chain.command_index("s_off"),
            "paper_reference": "Examples 3.1-3.7, A.1, A.2; Fig. 6",
        },
    )


#: Example A.2 constraint settings: average queue length and loss bounds.
PAPER_PENALTY_BOUND_A2 = 0.5
PAPER_LOSS_BOUND_A2 = 0.2

#: Minimum expected power the paper reports for Example A.2 (watts).
PAPER_MINIMUM_POWER_A2 = 1.798

#: The randomized decision the paper reports for state (on, 0, 0):
#: issue s_off with probability 0.226, s_on with probability 0.774.
PAPER_DECISION_ON_IDLE_EMPTY_A2 = {"s_on": 0.774, "s_off": 0.226}
