"""Appendix-B baseline system for the sensitivity studies (Figs. 12-14).

"Our baseline implementation is the following.  SP has two states:
active and sleep1.  Power consumption is high in active state (3 W) and
lower in sleep state (2 W).  When the SP is performing a state
transition, the power consumption is 4 W.  Transitions from active to
sleep1 require only one time slice.  The SR model has two states as
well ... The transition probability from one state to another and vice
versa is 0.01.  The queue has maximum length equal 2."

The sensitivity experiments swap in deeper sleep states (paper numbers):

=======  ======  =====================
state    power   wake exit probability
=======  ======  =====================
sleep1   2.0 W   1.0  (one slice)
sleep2   1.0 W   0.1  (mean 10 slices)
sleep3   0.5 W   0.01 (mean 100 slices)
sleep4   0.0 W   0.001 (mean 1000)
=======  ======  =====================

:func:`build` accepts any subset of the menu (Fig. 12a), fully custom
sleep specifications (Fig. 12b sweeps wake probability and sleep
power), an SR flip probability (Fig. 13a burstiness), a replacement
requester (Fig. 13b memory models), a discount factor (Fig. 14a) and a
queue capacity (Fig. 14b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.systems import SystemBundle
from repro.util.validation import ValidationError, check_probability

ACTIVE_POWER = 3.0
TRANSITION_POWER = 4.0
#: The active resource keeps up with the unit-rate bursts (sigma = 1):
#: with a slower server the queue saturates during every burst and the
#: paper's request-loss bounds (e.g. 0.01 in Fig. 13a) are infeasible
#: for *any* policy, so the sweeps would be vacuous.
SERVICE_RATE = 1.0
DEFAULT_SR_FLIP = 0.01
DEFAULT_QUEUE_CAPACITY = 2
DEFAULT_GAMMA = 1.0 - 1e-5  # Fig. 12(a) horizon of 1e5 slices


@dataclass(frozen=True)
class SleepSpec:
    """One sleep state: name, power draw and transition probabilities.

    ``wake_probability`` is the per-slice chance of completing the
    transition back to active; ``entry_probability`` the per-slice
    chance of completing the transition *into* the sleep state (the
    paper states only sleep1 is entered in a single slice — deeper
    states take symmetrically longer, and the 4 W transition power is
    drawn while the entry is in progress).
    """

    name: str
    power: float
    wake_probability: float
    entry_probability: float = 1.0


#: The paper's sleep-state menu (Appendix B).  Entry delays mirror the
#: wake delays; the paper specifies them only for sleep1 ("transitions
#: from active to sleep1 require only one time slice").
SLEEP_MENU = {
    "sleep1": SleepSpec("sleep1", 2.0, 1.0, 1.0),
    "sleep2": SleepSpec("sleep2", 1.0, 0.1, 0.1),
    "sleep3": SleepSpec("sleep3", 0.5, 0.01, 0.01),
    "sleep4": SleepSpec("sleep4", 0.0, 0.001, 0.001),
}


def build_provider(
    sleep_specs: Sequence[SleepSpec],
    active_power: float = ACTIVE_POWER,
    transition_power: float = TRANSITION_POWER,
    service_rate: float = SERVICE_RATE,
) -> ServiceProvider:
    """Active state plus the given sleep states.

    Entering any sleep state takes one slice; waking follows the
    spec's geometric exit probability.  Commands toward a *deeper*
    sleep state move directly; commands toward a shallower one act as
    ``go_active`` (the resource must fully wake first) — the same
    convention as the disk model.
    """
    specs = list(sleep_specs)
    if not specs:
        raise ValidationError("at least one sleep state is required")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValidationError(f"duplicate sleep state names: {names}")
    for spec in specs:
        check_probability(spec.wake_probability, f"{spec.name} wake probability")
        check_probability(spec.entry_probability, f"{spec.name} entry probability")

    states = ["active"] + names
    commands = ["go_active"] + [f"go_{name}" for name in names]
    n = len(states)
    index = {name: i for i, name in enumerate(states)}
    depth = {name: k for k, name in enumerate(names)}

    transitions = {}
    for command in commands:
        target = command.removeprefix("go_")
        matrix = np.zeros((n, n))

        # Active row: entering a sleep state takes geometric time with
        # the spec's entry probability (the SP idles at transition power
        # while the entry is in progress).
        if target == "active":
            matrix[0, 0] = 1.0
        else:
            p_in = specs[depth[target]].entry_probability
            matrix[0, index[target]] = p_in
            matrix[0, 0] = 1.0 - p_in

        # Sleep rows.
        for name in names:
            row = index[name]
            spec = specs[depth[name]]
            if target == name:
                matrix[row, row] = 1.0
            elif target != "active" and depth[target] > depth[name]:
                # Deepen: geometric with the deeper state's entry prob.
                p_in = specs[depth[target]].entry_probability
                matrix[row, index[target]] = p_in
                matrix[row, row] = 1.0 - p_in
            else:
                # Wake (also for commands toward shallower states).
                p = spec.wake_probability
                matrix[row, 0] = p
                matrix[row, row] = 1.0 - p
        transitions[command] = matrix

    power = np.zeros((n, len(commands)))
    rates = np.zeros((n, len(commands)))
    for a, command in enumerate(commands):
        target = command.removeprefix("go_")
        # Active state: holding costs active power, moving costs 4 W.
        power[0, a] = active_power if target == "active" else transition_power
        for name in names:
            row = index[name]
            if target == name:
                power[row, a] = specs[depth[name]].power
            else:
                power[row, a] = transition_power  # waking or switching
    rates[0, 0] = check_probability(service_rate, "service_rate")

    return ServiceProvider.from_tables(
        states=states,
        commands=commands,
        transitions=transitions,
        service_rates=rates,
        power=power,
    )


def build_requester(flip_probability: float = DEFAULT_SR_FLIP) -> ServiceRequester:
    """Symmetric two-state SR: P(switch) = ``flip_probability``.

    The stationary request probability is 0.5 regardless of the flip
    probability — burstiness changes, load does not (the Fig. 13a
    sweep's key property).
    """
    p = check_probability(flip_probability, "flip_probability")
    chain = MarkovChain([[1.0 - p, p], [p, 1.0 - p]], ["0", "1"])
    return ServiceRequester(chain, arrivals=[0, 1])


def resolve_sleep_specs(sleep_states: Sequence) -> list[SleepSpec]:
    """Turn menu names and/or explicit :class:`SleepSpec`s into specs."""
    specs = []
    for item in sleep_states:
        if isinstance(item, SleepSpec):
            specs.append(item)
        elif str(item) in SLEEP_MENU:
            specs.append(SLEEP_MENU[str(item)])
        else:
            raise ValidationError(
                f"unknown sleep state {item!r}; menu: {sorted(SLEEP_MENU)}"
            )
    return specs


def build(
    sleep_states: Sequence = ("sleep1",),
    gamma: float = DEFAULT_GAMMA,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    sr_flip: float = DEFAULT_SR_FLIP,
    requester: ServiceRequester | None = None,
    active_power: float = ACTIVE_POWER,
    transition_power: float = TRANSITION_POWER,
    service_rate: float = SERVICE_RATE,
) -> SystemBundle:
    """Compose a baseline-system variant.

    Parameters
    ----------
    sleep_states:
        Menu names (``"sleep1"`` .. ``"sleep4"``) and/or explicit
        :class:`SleepSpec` objects, ordered shallow to deep.
    gamma:
        Discount factor (Fig. 14a sweeps this).
    queue_capacity:
        Queue capacity (Fig. 14b sweeps this).
    sr_flip:
        SR flip probability (Fig. 13a sweeps this; smaller = burstier).
    requester:
        Optional replacement SR (Fig. 13b passes k-memory models);
        overrides ``sr_flip``.
    active_power / transition_power / service_rate:
        SP parameters, defaulting to the paper's values.
    """
    specs = resolve_sleep_specs(sleep_states)
    provider = build_provider(specs, active_power, transition_power, service_rate)
    if requester is None:
        requester = build_requester(sr_flip)
    system = PowerManagedSystem(provider, requester, ServiceQueue(queue_capacity))
    costs = CostModel.standard(system)
    p0 = system.point_distribution("active", requester.state_names[0], 0)
    return SystemBundle(
        name="baseline",
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=1.0,
        metadata={
            "active_command": system.chain.command_index("go_active"),
            "sleep_commands": {
                spec.name: system.chain.command_index(f"go_{spec.name}")
                for spec in specs
            },
            "sleep_specs": specs,
            "paper_reference": "Appendix B, Figs. 12-14",
        },
    )
