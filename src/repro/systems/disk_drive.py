"""IBM Travelstar VP disk-drive case study (paper Section VI-A, Table I).

The disk has five operational conditions (Table I):

====================  ==============  ===========
State                 wake to active  power
====================  ==============  ===========
active                n/a             2.5 W
idle                  1.0 ms          1.0 W
low-power idle        40 ms           0.8 W
standby               2.2 s           0.3 W
sleep                 6.0 s           0.1 W
====================  ==============  ===========

The paper models it with 11 SP states — active (1), four inactive
states (2, 4, 7, 10) and six *transient* states (3, 5, 6, 8, 9, 11)
whose exits are command-insensitive, representing uninterruptible
transitions with 2.5 W draw.  Figure 8(a) shows only a fragment of the
topology; we reconstruct it as (see DESIGN.md):

* ``idle`` is entered and exited in a single slice (tau = 1 ms, the
  fastest transition, following the paper's resolution choice);
* each deeper state D in {lpidle, standby, sleep} has a one-slice
  *down* transient (``D_down``) and a geometric *wake* transient
  (``D_wake``) whose mean exit time completes Table I's wake delay;
* commands toward a shallower inactive state act as ``go_active`` (a
  spun-down disk must spin up before doing anything else); commands
  toward deeper states move through the corresponding down transient.

Counting states: active + idle + 3 x (inactive + down + wake) = 11,
with 6 transients — matching the paper's census.  Queue capacity is 2,
giving 11 x 2 x 3 = 66 joint states (paper: "The complete model of the
system has 66 states").

The workload stands in for the Auspex traces: a bursty two-state SR
with mean idle period 2 s and mean burst 10 ms at tau = 1 ms
(see DESIGN.md substitutions; :func:`build_from_trace` exercises the
real extraction pipeline instead).
"""

from __future__ import annotations

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.systems import SystemBundle
from repro.traces.extractor import SRExtractor

#: Slice length: 1 ms, the fastest disk transition (paper Section VI-A).
TIME_RESOLUTION = 1e-3

#: Table I: power (W) per operational state; transients draw active power.
STATE_POWER = {
    "active": 2.5,
    "idle": 1.0,
    "lpidle": 0.8,
    "standby": 0.3,
    "sleep": 0.1,
}

#: Table I: expected wake-to-active delay in slices (at 1 ms).
WAKE_SLICES = {"idle": 1, "lpidle": 40, "standby": 2200, "sleep": 6000}

#: Service rate of the active disk (requests completed per ms); the
#: paper does not publish the Travelstar's rate — 0.8 mirrors the
#: running example and keeps queueing dynamics non-trivial.
ACTIVE_SERVICE_RATE = 0.8

#: Ordered SP state list (the paper's numbering: transients interleave).
SP_STATES = [
    "active",  # 1
    "idle",  # 2  (inactive)
    "lpidle_down",  # 3  (transient)
    "lpidle",  # 4  (inactive)
    "lpidle_wake",  # 5  (transient)
    "standby_down",  # 6  (transient)
    "standby",  # 7  (inactive)
    "standby_wake",  # 8  (transient)
    "sleep_down",  # 9  (transient)
    "sleep",  # 10 (inactive)
    "sleep_wake",  # 11 (transient)
]

COMMANDS = ["go_active", "go_idle", "go_lpidle", "go_standby", "go_sleep"]

#: Depth order of the inactive states (shallower first).
INACTIVE_ORDER = ["idle", "lpidle", "standby", "sleep"]

#: Default bursty workload standing in for the Auspex traces.
DEFAULT_SR_STAY_IDLE = 0.9995
DEFAULT_SR_STAY_BUSY = 0.9

#: Paper horizon: one million slices -> gamma = 1 - 1e-6.
DEFAULT_GAMMA = 1.0 - 1e-6

DEFAULT_QUEUE_CAPACITY = 2


def _wake_exit_probability(state: str) -> float:
    """Geometric exit probability of a wake transient.

    Entering the transient costs one slice, so the exit probability
    solves ``1 + 1/p = WAKE_SLICES[state]``.
    """
    total = WAKE_SLICES[state]
    if total <= 1:
        return 1.0
    return 1.0 / (total - 1)


def build_provider() -> ServiceProvider:
    """The 11-state Travelstar SP reconstruction."""
    n = len(SP_STATES)
    index = {name: i for i, name in enumerate(SP_STATES)}
    deep_states = ["lpidle", "standby", "sleep"]

    def entry_target(target: str) -> str:
        """Where a command toward ``target`` sends the active disk."""
        if target in deep_states:
            return f"{target}_down"
        return target  # idle is entered directly

    transitions = {}
    for command in COMMANDS:
        target = command.removeprefix("go_")
        matrix = np.zeros((n, n))

        # Active state: obey the command.
        if target == "active":
            matrix[index["active"], index["active"]] = 1.0
        else:
            matrix[index["active"], index[entry_target(target)]] = 1.0

        # Inactive states: wake, deepen, or hold.
        for state in INACTIVE_ORDER:
            row = index[state]
            if target == state:
                matrix[row, row] = 1.0
                continue
            deeper = (
                target in INACTIVE_ORDER
                and INACTIVE_ORDER.index(target) > INACTIVE_ORDER.index(state)
            )
            if deeper:
                matrix[row, index[entry_target(target)]] = 1.0
            else:
                # go_active or a shallower target: start waking.
                if state == "idle":
                    matrix[row, index["active"]] = 1.0
                else:
                    matrix[row, index[f"{state}_wake"]] = 1.0

        # Transients: command-insensitive exits.
        for state in deep_states:
            down = index[f"{state}_down"]
            matrix[down, index[state]] = 1.0
            wake = index[f"{state}_wake"]
            p = _wake_exit_probability(state)
            matrix[wake, index["active"]] = p
            matrix[wake, wake] = 1.0 - p

        transitions[command] = matrix

    power = np.zeros((n, len(COMMANDS)))
    rates = np.zeros((n, len(COMMANDS)))
    for i, state in enumerate(SP_STATES):
        base = STATE_POWER.get(state, STATE_POWER["active"])  # transients: 2.5 W
        power[i, :] = base
    rates[index["active"], COMMANDS.index("go_active")] = ACTIVE_SERVICE_RATE

    return ServiceProvider.from_tables(
        states=SP_STATES,
        commands=COMMANDS,
        transitions=transitions,
        service_rates=rates,
        power=power,
    )


def build_requester(
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> ServiceRequester:
    """Two-state bursty workload (Auspex-trace substitute)."""
    chain = MarkovChain(
        [[stay_idle, 1.0 - stay_idle], [1.0 - stay_busy, stay_busy]],
        ["0", "1"],
    )
    return ServiceRequester(chain, arrivals=[0, 1])


def build(
    gamma: float = DEFAULT_GAMMA,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> SystemBundle:
    """Compose the disk-drive case study (66 joint states by default)."""
    provider = build_provider()
    requester = build_requester(stay_idle, stay_busy)
    system = PowerManagedSystem(provider, requester, ServiceQueue(queue_capacity))
    costs = CostModel.standard(system)
    p0 = system.point_distribution("active", "0", 0)
    return SystemBundle(
        name="disk-drive",
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=TIME_RESOLUTION,
        metadata={
            "active_command": system.chain.command_index("go_active"),
            "sleep_commands": {
                state: system.chain.command_index(f"go_{state}")
                for state in INACTIVE_ORDER
            },
            "paper_reference": "Section VI-A, Table I, Fig. 8",
        },
    )


def build_from_trace(
    trace,
    gamma: float = DEFAULT_GAMMA,
    queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    memory: int = 1,
) -> SystemBundle:
    """Compose the disk study with an SR extracted from a request trace.

    This is the full pipeline of paper Fig. 7: discretize the trace at
    tau = 1 ms, extract a k-memory SR model, and compose.  The returned
    bundle's metadata carries the fitted model (``"sr_model"``) whose
    tracker drives trace-driven verification.
    """
    provider = build_provider()
    model = SRExtractor(memory=memory).fit_trace(trace, TIME_RESOLUTION)
    requester = model.to_requester()
    system = PowerManagedSystem(provider, requester, ServiceQueue(queue_capacity))
    costs = CostModel.standard(system)
    p0 = system.point_distribution("active", requester.state_names[0], 0)
    return SystemBundle(
        name="disk-drive-trace",
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=TIME_RESOLUTION,
        metadata={
            "active_command": system.chain.command_index("go_active"),
            "sleep_commands": {
                state: system.chain.command_index(f"go_{state}")
                for state in INACTIVE_ORDER
            },
            "sr_model": model,
            "paper_reference": "Section VI-A with the Fig. 7 pipeline",
        },
    )
