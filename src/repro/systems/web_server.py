"""Dual-processor web-server case study (paper Section VI-B, Fig. 9a).

A high-traffic web site served by two non-identical processors:
processor 2 delivers 1.5x the throughput of processor 1 at 2x the
power.  The SP state is the pair of processor on/off bits, giving four
states; the PM issues one of four commands selecting the target
configuration, and each processor moves toward its target independently
(expected turn-on time 2 slices, expected shut-down time 1 slice).

Numbers from the paper:

* throughput: both on = 1.0, only P1 = 0.4, only P2 = 0.6, none = 0;
* active power: P1 = 1 W, P2 = 2 W;
* turn-on transition power: active + 0.5 W; shut-down: active - 0.5 W;
* tau = 1 s, horizon one day (86 400 slices).

Performance is *throughput delivered under demand* (capacity counts
only in slices where the workload issues requests), constrained from
below; there is no queue.  The paper's qualitative finding — "the
processor with higher performance was never used alone" — is asserted
by the Fig. 9(a) experiment.

The workload stands in for the Internet Traffic Archive trace: a bursty
two-state SR; :func:`build_from_trace` runs the real extraction
pipeline on any trace instead.
"""

from __future__ import annotations

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel, throughput_reward
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.systems import SystemBundle
from repro.traces.extractor import SRExtractor

#: One-second slices; horizon of one day.
TIME_RESOLUTION = 1.0
DEFAULT_GAMMA = 1.0 - 1.0 / 86_400.0

#: SP states: which processors are powered, as (p1, p2) bits.
SP_STATES = ["both", "p1", "p2", "none"]
STATE_BITS = {"both": (1, 1), "p1": (1, 0), "p2": (0, 1), "none": (0, 0)}

COMMANDS = ["to_both", "to_p1", "to_p2", "to_none"]
COMMAND_TARGET = {"to_both": (1, 1), "to_p1": (1, 0), "to_p2": (0, 1), "to_none": (0, 0)}

#: Paper throughputs per SP state.
THROUGHPUT = {"both": 1.0, "p1": 0.4, "p2": 0.6, "none": 0.0}

#: Paper active powers per processor (watts).
ACTIVE_POWER = (1.0, 2.0)

#: Per-slice probability a processor completes turn-on (mean 2 slices)
#: and shut-down (mean 1 slice).
TURN_ON_PROBABILITY = 0.5
SHUT_DOWN_PROBABILITY = 1.0

#: Default bursty workload standing in for the ITA trace.
DEFAULT_SR_STAY_IDLE = 0.95
DEFAULT_SR_STAY_BUSY = 0.98


def _processor_step_probability(bit: int, target: int) -> dict[int, float]:
    """Distribution of one processor's next bit given its target."""
    if bit == target:
        return {bit: 1.0}
    if target == 1:  # turning on
        return {1: TURN_ON_PROBABILITY, 0: 1.0 - TURN_ON_PROBABILITY}
    return {0: SHUT_DOWN_PROBABILITY, 1: 1.0 - SHUT_DOWN_PROBABILITY}


def build_provider() -> ServiceProvider:
    """The four-state dual-processor SP."""
    n = len(SP_STATES)
    index = {name: i for i, name in enumerate(SP_STATES)}
    bits_of = [STATE_BITS[name] for name in SP_STATES]

    transitions = {}
    for command in COMMANDS:
        target = COMMAND_TARGET[command]
        matrix = np.zeros((n, n))
        for src_name, src_bits in STATE_BITS.items():
            p1_next = _processor_step_probability(src_bits[0], target[0])
            p2_next = _processor_step_probability(src_bits[1], target[1])
            for dst_name, dst_bits in STATE_BITS.items():
                matrix[index[src_name], index[dst_name]] = p1_next.get(
                    dst_bits[0], 0.0
                ) * p2_next.get(dst_bits[1], 0.0)
        transitions[command] = matrix

    # Power: per processor, depends on its bit and the command target.
    power = np.zeros((n, len(COMMANDS)))
    for s in range(len(SP_STATES)):
        bits = bits_of[s]
        for a, command in enumerate(COMMANDS):
            target = COMMAND_TARGET[command]
            total = 0.0
            for proc in (0, 1):
                active = ACTIVE_POWER[proc]
                if bits[proc] == 1 and target[proc] == 1:
                    total += active  # running
                elif bits[proc] == 1 and target[proc] == 0:
                    total += active - 0.5  # shutting down
                elif bits[proc] == 0 and target[proc] == 1:
                    total += active + 0.5  # turning on
                # off and staying off: 0 W
            power[s, a] = total

    # Service rate: the probability of completing a request per slice
    # equals the state's throughput (requests are unit work).
    rates = np.zeros((n, len(COMMANDS)))
    for s, name in enumerate(SP_STATES):
        rates[s, :] = THROUGHPUT[name]

    return ServiceProvider.from_tables(
        states=SP_STATES,
        commands=COMMANDS,
        transitions=transitions,
        service_rates=rates,
        power=power,
    )


def build_requester(
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> ServiceRequester:
    """Two-state bursty workload (ITA-trace substitute)."""
    chain = MarkovChain(
        [[stay_idle, 1.0 - stay_idle], [1.0 - stay_busy, stay_busy]],
        ["0", "1"],
    )
    return ServiceRequester(chain, arrivals=[0, 1])


def _bundle(
    provider: ServiceProvider,
    requester: ServiceRequester,
    gamma: float,
    name: str,
    extra_metadata: dict | None = None,
) -> SystemBundle:
    system = PowerManagedSystem(provider, requester, ServiceQueue(0))
    costs = CostModel.standard(system)
    costs.add_metric("throughput", throughput_reward(system, THROUGHPUT))
    p0 = system.point_distribution("both", requester.state_names[0], 0)
    metadata = {
        "active_command": system.chain.command_index("to_both"),
        "sleep_command": system.chain.command_index("to_none"),
        "throughput_by_state": dict(THROUGHPUT),
        "paper_reference": "Section VI-B, Fig. 9(a)",
    }
    if extra_metadata:
        metadata.update(extra_metadata)
    return SystemBundle(
        name=name,
        system=system,
        costs=costs,
        gamma=float(gamma),
        initial_distribution=p0,
        time_resolution=TIME_RESOLUTION,
        metadata=metadata,
    )


def build(
    gamma: float = DEFAULT_GAMMA,
    stay_idle: float = DEFAULT_SR_STAY_IDLE,
    stay_busy: float = DEFAULT_SR_STAY_BUSY,
) -> SystemBundle:
    """Compose the web-server case study (8 joint states)."""
    return _bundle(
        build_provider(), build_requester(stay_idle, stay_busy), gamma, "web-server"
    )


def build_from_trace(trace, gamma: float = DEFAULT_GAMMA, memory: int = 1) -> SystemBundle:
    """Compose with an SR extracted from a request trace (Fig. 7 pipeline)."""
    model = SRExtractor(memory=memory).fit_trace(trace, TIME_RESOLUTION)
    return _bundle(
        build_provider(),
        model.to_requester(),
        gamma,
        "web-server-trace",
        extra_metadata={"sr_model": model},
    )
