"""Fault injection runtime: fire scripted faults exactly once.

The injector is deliberately dumb at the fire site and smart in the
bookkeeping.  Code under test calls ``faults.fire(SITE, **context)``
— a no-op costing one attribute load and one ``is None`` test when no
plan is installed — and the runtime decides which scripted faults are
eligible, claims each one in a crash-safe ledger, and performs it.

The **one-shot ledger** is the piece that makes chaos runs converge:
a fault like "SIGKILL shard 2 at tick 4" must fire once and only
once, even though the supervisor respawns the worker and deterministically
*replays* tick 4 — without the ledger the replayed tick would re-kill
the fresh worker forever.  The ledger is a directory of
``O_CREAT | O_EXCL`` claim files, so a claim survives the claiming
process being SIGKILLed a microsecond later and is visible to every
process of the run (supervisor, workers, client) without any locks.

Fault kinds and how they are performed:

``kill``
    ``os.kill(os.getpid(), SIGKILL)`` — the process vanishes without
    cleanup, exactly like an OOM kill.
``hang`` / ``delay``
    ``time.sleep(seconds)``.  A *hang* is scripted to exceed the
    supervisor's worker deadline; a *delay* stays under it (slow but
    alive — must NOT be killed).
``error``
    raises :class:`InjectedFault` (an ``OSError``) at the fire site —
    used for fsync failures.
``drop``
    raises :class:`InjectedDisconnect` (a ``ConnectionResetError``) —
    used for severed sockets.
``truncate`` / ``bitflip``
    mutate the file named by the firing context's ``path`` in place —
    used to corrupt spool generations after they are written.
``partial``
    performed *by the caller*: :func:`fire` returns the matched
    :class:`FaultAction` and the fire site (a frame send) dribbles the
    payload out in ``nbytes``-sized chunks with ``seconds`` pauses.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

from repro.faults.plan import FaultPlan

__all__ = [
    "CHANNEL_SEND",
    "CHECKPOINT_FSYNC",
    "CLIENT_RECV",
    "CLIENT_SEND",
    "SPOOL_FSYNC",
    "SPOOL_WRITTEN",
    "TELEMETRY_FSYNC",
    "WORKER_COMMAND",
    "FaultAction",
    "FaultInjector",
    "FaultPoint",
    "InjectedDisconnect",
    "InjectedFault",
    "fire",
    "install",
    "installed_plan",
    "uninstall",
]


class InjectedFault(OSError):
    """An injected I/O failure (fsync refused, write error, ...)."""


class InjectedDisconnect(ConnectionResetError):
    """An injected connection reset (peer vanished mid-frame)."""


@dataclass(frozen=True)
class FaultPoint:
    """A named site code can fire; the stable hook vocabulary.

    Fire sites hold a module-level ``FaultPoint`` constant and call
    ``point.fire(**context)`` (or the module-level :func:`fire`); the
    constant documents the contract — which context keys the site
    provides — right where the hook lives.
    """

    site: str
    #: Context keys this site provides, for documentation/validation.
    context: tuple[str, ...] = ()

    def fire(self, **ctx) -> tuple["FaultAction", ...]:
        """Fire this site against the installed injector (if any)."""
        return fire(self.site, **ctx)


WORKER_COMMAND = FaultPoint("worker.command", ("shard", "command", "tick"))
SPOOL_WRITTEN = FaultPoint("spool.written", ("shard", "tick", "path"))
SPOOL_FSYNC = FaultPoint("spool.fsync", ("path",))
CHECKPOINT_FSYNC = FaultPoint("checkpoint.fsync", ("path",))
TELEMETRY_FSYNC = FaultPoint("telemetry.fsync", ("path",))
CHANNEL_SEND = FaultPoint("channel.send", ("role",))
CLIENT_SEND = FaultPoint("client.send", ("type",))
CLIENT_RECV = FaultPoint("client.recv", ("type", "frames"))


@dataclass(frozen=True)
class FaultAction:
    """One fault that matched and was claimed at a fire site.

    Most kinds are performed by the injector before :func:`fire`
    returns; advisory kinds (``partial``) are returned for the call
    site to perform, carrying the fault's tuning knobs.
    """

    kind: str
    seconds: float = 0.0
    nbytes: int | None = None
    message: str = "injected fault"


class FaultInjector:
    """Matches an installed :class:`FaultPlan` against fire sites.

    One injector is installed per process (via :func:`install`); the
    supervisor threads the plan + ledger directory into worker
    processes through :class:`~repro.service.shard.ShardConfig` so
    every process of a run shares one ledger.
    """

    def __init__(self, plan: FaultPlan, ledger_dir) -> None:
        self._plan = plan
        self._ledger = Path(ledger_dir)
        self._ledger.mkdir(parents=True, exist_ok=True)
        # Eligible-firing counters for `after`, per fault, per process.
        self._seen = [0] * len(plan.faults)

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    @property
    def ledger_dir(self) -> Path:
        return self._ledger

    def _claim(self, index: int) -> bool:
        """Claim fault ``index`` in the one-shot ledger.

        Returns True exactly once per fault across *all* processes of
        the run; the O_EXCL create is the atomic claim and survives
        the claimer being killed immediately after.
        """
        path = self._ledger / self._plan.ledger_id(index)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fired(self, index: int) -> bool:
        """Whether fault ``index`` has been claimed by any process."""
        return (self._ledger / self._plan.ledger_id(index)).exists()

    def fire(self, site: str, **ctx) -> tuple[FaultAction, ...]:
        """Fire ``site``: claim and perform every eligible fault.

        Performs process-level kinds in place (kill/hang/delay raise or
        never return); returns advisory actions (``partial``) for the
        caller.  ``error``/``drop`` raise after claiming, so at most
        one raising fault performs per call.
        """
        actions: list[FaultAction] = []
        for index, fault in enumerate(self._plan.faults):
            if fault.site != site:
                continue
            if not self._matches(fault, ctx):
                continue
            self._seen[index] += 1
            if self._seen[index] <= fault.after:
                continue
            if not self._claim(index):
                continue
            action = self._perform(fault, ctx)
            if action is not None:
                actions.append(action)
        return tuple(actions)

    @staticmethod
    def _matches(fault, ctx) -> bool:
        for key in ("tick", "shard", "command", "role"):
            want = getattr(fault, key)
            if want is not None and ctx.get(key) != want:
                return False
        return True

    def _perform(self, fault, ctx) -> FaultAction | None:
        kind = fault.kind
        if kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(60.0)  # pragma: no cover - SIGKILL is not survivable
            return None  # pragma: no cover
        if kind in ("hang", "delay"):
            time.sleep(fault.seconds)
            return None
        if kind == "error":
            raise InjectedFault(fault.message)
        if kind == "drop":
            raise InjectedDisconnect(fault.message)
        if kind in ("truncate", "bitflip"):
            path = ctx.get("path")
            if path is not None:
                _corrupt_file(path, kind, fault.offset, fault.nbytes)
            return None
        # Advisory kinds (partial) are performed by the call site.
        return FaultAction(
            kind=kind,
            seconds=fault.seconds,
            nbytes=fault.nbytes,
            message=fault.message,
        )


def _corrupt_file(path, kind: str, offset: int | None, nbytes: int | None):
    """Truncate or bit-flip ``path`` in place (no-op if missing/empty)."""
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    if kind == "truncate":
        drop = nbytes if nbytes is not None else max(1, size // 2)
        with open(path, "r+b") as fh:
            fh.truncate(max(0, size - drop))
            fh.flush()
            os.fsync(fh.fileno())
        return
    at = offset if offset is not None else size // 2
    at = min(max(at, 0), size - 1)
    with open(path, "r+b") as fh:
        fh.seek(at)
        byte = fh.read(1)
        fh.seek(at)
        fh.write(bytes([byte[0] ^ 0xFF]))
        fh.flush()
        os.fsync(fh.fileno())


#: The per-process injector; ``None`` keeps :func:`fire` a no-op.
_ACTIVE: FaultInjector | None = None


def install(plan: FaultPlan, ledger_dir) -> FaultInjector:
    """Install ``plan`` as this process's active injector."""
    global _ACTIVE
    _ACTIVE = FaultInjector(plan, ledger_dir)
    return _ACTIVE


def uninstall() -> None:
    """Remove the active injector; :func:`fire` becomes a no-op."""
    global _ACTIVE
    _ACTIVE = None


def installed_plan() -> FaultPlan | None:
    """The active plan, or ``None`` when injection is off."""
    return _ACTIVE.plan if _ACTIVE is not None else None


def fire(site: str, **ctx) -> tuple[FaultAction, ...]:
    """Fire ``site`` against the process's injector (no-op when off)."""
    if _ACTIVE is None:
        return ()
    return _ACTIVE.fire(site, **ctx)
