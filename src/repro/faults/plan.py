"""Fault plans: seeded, tick-indexed, JSON-specifiable failure scripts.

A :class:`FaultPlan` is the deterministic half of chaos engineering:
instead of hoping a worker dies at an interesting moment, the plan
*names* the moment — a site (where in the code), a matching context
(which tick, which shard, which command) and a kind (what goes wrong).
The :mod:`repro.faults.injection` runtime carries the plan into every
process of a service run and fires each fault **exactly once**, so a
chaos campaign is as replayable as the fault-free run it must converge
back to.

Sites are the stable vocabulary between plans and code.  The hardened
service stack fires these:

``worker.command``
    A shard worker received a supervisor pipe command (context:
    ``shard``, ``command``, ``tick``).  Kinds: ``kill`` (SIGKILL the
    worker), ``hang`` (sleep past the supervisor deadline), ``delay``
    (a slow-but-alive worker).
``spool.written``
    A worker finished writing one spool generation (context: ``shard``,
    ``tick``, ``path``).  Kinds: ``truncate`` / ``bitflip`` corrupt the
    file in place — detected by the CRC stamp at restore time.
``spool.fsync`` / ``checkpoint.fsync`` / ``telemetry.fsync``
    About to fsync the named artifact.  Kind: ``error`` raises
    ``OSError`` as if the kernel refused.
``channel.send``
    A protocol frame is about to go out (context: ``role`` —
    ``"client"`` or ``"server"``).  Kinds: ``partial`` (dribble the
    frame in tiny chunks), ``drop`` (reset the connection).
``client.send`` / ``client.recv``
    The :class:`~repro.service.client.ServiceClient` request path
    (context: ``type`` — the request type; ``client.recv`` adds
    ``frames`` — frames received so far for this request).  Kind:
    ``drop`` severs the connection, exercising reconnect + idempotent
    retry.

Every fault fires **at most once per plan run** (a crash-safe ledger
claims it across process restarts); ``after`` skips the first N
eligible firings, so "drop the connection on the second telemetry
event" is expressible.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.util.validation import ValidationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "Fault",
    "FaultPlan",
]

#: Every site the service stack fires (see the module docstring).
FAULT_SITES = frozenset(
    {
        "worker.command",
        "spool.written",
        "spool.fsync",
        "checkpoint.fsync",
        "telemetry.fsync",
        "channel.send",
        "client.send",
        "client.recv",
    }
)

#: Every injectable failure kind.
FAULT_KINDS = frozenset(
    {
        "kill",
        "hang",
        "delay",
        "error",
        "truncate",
        "bitflip",
        "drop",
        "partial",
    }
)

#: Kinds that need a file ``path`` in the firing context.
_FILE_KINDS = frozenset({"truncate", "bitflip"})

#: Site → kinds that make sense there.  Process-level kinds (kill,
#: hang, delay, error, drop) are meaningful anywhere; file corruption
#: only where a path is in context; partial only on frame sends.
_SITE_KINDS = {
    "worker.command": frozenset({"kill", "hang", "delay", "error"}),
    "spool.written": frozenset({"truncate", "bitflip", "kill", "delay"}),
    "spool.fsync": frozenset({"error", "delay"}),
    "checkpoint.fsync": frozenset({"error", "delay"}),
    "telemetry.fsync": frozenset({"error", "delay"}),
    "channel.send": frozenset({"partial", "drop", "delay"}),
    "client.send": frozenset({"drop", "delay", "error"}),
    "client.recv": frozenset({"drop", "delay", "error"}),
}


@dataclass(frozen=True)
class Fault:
    """One scripted failure: where, when, and what goes wrong.

    Matching is conjunctive: a fault is eligible when its ``site``
    fires and every set selector (``tick``, ``shard``, ``command``,
    ``role``) equals the firing context; unset selectors match
    anything.  ``after`` skips the first N eligible firings (counted
    per process).  ``fault_id`` names the fault in the one-shot
    ledger; it defaults to the fault's index in its plan.
    """

    site: str
    kind: str
    tick: int | None = None
    shard: int | None = None
    command: str | None = None
    role: str | None = None
    after: int = 0
    #: hang/delay duration; partial: inter-chunk sleep.
    seconds: float = 0.0
    #: bitflip: byte offset from the file start (default: the middle).
    offset: int | None = None
    #: truncate: bytes dropped from the end (default: half the file);
    #: partial: chunk size in bytes (default: 7).
    nbytes: int | None = None
    message: str = "injected fault"
    fault_id: str | None = None

    def validate(self) -> None:
        """Raise :class:`ValidationError` on an inexpressible fault."""
        if self.site not in FAULT_SITES:
            raise ValidationError(
                f"unknown fault site {self.site!r}; "
                f"valid sites: {sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValidationError(
                f"unknown fault kind {self.kind!r}; "
                f"valid kinds: {sorted(FAULT_KINDS)}"
            )
        allowed = _SITE_KINDS[self.site]
        if self.kind not in allowed:
            raise ValidationError(
                f"fault kind {self.kind!r} cannot fire at site "
                f"{self.site!r}; kinds there: {sorted(allowed)}"
            )
        if self.after < 0:
            raise ValidationError(
                f"fault 'after' must be >= 0, got {self.after}"
            )
        if self.seconds < 0:
            raise ValidationError(
                f"fault 'seconds' must be >= 0, got {self.seconds}"
            )

    def to_dict(self) -> dict:
        """A JSON-able mapping (``None``/default fields omitted)."""
        record = {}
        for key, value in asdict(self).items():
            if value is None:
                continue
            if key == "after" and value == 0:
                continue
            if key == "seconds" and value == 0.0:
                continue
            if key == "message" and value == "injected fault":
                continue
            record[key] = value
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "Fault":
        """Parse one fault mapping; unknown keys are rejected."""
        if not isinstance(record, dict):
            raise ValidationError(
                f"a fault must be a mapping, got {type(record).__name__}"
            )
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = sorted(set(record) - known)
        if unknown:
            raise ValidationError(
                f"unknown fault field(s) {unknown}; valid fields: "
                f"{sorted(known)}"
            )
        missing = sorted({"site", "kind"} - set(record))
        if missing:
            raise ValidationError(f"fault is missing field(s) {missing}")
        fault = cls(**record)
        fault.validate()
        return fault


@dataclass(frozen=True)
class FaultPlan:
    """An ordered script of :class:`Fault`\\ s for one chaos run.

    Plans are JSON round-trippable (:meth:`to_json` / :meth:`from_json`
    / :meth:`load` / :meth:`save`) and seeded-randomizable
    (:meth:`randomized`), so CI can soak the service with a fresh but
    perfectly replayable failure script every run.
    """

    faults: tuple[Fault, ...] = field(default_factory=tuple)
    seed: int | None = None

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            fault.validate()

    def __len__(self) -> int:
        return len(self.faults)

    def ledger_id(self, index: int) -> str:
        """The one-shot ledger name of fault ``index``."""
        fault = self.faults[index]
        return fault.fault_id if fault.fault_id is not None else f"f{index}"

    def to_dict(self) -> dict:
        """The plan as a JSON-able mapping."""
        record: dict = {"faults": [fault.to_dict() for fault in self.faults]}
        if self.seed is not None:
            record["seed"] = self.seed
        return record

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, stable across runs)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, record: dict) -> "FaultPlan":
        """Parse a plan mapping as produced by :meth:`to_dict`."""
        if not isinstance(record, dict):
            raise ValidationError(
                f"a fault plan must be a mapping, got "
                f"{type(record).__name__}"
            )
        unknown = sorted(set(record) - {"faults", "seed"})
        if unknown:
            raise ValidationError(
                f"unknown fault-plan field(s) {unknown}; valid fields: "
                f"['faults', 'seed']"
            )
        raw_faults = record.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ValidationError(
                f"'faults' must be a list, got {type(raw_faults).__name__}"
            )
        return cls(
            faults=tuple(Fault.from_dict(item) for item in raw_faults),
            seed=record.get("seed"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse JSON text into a plan."""
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise ValidationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(record)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"fault plan file {path} does not exist")
        return cls.from_json(path.read_text())

    def save(self, path) -> None:
        """Write the plan as canonical JSON."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def randomized(
        cls,
        seed: int,
        *,
        ticks: int,
        shards: int,
        classes: tuple[str, ...] = (
            "kill",
            "hang",
            "spool_corruption",
            "client_drop",
            "fsync_error",
        ),
        hang_seconds: float = 30.0,
    ) -> "FaultPlan":
        """A seeded plan injecting one fault of each requested class.

        The script is a pure function of ``seed`` (drawn from a
        dedicated ``default_rng(seed)``), places every fault strictly
        *mid-run* (ticks ``2 .. ticks-1``, so there is always state to
        recover and ticks left to prove recovery), and keeps classes
        composable: ``spool_corruption`` pairs a corruption with a
        later kill on the same shard — corruption is only *observable*
        through a restore.
        """
        if ticks < 4:
            raise ValidationError(
                f"randomized plans need ticks >= 4, got {ticks}"
            )
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        known = {
            "kill",
            "hang",
            "delay",
            "spool_corruption",
            "client_drop",
            "fsync_error",
        }
        unknown = sorted(set(classes) - known)
        if unknown:
            raise ValidationError(
                f"unknown fault class(es) {unknown}; valid classes: "
                f"{sorted(known)}"
            )
        rng = np.random.default_rng(seed)

        def _tick(low: int = 2, high: int | None = None) -> int:
            return int(rng.integers(low, (high or ticks - 1) + 1))

        def _shard() -> int:
            return int(rng.integers(0, shards))

        faults: list[Fault] = []
        for kind in classes:
            if kind == "kill":
                faults.append(
                    Fault(
                        site="worker.command",
                        kind="kill",
                        command="step",
                        tick=_tick(),
                        shard=_shard(),
                    )
                )
            elif kind == "hang":
                faults.append(
                    Fault(
                        site="worker.command",
                        kind="hang",
                        command="step",
                        tick=_tick(),
                        shard=_shard(),
                        seconds=float(hang_seconds),
                    )
                )
            elif kind == "delay":
                faults.append(
                    Fault(
                        site="worker.command",
                        kind="delay",
                        command="step",
                        tick=_tick(),
                        shard=_shard(),
                        seconds=0.05,
                    )
                )
            elif kind == "spool_corruption":
                # Corrupt a spool generation, then kill the same shard
                # one tick later so the restore actually reads spools —
                # the CRC check must reject the bad generation and fall
                # back to the previous one.
                shard = _shard()
                tick = _tick(2, ticks - 2)
                corrupt = "truncate" if rng.integers(0, 2) == 0 else "bitflip"
                faults.append(
                    Fault(
                        site="spool.written",
                        kind=corrupt,
                        tick=tick,
                        shard=shard,
                    )
                )
                faults.append(
                    Fault(
                        site="worker.command",
                        kind="kill",
                        command="step",
                        tick=tick + 1,
                        shard=shard,
                    )
                )
            elif kind == "client_drop":
                faults.append(
                    Fault(
                        site="client.recv",
                        kind="drop",
                        after=int(rng.integers(1, 3)),
                    )
                )
            elif kind == "fsync_error":
                # fsync sites carry no tick context (they fire wherever
                # the artifact is synced), so the fault is untargeted:
                # it claims at the first eligible sync of the run.
                site = ("spool.fsync", "telemetry.fsync")[
                    int(rng.integers(0, 2))
                ]
                faults.append(Fault(site=site, kind="error"))
        return cls(faults=tuple(faults), seed=int(seed))
