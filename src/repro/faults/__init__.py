"""Deterministic fault injection for the fleet service stack.

``repro.faults`` turns failure into an input: a :class:`FaultPlan`
scripts *which* faults fire *where* and *when* (JSON-specifiable,
seedable via :meth:`FaultPlan.randomized`), and the injection runtime
(:mod:`repro.faults.injection`) fires each scripted fault exactly once
across every process of a run — supervisor, shard workers, client —
via a crash-safe one-shot ledger.  The hardened service contract is
that any plan which doesn't exhaust retries leaves final telemetry
and checkpoint bytes identical to the fault-free run.
"""

from repro.faults.injection import (
    CHANNEL_SEND,
    CHECKPOINT_FSYNC,
    CLIENT_RECV,
    CLIENT_SEND,
    SPOOL_FSYNC,
    SPOOL_WRITTEN,
    TELEMETRY_FSYNC,
    WORKER_COMMAND,
    FaultAction,
    FaultInjector,
    FaultPoint,
    InjectedDisconnect,
    InjectedFault,
    fire,
    install,
    installed_plan,
    uninstall,
)
from repro.faults.plan import FAULT_KINDS, FAULT_SITES, Fault, FaultPlan

__all__ = [
    "CHANNEL_SEND",
    "CHECKPOINT_FSYNC",
    "CLIENT_RECV",
    "CLIENT_SEND",
    "FAULT_KINDS",
    "FAULT_SITES",
    "SPOOL_FSYNC",
    "SPOOL_WRITTEN",
    "TELEMETRY_FSYNC",
    "WORKER_COMMAND",
    "Fault",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "InjectedDisconnect",
    "InjectedFault",
    "fire",
    "install",
    "installed_plan",
    "uninstall",
]
