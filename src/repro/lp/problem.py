"""Linear program container with sparse (CSR) and dense representations.

The policy-optimization LPs (paper Appendix A, LP2/LP3/LP4) have one
unknown per (state, command) pair, and the balance-equation block that
dominates them is inherently sparse: column ``x[s, a]`` only touches
the states reachable from ``s`` in one slice.  This layer therefore
supports two interchangeable representations:

* a **dense fallback** (row-by-row :meth:`LinearProgram.add_equality`),
  the original clarity-first path, still the default for tiny systems;
* a **first-class sparse path** (:meth:`LinearProgram.add_equality_block`
  with a ``scipy.sparse`` matrix), which flows through standard-form
  conversion (:meth:`to_standard_form`), the revised simplex's factored
  basis, and scipy's HiGHS front end without ever densifying.

Dense accessors (:attr:`A_eq`, :attr:`A_ub`) remain available on sparse
problems for backends and tests that want arrays — they densify on
demand and cache the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.util.validation import ValidationError


@dataclass(frozen=True)
class StandardFormLP:
    """An LP in standard equality form: ``min c.x  s.t.  A x = b, x >= 0``.

    Attributes
    ----------
    c, A, b:
        Objective vector, constraint matrix and right-hand side.  ``A``
        is either a dense ``ndarray`` or a ``scipy.sparse`` CSR matrix;
        consumers dispatch on :attr:`is_sparse`.
    n_original:
        Number of leading variables that correspond to the original
        problem (the remainder are slack variables).
    """

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    n_original: int

    @property
    def is_sparse(self) -> bool:
        """True when ``A`` is stored as a ``scipy.sparse`` matrix."""
        return sp.issparse(self.A)

    @property
    def n_variables(self) -> int:
        """Total variables including slacks."""
        return self.c.size

    @property
    def n_constraints(self) -> int:
        """Number of equality rows."""
        return self.b.size

    def extract_original(self, x: np.ndarray) -> np.ndarray:
        """Project a standard-form solution back onto original variables."""
        return np.asarray(x, dtype=float)[: self.n_original].copy()


class LinearProgram:
    """``min c.x  s.t.  A_eq x = b_eq, A_ub x <= b_ub, x >= 0``.

    All variables are implicitly non-negative — exactly the form of the
    state-action-frequency LPs.  Constraints may be added incrementally,
    which is how the optimizer layers the balance equations, the power
    budget and the request-loss budget (paper LP3 and the loss extension
    of Appendix A).  The balance block can be supplied as one sparse
    matrix (:meth:`add_equality_block`), in which case the whole problem
    stays sparse end to end (:attr:`is_sparse`).

    The container is sweep-friendly: the stacked constraint matrices are
    cached between solves, existing inequality rows can be mutated in
    place (:meth:`set_inequality_rhs`, :meth:`set_inequality`), and
    :meth:`with_upper_bound_row` produces a cheap shallow copy that
    shares the already-assembled equality block — so a Pareto sweep
    assembles the balance equations exactly once.

    Parameters
    ----------
    objective:
        Coefficient vector ``c``.

    Examples
    --------
    >>> lp = LinearProgram([1.0, 2.0])
    >>> lp.add_equality([1.0, 1.0], 1.0)
    >>> lp.add_inequality([1.0, 0.0], 0.75)
    >>> lp.n_variables
    2
    >>> lp.set_inequality_rhs(0, 0.5)
    >>> float(lp.b_ub[0])
    0.5
    >>> import scipy.sparse as sp
    >>> slp = LinearProgram([1.0, 2.0])
    >>> slp.add_equality_block(sp.eye(2, format="csr"), [0.25, 0.75])
    >>> slp.is_sparse, slp.n_equalities
    (True, 2)
    """

    def __init__(self, objective):
        c = np.asarray(objective, dtype=float)
        if c.ndim != 1 or c.size == 0:
            raise ValidationError(f"objective must be a non-empty vector, got shape {c.shape}")
        if not np.all(np.isfinite(c)):
            raise ValidationError("objective contains non-finite entries")
        self._c = c
        # Equality constraints live in *blocks*: each entry is a 2-D
        # dense array or a CSR matrix, paired with its RHS vector.  The
        # row-by-row API appends one-row dense blocks.
        self._eq_blocks: list[tuple[object, np.ndarray]] = []
        self._n_eq = 0
        self._ub_rows: list[np.ndarray] = []
        self._ub_rhs: list[float] = []
        self._A_eq_cache: np.ndarray | None = None
        self._A_eq_sparse_cache: sp.csr_matrix | None = None
        self._A_ub_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _check_row(self, row) -> np.ndarray:
        arr = np.asarray(row, dtype=float)
        if arr.shape != (self._c.size,):
            raise ValidationError(
                f"constraint row has shape {arr.shape}, expected ({self._c.size},)"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError("constraint row contains non-finite entries")
        return arr

    @staticmethod
    def _check_rhs(rhs, kind: str) -> float:
        rhs = float(rhs)
        if not np.isfinite(rhs):
            raise ValidationError(f"{kind} rhs must be finite, got {rhs!r}")
        return rhs

    def _invalidate_eq(self) -> None:
        self._A_eq_cache = None
        self._A_eq_sparse_cache = None

    def add_equality(self, row, rhs: float) -> None:
        """Append the constraint ``row . x == rhs``."""
        arr = self._check_row(row).reshape(1, -1)
        rhs_arr = np.array([self._check_rhs(rhs, "equality")])
        self._eq_blocks.append((arr, rhs_arr))
        self._n_eq += 1
        self._invalidate_eq()

    def add_equality_block(self, matrix, rhs) -> None:
        """Append a block of equality constraints ``matrix @ x == rhs``.

        ``matrix`` may be a ``scipy.sparse`` matrix (kept sparse, making
        the whole problem sparse) or any 2-D dense array-like.  This is
        how the optimizers hand over the balance-equation block in one
        piece instead of row by row.
        """
        rhs_arr = np.asarray(rhs, dtype=float).reshape(-1)
        if not np.all(np.isfinite(rhs_arr)):
            raise ValidationError("equality rhs contains non-finite entries")
        if sp.issparse(matrix):
            block = matrix.tocsr()
            if block.shape[1] != self._c.size:
                raise ValidationError(
                    f"equality block has {block.shape[1]} columns, "
                    f"expected {self._c.size}"
                )
            if block.nnz and not np.all(np.isfinite(block.data)):
                raise ValidationError("equality block contains non-finite entries")
        else:
            block = np.asarray(matrix, dtype=float)
            if block.ndim != 2 or block.shape[1] != self._c.size:
                raise ValidationError(
                    f"equality block must be 2-D with {self._c.size} columns, "
                    f"got shape {block.shape}"
                )
            if not np.all(np.isfinite(block)):
                raise ValidationError("equality block contains non-finite entries")
        if block.shape[0] != rhs_arr.size:
            raise ValidationError(
                f"equality block has {block.shape[0]} rows but rhs has "
                f"{rhs_arr.size} entries"
            )
        self._eq_blocks.append((block, rhs_arr))
        self._n_eq += int(block.shape[0])
        self._invalidate_eq()

    def add_inequality(self, row, rhs: float) -> None:
        """Append the constraint ``row . x <= rhs``."""
        self._ub_rows.append(self._check_row(row))
        self._ub_rhs.append(self._check_rhs(rhs, "inequality"))
        self._A_ub_cache = None

    def add_lower_bound_inequality(self, row, rhs: float) -> None:
        """Append ``row . x >= rhs`` (stored as ``-row . x <= -rhs``)."""
        self.add_inequality(-self._check_row(row), -float(rhs))

    # ------------------------------------------------------------------
    # cheap mutation (the Pareto sweep hot path)
    # ------------------------------------------------------------------
    def _check_inequality_index(self, index: int) -> int:
        index = int(index)
        if not -len(self._ub_rows) <= index < len(self._ub_rows):
            raise ValidationError(
                f"inequality index {index} out of range "
                f"(have {len(self._ub_rows)} rows)"
            )
        return index % len(self._ub_rows) if self._ub_rows else index

    def set_inequality_rhs(self, index: int, rhs: float) -> None:
        """Replace the right-hand side of inequality ``index`` in place.

        The constraint matrix is untouched, so any cached assembly (and
        any warm-start state keyed on the matrix structure) stays valid.
        This is the sweep engine's per-bound mutation.
        """
        index = self._check_inequality_index(index)
        self._ub_rhs[index] = self._check_rhs(rhs, "inequality")

    def set_inequality(self, index: int, row, rhs: float) -> None:
        """Replace inequality ``index`` (row and right-hand side)."""
        index = self._check_inequality_index(index)
        self._ub_rows[index] = self._check_row(row)
        self._ub_rhs[index] = self._check_rhs(rhs, "inequality")
        self._A_ub_cache = None

    def copy(self) -> "LinearProgram":
        """Cheap shallow copy: constraint blocks (never mutated in
        place) are shared, the block lists and caches are independent."""
        clone = LinearProgram.__new__(LinearProgram)
        clone._c = self._c
        clone._eq_blocks = list(self._eq_blocks)
        clone._n_eq = self._n_eq
        clone._ub_rows = list(self._ub_rows)
        clone._ub_rhs = list(self._ub_rhs)
        clone._A_eq_cache = self._A_eq_cache
        clone._A_eq_sparse_cache = self._A_eq_sparse_cache
        clone._A_ub_cache = self._A_ub_cache
        return clone

    def with_upper_bound_row(self, row, rhs: float) -> "LinearProgram":
        """A cheap copy of this LP with one extra ``row . x <= rhs``.

        The equality block (for the policy LPs: the balance equations,
        by far the largest part) is shared with the original, including
        its cached stacked matrix — only the inequality list is new.
        The original is not modified.
        """
        clone = self.copy()
        clone.add_inequality(row, rhs)
        return clone

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return self._c.size

    @property
    def n_equalities(self) -> int:
        """Number of equality constraints added so far."""
        return self._n_eq

    @property
    def n_inequalities(self) -> int:
        """Number of inequality constraints added so far."""
        return len(self._ub_rows)

    @property
    def is_sparse(self) -> bool:
        """True when any equality block is stored sparse.

        Sparse problems flow through standard-form conversion, the
        simplex basis factorization and the scipy front end without
        densifying; dense accessors still work (and densify on demand).
        """
        return any(sp.issparse(block) for block, _ in self._eq_blocks)

    @property
    def c(self) -> np.ndarray:
        """Objective vector (copy)."""
        return self._c.copy()

    @property
    def A_eq(self) -> np.ndarray:
        """Equality matrix as a dense array (cached, read-only).

        On sparse problems this densifies — prefer :attr:`A_eq_sparse`
        there.  Cached so repeated solves over the same constraint
        structure — a Pareto sweep — assemble it once.
        """
        if self._A_eq_cache is None:
            if not self._eq_blocks:
                stacked = np.zeros((0, self._c.size))
            else:
                stacked = np.vstack(
                    [
                        block.toarray() if sp.issparse(block) else block
                        for block, _ in self._eq_blocks
                    ]
                )
            stacked.flags.writeable = False
            self._A_eq_cache = stacked
        return self._A_eq_cache

    @property
    def A_eq_sparse(self) -> sp.csr_matrix:
        """Equality matrix as CSR (cached).

        Defined for every problem; dense blocks are converted.  This is
        the representation the sparse simplex and the scipy (HiGHS)
        backend consume directly.
        """
        if self._A_eq_sparse_cache is None:
            if not self._eq_blocks:
                stacked = sp.csr_matrix((0, self._c.size))
            else:
                stacked = sp.vstack(
                    [sp.csr_matrix(block) for block, _ in self._eq_blocks],
                    format="csr",
                )
            self._A_eq_sparse_cache = stacked
        return self._A_eq_sparse_cache

    @property
    def b_eq(self) -> np.ndarray:
        """Equality right-hand side."""
        if not self._eq_blocks:
            return np.zeros(0)
        return np.concatenate([rhs for _, rhs in self._eq_blocks])

    @property
    def A_ub(self) -> np.ndarray:
        """Inequality matrix, shape ``(n_inequalities, n_variables)``.

        Cached and read-only, like :attr:`A_eq`; RHS-only mutation via
        :meth:`set_inequality_rhs` keeps the cache valid.
        """
        if self._A_ub_cache is None or self._A_ub_cache.shape[0] != len(self._ub_rows):
            if not self._ub_rows:
                stacked = np.zeros((0, self._c.size))
            else:
                stacked = np.vstack(self._ub_rows)
            stacked.flags.writeable = False
            self._A_ub_cache = stacked
        return self._A_ub_cache

    @property
    def b_ub(self) -> np.ndarray:
        """Inequality right-hand side."""
        return np.asarray(self._ub_rhs, dtype=float)

    def objective_value(self, x) -> float:
        """Evaluate ``c . x``."""
        return float(self._c @ np.asarray(x, dtype=float))

    # ------------------------------------------------------------------
    # feasibility checking (used by tests and the cross-check harness)
    # ------------------------------------------------------------------
    def residuals(self, x) -> dict[str, float]:
        """Worst-case constraint violations of a candidate point.

        Returns a dict with keys ``equality`` (max ``|A_eq x - b_eq|``),
        ``inequality`` (max positive part of ``A_ub x - b_ub``) and
        ``bound`` (max positive part of ``-x``).
        """
        x = np.asarray(x, dtype=float)
        eq = 0.0
        if self._n_eq:
            A = self.A_eq_sparse if self.is_sparse else self.A_eq
            eq = float(np.max(np.abs(A @ x - self.b_eq)))
        ub = 0.0
        if self._ub_rows:
            ub = float(np.max(np.clip(self.A_ub @ x - self.b_ub, 0.0, None)))
        bound = float(np.max(np.clip(-x, 0.0, None))) if x.size else 0.0
        return {"equality": eq, "inequality": ub, "bound": bound}

    def is_feasible(self, x, tol: float = 1e-7) -> bool:
        """True when ``x`` satisfies every constraint within ``tol``."""
        res = self.residuals(x)
        return all(v <= tol for v in res.values())

    # ------------------------------------------------------------------
    # standard form
    # ------------------------------------------------------------------
    def to_standard_form(self, sparse: bool | None = None) -> StandardFormLP:
        """Convert to ``min c.x  s.t.  A x = b, x >= 0``.

        Each inequality gains one non-negative slack variable.  Rows of
        the combined system with a negative right-hand side are *not*
        sign-flipped here — backends that need ``b >= 0`` (phase-1
        simplex) handle that locally.

        ``sparse`` selects the representation of the stacked matrix:
        ``None`` (default) follows :attr:`is_sparse`, ``True`` forces a
        CSR matrix, ``False`` forces a dense array.
        """
        if sparse is None:
            sparse = self.is_sparse
        n = self._c.size
        n_ub = len(self._ub_rows)
        c = np.concatenate([self._c, np.zeros(n_ub)])
        if self._n_eq == 0 and n_ub == 0:
            A = sp.csr_matrix((0, n)) if sparse else np.zeros((0, n))
            return StandardFormLP(c=c, A=A, b=np.zeros(0), n_original=n)

        rhs = []
        if sparse:
            blocks = []
            if self._n_eq:
                eq = self.A_eq_sparse
                blocks.append(
                    [eq, sp.csr_matrix((self._n_eq, n_ub))] if n_ub else [eq]
                )
                rhs.append(self.b_eq)
            if n_ub:
                ub = sp.csr_matrix(self.A_ub)
                blocks.append([ub, sp.identity(n_ub, format="csr")])
                rhs.append(self.b_ub)
            A = sp.bmat(blocks, format="csr")
        else:
            blocks = []
            if self._n_eq:
                blocks.append(np.hstack([self.A_eq, np.zeros((self._n_eq, n_ub))]))
                rhs.append(self.b_eq)
            if n_ub:
                blocks.append(np.hstack([self.A_ub, np.eye(n_ub)]))
                rhs.append(self.b_ub)
            A = np.vstack(blocks)
        return StandardFormLP(c=c, A=A, b=np.concatenate(rhs), n_original=n)
