"""Dense linear program container and standard-form conversion.

The policy-optimization LPs (paper Appendix A, LP2/LP3/LP4) are small
and dense — one unknown per (state, command) pair — so this layer keeps
everything as NumPy arrays and favors clarity over sparse machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import ValidationError


@dataclass(frozen=True)
class StandardFormLP:
    """An LP in standard equality form: ``min c.x  s.t.  A x = b, x >= 0``.

    Attributes
    ----------
    c, A, b:
        Objective vector, constraint matrix and right-hand side.
    n_original:
        Number of leading variables that correspond to the original
        problem (the remainder are slack variables).
    """

    c: np.ndarray
    A: np.ndarray
    b: np.ndarray
    n_original: int

    @property
    def n_variables(self) -> int:
        """Total variables including slacks."""
        return self.c.size

    @property
    def n_constraints(self) -> int:
        """Number of equality rows."""
        return self.b.size

    def extract_original(self, x: np.ndarray) -> np.ndarray:
        """Project a standard-form solution back onto original variables."""
        return np.asarray(x, dtype=float)[: self.n_original].copy()


class LinearProgram:
    """``min c.x  s.t.  A_eq x = b_eq, A_ub x <= b_ub, x >= 0``.

    All variables are implicitly non-negative — exactly the form of the
    state-action-frequency LPs.  Constraints may be added incrementally,
    which is how the optimizer layers the balance equations, the power
    budget and the request-loss budget (paper LP3 and the loss extension
    of Appendix A).

    The container is sweep-friendly: the stacked constraint matrices are
    cached between solves, existing inequality rows can be mutated in
    place (:meth:`set_inequality_rhs`, :meth:`set_inequality`), and
    :meth:`with_upper_bound_row` produces a cheap shallow copy that
    shares the already-assembled equality block — so a Pareto sweep
    assembles the balance equations exactly once.

    Parameters
    ----------
    objective:
        Coefficient vector ``c``.

    Examples
    --------
    >>> lp = LinearProgram([1.0, 2.0])
    >>> lp.add_equality([1.0, 1.0], 1.0)
    >>> lp.add_inequality([1.0, 0.0], 0.75)
    >>> lp.n_variables
    2
    >>> lp.set_inequality_rhs(0, 0.5)
    >>> float(lp.b_ub[0])
    0.5
    """

    def __init__(self, objective):
        c = np.asarray(objective, dtype=float)
        if c.ndim != 1 or c.size == 0:
            raise ValidationError(f"objective must be a non-empty vector, got shape {c.shape}")
        if not np.all(np.isfinite(c)):
            raise ValidationError("objective contains non-finite entries")
        self._c = c
        self._eq_rows: list[np.ndarray] = []
        self._eq_rhs: list[float] = []
        self._ub_rows: list[np.ndarray] = []
        self._ub_rhs: list[float] = []
        self._A_eq_cache: np.ndarray | None = None
        self._A_ub_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _check_row(self, row) -> np.ndarray:
        arr = np.asarray(row, dtype=float)
        if arr.shape != (self._c.size,):
            raise ValidationError(
                f"constraint row has shape {arr.shape}, expected ({self._c.size},)"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError("constraint row contains non-finite entries")
        return arr

    @staticmethod
    def _check_rhs(rhs, kind: str) -> float:
        rhs = float(rhs)
        if not np.isfinite(rhs):
            raise ValidationError(f"{kind} rhs must be finite, got {rhs!r}")
        return rhs

    def add_equality(self, row, rhs: float) -> None:
        """Append the constraint ``row . x == rhs``."""
        self._eq_rows.append(self._check_row(row))
        self._eq_rhs.append(self._check_rhs(rhs, "equality"))
        self._A_eq_cache = None

    def add_inequality(self, row, rhs: float) -> None:
        """Append the constraint ``row . x <= rhs``."""
        self._ub_rows.append(self._check_row(row))
        self._ub_rhs.append(self._check_rhs(rhs, "inequality"))
        self._A_ub_cache = None

    def add_lower_bound_inequality(self, row, rhs: float) -> None:
        """Append ``row . x >= rhs`` (stored as ``-row . x <= -rhs``)."""
        self.add_inequality(-self._check_row(row), -float(rhs))

    # ------------------------------------------------------------------
    # cheap mutation (the Pareto sweep hot path)
    # ------------------------------------------------------------------
    def _check_inequality_index(self, index: int) -> int:
        index = int(index)
        if not -len(self._ub_rows) <= index < len(self._ub_rows):
            raise ValidationError(
                f"inequality index {index} out of range "
                f"(have {len(self._ub_rows)} rows)"
            )
        return index % len(self._ub_rows) if self._ub_rows else index

    def set_inequality_rhs(self, index: int, rhs: float) -> None:
        """Replace the right-hand side of inequality ``index`` in place.

        The constraint matrix is untouched, so any cached assembly (and
        any warm-start state keyed on the matrix structure) stays valid.
        This is the sweep engine's per-bound mutation.
        """
        index = self._check_inequality_index(index)
        self._ub_rhs[index] = self._check_rhs(rhs, "inequality")

    def set_inequality(self, index: int, row, rhs: float) -> None:
        """Replace inequality ``index`` (row and right-hand side)."""
        index = self._check_inequality_index(index)
        self._ub_rows[index] = self._check_row(row)
        self._ub_rhs[index] = self._check_rhs(rhs, "inequality")
        self._A_ub_cache = None

    def copy(self) -> "LinearProgram":
        """Cheap shallow copy: row arrays (never mutated in place) are
        shared, the row lists and caches are independent."""
        clone = LinearProgram.__new__(LinearProgram)
        clone._c = self._c
        clone._eq_rows = list(self._eq_rows)
        clone._eq_rhs = list(self._eq_rhs)
        clone._ub_rows = list(self._ub_rows)
        clone._ub_rhs = list(self._ub_rhs)
        clone._A_eq_cache = self._A_eq_cache
        clone._A_ub_cache = self._A_ub_cache
        return clone

    def with_upper_bound_row(self, row, rhs: float) -> "LinearProgram":
        """A cheap copy of this LP with one extra ``row . x <= rhs``.

        The equality block (for the policy LPs: the balance equations,
        by far the largest part) is shared with the original, including
        its cached stacked matrix — only the inequality list is new.
        The original is not modified.
        """
        clone = self.copy()
        clone.add_inequality(row, rhs)
        return clone

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return self._c.size

    @property
    def n_equalities(self) -> int:
        """Number of equality constraints added so far."""
        return len(self._eq_rows)

    @property
    def n_inequalities(self) -> int:
        """Number of inequality constraints added so far."""
        return len(self._ub_rows)

    @property
    def c(self) -> np.ndarray:
        """Objective vector (copy)."""
        return self._c.copy()

    @property
    def A_eq(self) -> np.ndarray:
        """Equality matrix, shape ``(n_equalities, n_variables)``.

        The stacked array is cached (and marked read-only) so repeated
        solves over the same constraint structure — a Pareto sweep —
        assemble it once.
        """
        if self._A_eq_cache is None or self._A_eq_cache.shape[0] != len(self._eq_rows):
            if not self._eq_rows:
                stacked = np.zeros((0, self._c.size))
            else:
                stacked = np.vstack(self._eq_rows)
            stacked.flags.writeable = False
            self._A_eq_cache = stacked
        return self._A_eq_cache

    @property
    def b_eq(self) -> np.ndarray:
        """Equality right-hand side."""
        return np.asarray(self._eq_rhs, dtype=float)

    @property
    def A_ub(self) -> np.ndarray:
        """Inequality matrix, shape ``(n_inequalities, n_variables)``.

        Cached and read-only, like :attr:`A_eq`; RHS-only mutation via
        :meth:`set_inequality_rhs` keeps the cache valid.
        """
        if self._A_ub_cache is None or self._A_ub_cache.shape[0] != len(self._ub_rows):
            if not self._ub_rows:
                stacked = np.zeros((0, self._c.size))
            else:
                stacked = np.vstack(self._ub_rows)
            stacked.flags.writeable = False
            self._A_ub_cache = stacked
        return self._A_ub_cache

    @property
    def b_ub(self) -> np.ndarray:
        """Inequality right-hand side."""
        return np.asarray(self._ub_rhs, dtype=float)

    def objective_value(self, x) -> float:
        """Evaluate ``c . x``."""
        return float(self._c @ np.asarray(x, dtype=float))

    # ------------------------------------------------------------------
    # feasibility checking (used by tests and the cross-check harness)
    # ------------------------------------------------------------------
    def residuals(self, x) -> dict[str, float]:
        """Worst-case constraint violations of a candidate point.

        Returns a dict with keys ``equality`` (max ``|A_eq x - b_eq|``),
        ``inequality`` (max positive part of ``A_ub x - b_ub``) and
        ``bound`` (max positive part of ``-x``).
        """
        x = np.asarray(x, dtype=float)
        eq = 0.0
        if self._eq_rows:
            eq = float(np.max(np.abs(self.A_eq @ x - self.b_eq)))
        ub = 0.0
        if self._ub_rows:
            ub = float(np.max(np.clip(self.A_ub @ x - self.b_ub, 0.0, None)))
        bound = float(np.max(np.clip(-x, 0.0, None))) if x.size else 0.0
        return {"equality": eq, "inequality": ub, "bound": bound}

    def is_feasible(self, x, tol: float = 1e-7) -> bool:
        """True when ``x`` satisfies every constraint within ``tol``."""
        res = self.residuals(x)
        return all(v <= tol for v in res.values())

    # ------------------------------------------------------------------
    # standard form
    # ------------------------------------------------------------------
    def to_standard_form(self) -> StandardFormLP:
        """Convert to ``min c.x  s.t.  A x = b, x >= 0``.

        Each inequality gains one non-negative slack variable.  Rows of
        the combined system with a negative right-hand side are *not*
        sign-flipped here — backends that need ``b >= 0`` (phase-1
        simplex) handle that locally.
        """
        n = self._c.size
        n_ub = len(self._ub_rows)
        c = np.concatenate([self._c, np.zeros(n_ub)])
        blocks = []
        rhs = []
        if self._eq_rows:
            eq_block = np.hstack([self.A_eq, np.zeros((self.n_equalities, n_ub))])
            blocks.append(eq_block)
            rhs.append(self.b_eq)
        if n_ub:
            ub_block = np.hstack([self.A_ub, np.eye(n_ub)])
            blocks.append(ub_block)
            rhs.append(self.b_ub)
        if blocks:
            A = np.vstack(blocks)
            b = np.concatenate(rhs)
        else:
            A = np.zeros((0, n))
            b = np.zeros(0)
        return StandardFormLP(c=c, A=A, b=b, n_original=n)
