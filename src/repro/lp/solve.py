"""Backend dispatch and cross-checking for LP solves.

:func:`solve_lp` is the single entry point the optimizer uses.  The
``backend`` argument selects between the production scipy/HiGHS solver
and the two from-scratch implementations; ``cross_check=True`` runs a
second backend and verifies the optimal objectives agree — cheap
insurance on problems this small and the mechanism behind the solver
equivalence tests.
"""

from __future__ import annotations

from repro.lp import interior_point, scipy_backend, simplex
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult
from repro.util.validation import ValidationError

#: Backend name -> callable(problem, warm_start=None) -> LPResult.
_BACKENDS = {
    "scipy": scipy_backend.solve,
    "interior-point": interior_point.solve,
    "simplex": simplex.solve,
}

#: Backends whose ``warm_start`` argument actually changes the solve
#: path (the others accept and ignore it — documented pass-through).
_WARM_CAPABLE = frozenset({"simplex"})

#: Default agreement tolerance between two backends' objectives.
CROSS_CHECK_TOL = 1e-6


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`solve_lp`'s ``backend`` argument."""
    return tuple(_BACKENDS)


def supports_warm_start(backend: str) -> bool:
    """True when ``backend`` can exploit a ``warm_start`` restart state
    (rather than merely accepting and ignoring it)."""
    return backend in _WARM_CAPABLE


def solve_lp(
    problem: LinearProgram,
    backend: str = "scipy",
    cross_check: bool = False,
    cross_check_backend: str | None = None,
    warm_start: object | None = None,
) -> LPResult:
    """Solve ``problem`` with the selected backend.

    Parameters
    ----------
    problem:
        The LP to solve.
    backend:
        One of :func:`available_backends` (default ``"scipy"``).
    cross_check:
        When True, also solve with ``cross_check_backend`` and raise
        :class:`CrossCheckError` if the two disagree on status or on the
        optimal objective beyond :data:`CROSS_CHECK_TOL` (relative).
    cross_check_backend:
        Backend used for the check; defaults to ``"interior-point"``
        unless that is the primary, in which case ``"scipy"``.
    warm_start:
        Restart state from a previous solve's ``LPResult.warm_start``
        (same constraint structure, RHS changes only).  Exploited by
        warm-capable backends (:func:`supports_warm_start`), accepted
        and ignored by the rest.  The cross-check solve is always cold.

    Sparse problems (:attr:`LinearProgram.is_sparse`) stay sparse on
    the simplex and scipy backends; solve accounting, when the backend
    keeps any, is returned in ``LPResult.stats``.
    """
    if backend not in _BACKENDS:
        raise ValidationError(
            f"unknown LP backend {backend!r}; available: {sorted(_BACKENDS)}"
        )
    result = _BACKENDS[backend](problem, warm_start=warm_start)
    if not cross_check:
        return result

    if cross_check_backend is None:
        cross_check_backend = "interior-point" if backend != "interior-point" else "scipy"
    if cross_check_backend not in _BACKENDS:
        raise ValidationError(
            f"unknown cross-check backend {cross_check_backend!r}; "
            f"available: {sorted(_BACKENDS)}"
        )
    other = _BACKENDS[cross_check_backend](problem)

    if result.is_optimal != other.is_optimal:
        raise CrossCheckError(
            f"backends disagree on solvability: {backend}={result.status.value}, "
            f"{cross_check_backend}={other.status.value}"
        )
    if result.is_optimal:
        scale = 1.0 + abs(result.objective)
        if abs(result.objective - other.objective) > CROSS_CHECK_TOL * scale:
            raise CrossCheckError(
                f"backends disagree on the optimum: {backend}={result.objective!r}, "
                f"{cross_check_backend}={other.objective!r}"
            )
    return result


class CrossCheckError(RuntimeError):
    """Two LP backends disagreed on the same problem."""
