"""scipy (HiGHS) backend for linear programs.

The default production backend: HiGHS is an exact, mature dual-simplex /
interior-point code, used here both as the everyday solver and as the
reference the from-scratch backends are cross-checked against in tests.
Sparse problems (:attr:`LinearProgram.is_sparse`) are handed to
``linprog`` as CSR matrices without densifying — HiGHS consumes them
natively, which is what keeps the deep-queue policy LPs tractable.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus

_STATUS_MAP = {
    0: LPStatus.OPTIMAL,
    1: LPStatus.ITERATION_LIMIT,
    2: LPStatus.INFEASIBLE,
    3: LPStatus.UNBOUNDED,
    4: LPStatus.NUMERICAL_ERROR,
}


def solve(problem: LinearProgram, warm_start: object | None = None) -> LPResult:
    """Solve a :class:`LinearProgram` with scipy's HiGHS.

    ``warm_start`` is accepted for interface uniformity with the
    simplex backend and ignored: scipy's ``linprog`` wrapper does not
    expose HiGHS basis restarts, and HiGHS's own presolve + dual
    simplex make cold solves cheap at this problem size.
    """
    sparse = problem.is_sparse
    if sparse:
        A_eq = problem.A_eq_sparse
        A_ub = problem.A_ub  # bound rows are few and dense by nature
    else:
        A_eq = problem.A_eq
        A_ub = problem.A_ub
    b_eq = problem.b_eq
    b_ub = problem.b_ub
    res = linprog(
        c=problem.c,
        A_eq=A_eq if b_eq.size else None,
        b_eq=b_eq if b_eq.size else None,
        A_ub=A_ub if b_ub.size else None,
        b_ub=b_ub if b_ub.size else None,
        bounds=(0, None),
        method="highs",
    )
    status = _STATUS_MAP.get(res.status, LPStatus.NUMERICAL_ERROR)
    x = np.asarray(res.x, dtype=float) if res.x is not None else None
    dual_eq = None
    dual_ub = None
    if res.status == 0:
        # HiGHS exposes duals through the marginals attributes.
        eqlin = getattr(res, "eqlin", None)
        ineqlin = getattr(res, "ineqlin", None)
        if eqlin is not None and getattr(eqlin, "marginals", None) is not None:
            dual_eq = np.asarray(eqlin.marginals, dtype=float)
        if ineqlin is not None and getattr(ineqlin, "marginals", None) is not None:
            dual_ub = np.asarray(ineqlin.marginals, dtype=float)
    iterations = int(getattr(res, "nit", 0) or 0)
    return LPResult(
        status=status,
        x=np.clip(x, 0.0, None) if (x is not None and status.is_optimal) else None,
        objective=float(res.fun) if status.is_optimal else None,
        iterations=iterations,
        backend="scipy-highs",
        dual_eq=dual_eq,
        dual_ub=dual_ub,
        message=str(res.message),
        stats={
            "sparse": bool(sparse),
            "n_rows": int(b_eq.size + b_ub.size),
            "n_cols": int(problem.n_variables),
            "iterations": iterations,
            # nnz is O(1) off the CSR header; on the dense path counting
            # it would rescan the full matrix every solve of a sweep.
            **({"nnz": int(A_eq.nnz)} if sparse else {}),
        },
    )
