"""Two-phase revised simplex with Bland's anti-cycling rule.

A from-scratch dense simplex used as an independent baseline against the
interior-point solver and scipy.  The policy-optimization LPs are small
(one variable per state-command pair), so each iteration simply
refactorizes the basis with :func:`numpy.linalg.solve` — clarity over
asymptotics.

Entering variables are chosen by Dantzig's rule (most negative reduced
cost) for speed, switching permanently to Bland's rule (lowest index)
after an iteration budget proportional to the problem size, which
guarantees termination even on degenerate instances.

**Warm starts.**  Every optimal solve reports its final basis (and the
set of non-redundant rows) as a :class:`SimplexBasis` in
``LPResult.warm_start``.  When the same problem is re-solved with only
the right-hand side changed — the Pareto sweep's per-bound mutation —
passing that basis back skips phase 1 entirely: the old optimal basis
stays *dual* feasible (``A`` and ``c`` are unchanged), so a handful of
dual-simplex pivots restore primal feasibility, after which the primal
loop certifies optimality.  If the dual pivot runs out of entering
candidates the new instance is provably infeasible; if the warm basis
is unusable (structure changed, singular) the solver silently falls
back to a cold two-phase solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus

#: Pivot tolerance: entries smaller than this are treated as zero.
PIVOT_TOL = 1e-10
#: Reduced-cost tolerance for optimality.
COST_TOL = 1e-9
#: Phase-1 objective above this value means the LP is infeasible.
FEASIBILITY_TOL = 1e-7
#: Ceiling on stall-driven reduced-cost tolerance expansion, as a
#: multiple of the scale-aware base tolerance (4 decades).  Bounding
#: the expansion keeps a genuinely improving pivot from being silently
#: suppressed forever.
ESCALATION_CAP = 1e4


@dataclass(frozen=True)
class SimplexBasis:
    """Restart state of an optimal simplex solve.

    Attributes
    ----------
    basis:
        Standard-form variable indices of the optimal basis, one per
        kept row.
    rows:
        Indices of the standard-form rows the basis refers to (phase 1
        drops rows proved linearly redundant; redundancy depends only
        on ``A``, so the kept set survives RHS changes).
    """

    basis: tuple[int, ...]
    rows: tuple[int, ...]


class _SimplexState:
    """Mutable tableau-free simplex state over a standard-form LP."""

    def __init__(self, A: np.ndarray, b: np.ndarray, c: np.ndarray, basis: list[int]):
        self.A = A
        self.b = b
        self.c = c
        self.basis = basis
        self.iterations = 0
        #: True once the optimality tolerance had to be widened on a
        #: stall — conclusions that depend on exact optimality (the
        #: phase-1 infeasibility proof) must not be trusted then.
        self.tolerance_escalated = False

    def solve_basis(self) -> np.ndarray:
        """Current basic solution ``x_B = B^{-1} b``."""
        B = self.A[:, self.basis]
        return np.linalg.solve(B, self.b)

    def run(self, max_iterations: int) -> str:
        """Iterate to optimality; returns 'optimal' or 'unbounded'.

        The optimality test is scale-aware (relative to ``max |c|``)
        and escalates when the objective stalls: on an ill-conditioned
        basis the computed reduced costs carry noise that can sit just
        below a fixed tolerance, producing endless zero-length pivots
        at the optimum.  After a long window with no objective
        improvement the tolerance is widened a decade at a time (up to
        :data:`ESCALATION_CAP` times its base value, and flagged via
        ``tolerance_escalated``) until the phantom candidates
        disappear — a bounded, Harris-style tolerance expansion.
        """
        m, n = self.A.shape
        bland_after = max_iterations // 2
        base_tol = COST_TOL * (1.0 + float(np.max(np.abs(self.c))))
        tol = base_tol
        best_objective = np.inf
        last_improvement = 0
        stall_window = max(100, 2 * m)
        while True:
            if self.iterations >= max_iterations:
                return "iteration_limit"
            self.iterations += 1
            use_bland = self.iterations > bland_after

            B = self.A[:, self.basis]
            try:
                x_b = np.linalg.solve(B, self.b)
                y = np.linalg.solve(B.T, self.c[self.basis])
            except np.linalg.LinAlgError:
                return "numerical_error"

            objective = float(self.c[self.basis] @ x_b)
            if objective < best_objective - 1e-12 * (1.0 + abs(best_objective)):
                best_objective = objective
                last_improvement = self.iterations
            elif (
                self.iterations - last_improvement >= stall_window
                and tol < base_tol * ESCALATION_CAP
            ):
                tol *= 10.0
                self.tolerance_escalated = True
                last_improvement = self.iterations

            reduced = self.c - self.A.T @ y
            reduced[self.basis] = 0.0
            candidates = np.where(reduced < -tol)[0]
            if candidates.size == 0:
                return "optimal"
            if use_bland:
                entering = int(candidates[0])
            else:
                entering = int(candidates[np.argmin(reduced[candidates])])

            direction = np.linalg.solve(B, self.A[:, entering])
            positive = np.where(direction > PIVOT_TOL)[0]
            if positive.size == 0:
                return "unbounded"
            ratios = x_b[positive] / direction[positive]
            best = ratios.min()
            ties = positive[np.where(ratios <= best + PIVOT_TOL)[0]]
            if use_bland:
                # Lowest *variable* index among ties (Bland's rule).
                leaving_row = min(ties, key=lambda r: self.basis[r])
            else:
                # Largest pivot among ties for numerical stability.
                leaving_row = max(ties, key=lambda r: direction[r])
            self.basis[leaving_row] = entering

    def dual_run(self, max_iterations: int) -> str:
        """Dual-simplex pivots from a dual-feasible basis.

        Drives negative basic variables out while preserving dual
        feasibility; returns ``'feasible'`` once the basic solution is
        primal feasible (and hence optimal, since reduced costs stay
        non-negative) or ``'infeasible'`` when a leaving row admits no
        entering column — the standard dual-unboundedness certificate
        of primal infeasibility.
        """
        m, _ = self.A.shape
        bland_after = max_iterations // 2
        in_basis = np.zeros(self.A.shape[1], dtype=bool)
        while True:
            if self.iterations >= max_iterations:
                return "iteration_limit"
            self.iterations += 1
            use_bland = self.iterations > bland_after

            B = self.A[:, self.basis]
            try:
                x_b = np.linalg.solve(B, self.b)
                y = np.linalg.solve(B.T, self.c[self.basis])
            except np.linalg.LinAlgError:
                return "numerical_error"
            negative = np.where(x_b < -PIVOT_TOL)[0]
            if negative.size == 0:
                return "feasible"
            if use_bland:
                leaving_row = int(negative[0])
            else:
                leaving_row = int(negative[np.argmin(x_b[negative])])

            unit = np.zeros(m)
            unit[leaving_row] = 1.0
            try:
                rho = np.linalg.solve(B.T, unit)
            except np.linalg.LinAlgError:
                return "numerical_error"
            alpha = rho @ self.A
            reduced = self.c - self.A.T @ y
            reduced[self.basis] = 0.0
            in_basis[:] = False
            in_basis[self.basis] = True
            candidates = np.where((alpha < -PIVOT_TOL) & ~in_basis)[0]
            if candidates.size == 0:
                return "infeasible"
            ratios = reduced[candidates] / -alpha[candidates]
            best = ratios.min()
            ties = candidates[np.where(ratios <= best + COST_TOL)[0]]
            if use_bland:
                entering = int(ties[0])
            else:
                # Largest pivot magnitude among ties for stability.
                entering = int(ties[np.argmin(alpha[ties])])
            self.basis[leaving_row] = entering


def _prepare(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flip rows so the right-hand side is non-negative."""
    A = A.copy()
    b = b.copy()
    negative = b < 0
    A[negative] *= -1.0
    b[negative] *= -1.0
    return A, b


def _finish_optimal(
    state: _SimplexState,
    std: StandardFormLP,
    rows,
    iterations: int,
) -> LPResult:
    """Package an optimal phase-2/warm state as an LPResult."""
    n = std.c.size
    x = np.zeros(n)
    x[state.basis] = np.clip(state.solve_basis(), 0.0, None)
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=std.extract_original(x),
        objective=float(std.c @ x),
        iterations=iterations,
        backend="simplex",
        warm_start=SimplexBasis(basis=tuple(state.basis), rows=tuple(rows)),
    )


def _warm_solve(
    std: StandardFormLP, warm: SimplexBasis, max_iterations: int
) -> LPResult | None:
    """Attempt a warm-started solve from a previous optimal basis.

    Returns ``None`` when the basis cannot be reused (structure
    mismatch, singular basis, lost dual feasibility, pivot budget) —
    the caller then falls back to the cold two-phase path.  Row sign
    flips are unnecessary here: scaling a row of ``[A | b]`` by -1
    never changes the solution set, and only phase 1's artificial
    basis needs ``b >= 0``.
    """
    m, n = std.A.shape
    basis = [int(v) for v in warm.basis]
    rows = [int(r) for r in warm.rows]
    if len(basis) != len(rows) or not basis:
        return None
    if min(basis) < 0 or max(basis) >= n or min(rows) < 0 or max(rows) >= m:
        return None
    A2 = std.A[rows]
    b2 = std.b[rows]
    c = std.c.copy()
    state = _SimplexState(A2, b2, c, basis)
    try:
        B = A2[:, basis]
        x_b = np.linalg.solve(B, b2)
        y = np.linalg.solve(B.T, c[basis])
    except np.linalg.LinAlgError:
        return None
    reduced = c - A2.T @ y
    reduced[basis] = 0.0
    if reduced.min() < -COST_TOL:
        # Not dual feasible (c or A changed?): warm start is invalid.
        return None
    if x_b.min() < -PIVOT_TOL:
        status = state.dual_run(max_iterations)
        if status == "infeasible":
            return LPResult(
                status=LPStatus.INFEASIBLE,
                backend="simplex",
                iterations=state.iterations,
                message="dual simplex: no entering column for a negative basic",
            )
        if status != "feasible":
            return None
    status = state.run(max_iterations)
    if status == "optimal":
        return _finish_optimal(state, std, rows, state.iterations)
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED, backend="simplex", iterations=state.iterations
        )
    return None


def _perturbed_recovery(
    std: StandardFormLP, max_iterations: int
) -> LPResult | None:
    """Degeneracy recovery: re-solve with a tiny generic RHS shift.

    Cycling and singular-basis breakdowns on these LPs come from primal
    degeneracy (many basic variables at exactly zero).  A tiny generic
    perturbation of ``b`` makes the polytope simple, so the pivot path
    avoids the degenerate trap; the perturbed optimal basis is then
    re-verified against the *true* right-hand side through the
    warm-start machinery — dual feasibility carries over exactly (``A``
    and ``c`` are untouched), so the dual-simplex cleanup either
    certifies a true optimum or proves true infeasibility.  Returns
    ``None`` when no attempt produces a certified result.
    """
    m = std.b.size
    if m == 0:
        return None
    # Deterministic generic jitter: golden-ratio fractional parts.
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    jitter = np.modf(np.arange(1, m + 1) * phi)[0]
    budget = min(max_iterations, 5 * (m + std.c.size) + 1000)
    for scale in (1e-8, 1e-6):
        eps = scale * (1.0 + np.abs(std.b)) * (0.25 + 0.75 * jitter)
        perturbed = StandardFormLP(
            c=std.c, A=std.A, b=std.b + eps, n_original=std.n_original
        )
        trial = _cold_solve(perturbed, budget)
        if not trial.is_optimal or trial.warm_start is None:
            continue
        fixed = _warm_solve(std, trial.warm_start, budget)
        if fixed is not None and fixed.status in (
            LPStatus.OPTIMAL,
            LPStatus.INFEASIBLE,
        ):
            fixed.message = (
                f"recovered via perturbed restart (scale {scale:g}); "
                + fixed.message
            ).rstrip("; ")
            return fixed
    return None


def solve_standard_form(
    std: StandardFormLP,
    max_iterations: int | None = None,
    warm_start: SimplexBasis | None = None,
) -> LPResult:
    """Solve a standard-form LP with the two-phase revised simplex.

    Parameters
    ----------
    std:
        Problem in ``min c.x, A x = b, x >= 0`` form.
    max_iterations:
        Per-phase iteration budget; defaults to ``50 * (m + n) + 1000``.
    warm_start:
        A :class:`SimplexBasis` from a previous optimal solve of the
        same constraint structure (only RHS changes allowed).  Invalid
        or unusable bases silently fall back to the cold path.

    Degenerate instances that stall (iteration limit) or break the
    basis factorization (numerical error) are retried once through
    :func:`_perturbed_recovery` before the failure is reported.
    """
    if max_iterations is None:
        m0, n0 = std.A.shape
        max_iterations = 50 * (m0 + n0) + 1000

    if warm_start is not None and std.A.shape[0]:
        warm_result = _warm_solve(std, warm_start, max_iterations)
        if warm_result is not None:
            return warm_result

    result = _cold_solve(std, max_iterations)
    if result.status in (LPStatus.NUMERICAL_ERROR, LPStatus.ITERATION_LIMIT):
        recovered = _perturbed_recovery(std, max_iterations)
        if recovered is not None:
            return recovered
    return result


def _cold_solve(std: StandardFormLP, max_iterations: int) -> LPResult:
    """The two-phase path on a standard-form problem."""
    A, b = _prepare(std.A, std.b)
    c = std.c.copy()
    m, n = A.shape

    if m == 0:
        # No constraints: optimum is x = 0 unless some cost is negative.
        if np.any(c < -COST_TOL):
            return LPResult(status=LPStatus.UNBOUNDED, backend="simplex")
        x = np.zeros(n)
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(x),
            objective=0.0,
            backend="simplex",
        )

    # ------------------------------------------------------------------
    # Phase 1: artificial variables form the starting identity basis.
    # ------------------------------------------------------------------
    A1 = np.hstack([A, np.eye(m)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = list(range(n, n + m))
    phase1 = _SimplexState(A1, b, c1, basis)
    status = phase1.run(max_iterations)
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 terminated with {status}",
        )
    x_b = phase1.solve_basis()
    phase1_objective = float(c1[phase1.basis] @ x_b)
    if phase1_objective > FEASIBILITY_TOL:
        if phase1.tolerance_escalated:
            # Phase 1 only "finished" because the stalled tolerance was
            # widened; positive artificials are then not a trustworthy
            # infeasibility proof.  Report a numerical failure so the
            # perturbed-restart recovery runs and downstream consumers
            # (the sweep's feasibility bisection) do not treat this as
            # a clean certificate.
            return LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                backend="simplex",
                iterations=phase1.iterations,
                message=(
                    f"phase 1 stalled at objective {phase1_objective:.3e} "
                    f"under an escalated tolerance"
                ),
            )
        return LPResult(
            status=LPStatus.INFEASIBLE,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 objective {phase1_objective:.3e}",
        )

    # Drive any artificial variables still in the basis (at zero level)
    # out; rows where no original column can pivot are redundant and
    # dropped together with their artificial.
    keep_rows = list(range(m))
    for row in range(m):
        var = phase1.basis[row]
        if var < n:
            continue
        B = A1[:, phase1.basis]
        tableau_row = np.linalg.solve(B, A1)[row]
        pivots = [
            j
            for j in range(n)
            if abs(tableau_row[j]) > PIVOT_TOL and j not in phase1.basis
        ]
        if pivots:
            phase1.basis[row] = pivots[0]
        else:
            keep_rows.remove(row)

    rows = np.asarray(keep_rows, dtype=int)
    A2 = A[rows]
    b2 = b[rows]
    basis2 = [phase1.basis[r] for r in keep_rows]
    if any(v >= n for v in basis2):  # pragma: no cover - defensive
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=phase1.iterations,
            message="could not eliminate artificial variables",
        )

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective from the feasible basis.
    # ------------------------------------------------------------------
    phase2 = _SimplexState(A2, b2, c, basis2)
    status = phase2.run(max_iterations)
    total_iters = phase1.iterations + phase2.iterations
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED, backend="simplex", iterations=total_iters
        )
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=total_iters,
            message=f"phase 2 terminated with {status}",
        )

    return _finish_optimal(phase2, std, keep_rows, total_iters)


def solve(
    problem: LinearProgram,
    max_iterations: int | None = None,
    warm_start: SimplexBasis | None = None,
) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase simplex.

    ``warm_start`` accepts the :class:`SimplexBasis` reported by a
    previous optimal solve of the same problem structure; see
    :func:`solve_standard_form`.
    """
    return solve_standard_form(
        problem.to_standard_form(), max_iterations, warm_start=warm_start
    )
