"""Two-phase revised simplex with Bland's anti-cycling rule.

A from-scratch dense simplex used as an independent baseline against the
interior-point solver and scipy.  The policy-optimization LPs are small
(one variable per state-command pair), so each iteration simply
refactorizes the basis with :func:`numpy.linalg.solve` — clarity over
asymptotics.

Entering variables are chosen by Dantzig's rule (most negative reduced
cost) for speed, switching permanently to Bland's rule (lowest index)
after an iteration budget proportional to the problem size, which
guarantees termination even on degenerate instances.
"""

from __future__ import annotations

import numpy as np

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus

#: Pivot tolerance: entries smaller than this are treated as zero.
PIVOT_TOL = 1e-10
#: Reduced-cost tolerance for optimality.
COST_TOL = 1e-9
#: Phase-1 objective above this value means the LP is infeasible.
FEASIBILITY_TOL = 1e-7


class _SimplexState:
    """Mutable tableau-free simplex state over a standard-form LP."""

    def __init__(self, A: np.ndarray, b: np.ndarray, c: np.ndarray, basis: list[int]):
        self.A = A
        self.b = b
        self.c = c
        self.basis = basis
        self.iterations = 0

    def solve_basis(self) -> np.ndarray:
        """Current basic solution ``x_B = B^{-1} b``."""
        B = self.A[:, self.basis]
        return np.linalg.solve(B, self.b)

    def run(self, max_iterations: int) -> str:
        """Iterate to optimality; returns 'optimal' or 'unbounded'."""
        m, n = self.A.shape
        bland_after = max_iterations // 2
        while True:
            if self.iterations >= max_iterations:
                return "iteration_limit"
            self.iterations += 1
            use_bland = self.iterations > bland_after

            B = self.A[:, self.basis]
            try:
                x_b = np.linalg.solve(B, self.b)
                y = np.linalg.solve(B.T, self.c[self.basis])
            except np.linalg.LinAlgError:
                return "numerical_error"

            reduced = self.c - self.A.T @ y
            reduced[self.basis] = 0.0
            candidates = np.where(reduced < -COST_TOL)[0]
            if candidates.size == 0:
                return "optimal"
            if use_bland:
                entering = int(candidates[0])
            else:
                entering = int(candidates[np.argmin(reduced[candidates])])

            direction = np.linalg.solve(B, self.A[:, entering])
            positive = np.where(direction > PIVOT_TOL)[0]
            if positive.size == 0:
                return "unbounded"
            ratios = x_b[positive] / direction[positive]
            best = ratios.min()
            ties = positive[np.where(ratios <= best + PIVOT_TOL)[0]]
            if use_bland:
                # Lowest *variable* index among ties (Bland's rule).
                leaving_row = min(ties, key=lambda r: self.basis[r])
            else:
                # Largest pivot among ties for numerical stability.
                leaving_row = max(ties, key=lambda r: direction[r])
            self.basis[leaving_row] = entering


def _prepare(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flip rows so the right-hand side is non-negative."""
    A = A.copy()
    b = b.copy()
    negative = b < 0
    A[negative] *= -1.0
    b[negative] *= -1.0
    return A, b


def solve_standard_form(
    std: StandardFormLP, max_iterations: int | None = None
) -> LPResult:
    """Solve a standard-form LP with the two-phase revised simplex.

    Parameters
    ----------
    std:
        Problem in ``min c.x, A x = b, x >= 0`` form.
    max_iterations:
        Per-phase iteration budget; defaults to ``50 * (m + n) + 1000``.
    """
    A, b = _prepare(std.A, std.b)
    c = std.c.copy()
    m, n = A.shape
    if max_iterations is None:
        max_iterations = 50 * (m + n) + 1000

    if m == 0:
        # No constraints: optimum is x = 0 unless some cost is negative.
        if np.any(c < -COST_TOL):
            return LPResult(status=LPStatus.UNBOUNDED, backend="simplex")
        x = np.zeros(n)
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(x),
            objective=0.0,
            backend="simplex",
        )

    # ------------------------------------------------------------------
    # Phase 1: artificial variables form the starting identity basis.
    # ------------------------------------------------------------------
    A1 = np.hstack([A, np.eye(m)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = list(range(n, n + m))
    phase1 = _SimplexState(A1, b, c1, basis)
    status = phase1.run(max_iterations)
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 terminated with {status}",
        )
    x_b = phase1.solve_basis()
    phase1_objective = float(c1[phase1.basis] @ x_b)
    if phase1_objective > FEASIBILITY_TOL:
        return LPResult(
            status=LPStatus.INFEASIBLE,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 objective {phase1_objective:.3e}",
        )

    # Drive any artificial variables still in the basis (at zero level)
    # out; rows where no original column can pivot are redundant and
    # dropped together with their artificial.
    keep_rows = list(range(m))
    for row in range(m):
        var = phase1.basis[row]
        if var < n:
            continue
        B = A1[:, phase1.basis]
        tableau_row = np.linalg.solve(B, A1)[row]
        pivots = [
            j
            for j in range(n)
            if abs(tableau_row[j]) > PIVOT_TOL and j not in phase1.basis
        ]
        if pivots:
            phase1.basis[row] = pivots[0]
        else:
            keep_rows.remove(row)

    rows = np.asarray(keep_rows, dtype=int)
    A2 = A[rows]
    b2 = b[rows]
    basis2 = [phase1.basis[r] for r in keep_rows]
    if any(v >= n for v in basis2):  # pragma: no cover - defensive
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=phase1.iterations,
            message="could not eliminate artificial variables",
        )

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective from the feasible basis.
    # ------------------------------------------------------------------
    phase2 = _SimplexState(A2, b2, c, basis2)
    status = phase2.run(max_iterations)
    total_iters = phase1.iterations + phase2.iterations
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED, backend="simplex", iterations=total_iters
        )
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=total_iters,
            message=f"phase 2 terminated with {status}",
        )

    x = np.zeros(n)
    x[phase2.basis] = np.clip(phase2.solve_basis(), 0.0, None)
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=std.extract_original(x),
        objective=float(c @ x),
        iterations=total_iters,
        backend="simplex",
    )


def solve(problem: LinearProgram, max_iterations: int | None = None) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase simplex."""
    return solve_standard_form(problem.to_standard_form(), max_iterations)
