"""Two-phase revised simplex over a factored basis (dense or sparse).

A from-scratch simplex used as an independent baseline against the
interior-point solver and scipy, and the library's warm-startable
production path for Pareto sweeps and fleet refits.  Originally each
iteration refactorized the basis with two dense ``np.linalg.solve``
calls (O(m^3) per pivot) and priced against a fully dense ``A``; the
policy LPs outgrew that, so the solver now runs *revised*:

* **Factored basis.**  ``B = A[:, basis]`` is factorized once
  (:func:`scipy.linalg.lu_factor` dense, :func:`scipy.sparse.linalg.splu`
  sparse) and kept current through product-form (eta) updates; a full
  refactorization happens only every :data:`REFRESH` pivots or when an
  update would be numerically unsafe.  FTRAN/BTRAN solves are O(m^2)
  dense / O(nnz of the factors) sparse instead of O(m^3).
* **Sparse pricing.**  When ``A`` is a ``scipy.sparse`` matrix (the
  balance-equation LPs assembled by the optimizers), reduced costs are
  one O(nnz) sparse mat-vec.  On wide problems a candidate-list
  (partial) pricing scheme prices a short list of recently-attractive
  columns per iteration and falls back to a full pass only when the
  list runs dry — optimality is always certified by a full pass.
* **Phases and restarts on the factored path.**  Phase 1, phase 2, the
  dual-simplex warm restart used by the Pareto sweep engine and the
  perturbed degeneracy recovery all share the same factored engine.

Entering variables are chosen by Dantzig's rule (most negative reduced
cost) for speed, switching permanently to Bland's rule (lowest index,
full pricing) after an iteration budget proportional to the problem
size, which guarantees termination even on degenerate instances.

**Warm starts.**  Every optimal solve reports its final basis (and the
set of non-redundant rows) as a :class:`SimplexBasis` in
``LPResult.warm_start``.  When the same problem is re-solved with only
the right-hand side changed — the Pareto sweep's per-bound mutation —
passing that basis back skips phase 1 entirely: the old optimal basis
stays *dual* feasible (``A`` and ``c`` are unchanged), so a handful of
dual-simplex pivots restore primal feasibility, after which the primal
loop certifies optimality.  If the dual pivot runs out of entering
candidates the new instance is provably infeasible; if the warm basis
is unusable (structure changed, singular) the solver silently falls
back to a cold two-phase solve.

Solve accounting (iterations, refactorizations, eta updates, factor
fill-in, pricing mode) is reported in ``LPResult.stats``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
import scipy.linalg
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus

#: Pivot tolerance: entries smaller than this are treated as zero.
PIVOT_TOL = 1e-10
#: Reduced-cost tolerance for optimality.
COST_TOL = 1e-9
#: Phase-1 objective above this value means the LP is infeasible.
FEASIBILITY_TOL = 1e-7
#: Ceiling on stall-driven reduced-cost tolerance expansion, as a
#: multiple of the scale-aware base tolerance (4 decades).  Bounding
#: the expansion keeps a genuinely improving pivot from being silently
#: suppressed forever.
ESCALATION_CAP = 1e4
#: Eta updates between full basis refactorizations.  The cadence trades
#: one O(m^3)/O(fill) factorization against ever-longer eta chains in
#: each FTRAN/BTRAN; ~2 x sqrt(m) at m=1000, the classic ballpark.
REFRESH = 64
#: Relative U-diagonal threshold below which the basis counts as
#: ill-conditioned: eta updates are suspended (every pivot
#: refactorizes) until conditioning recovers, mirroring the original
#: solve-from-scratch behaviour that let degenerate instances limp
#: through a badly conditioned stretch instead of aborting.
ILL_CONDITIONED_TOL = 1e-14
#: Full Dantzig pricing below this column count; candidate-list
#: (partial) pricing above it.
PARTIAL_PRICING_MIN_COLS = 1024
#: Scale-aware dual-feasibility tolerance for accepting a warm-start
#: basis.  The check exists to reject bases from a *different* problem
#: (changed ``c`` or ``A``), which violate by O(1); factored-basis
#: round-off on ill-conditioned instances reaches ~1e-8, so the
#: threshold sits well above noise and far below real mismatches.  The
#: subsequent primal loop re-certifies optimality at its own tolerance
#: either way, and the dual loop's infeasibility certificate (an empty
#: entering-candidate row) does not depend on reduced-cost signs.
WARM_DUAL_TOL = 1e-7


class _SingularBasis(Exception):
    """The current basis could not be factorized."""


@dataclass(frozen=True)
class SimplexBasis:
    """Restart state of an optimal simplex solve.

    Attributes
    ----------
    basis:
        Standard-form variable indices of the optimal basis, one per
        kept row.
    rows:
        Indices of the standard-form rows the basis refers to (phase 1
        drops rows proved linearly redundant; redundancy depends only
        on ``A``, so the kept set survives RHS changes).
    """

    basis: tuple[int, ...]
    rows: tuple[int, ...]


class _BasisFactor:
    """LU factorization of ``B = A[:, basis]`` with product-form updates.

    The factorization is refreshed from scratch every :data:`REFRESH`
    pivots; in between, each pivot appends one eta vector (the entering
    column in the old basis), so FTRAN/BTRAN apply the LU solve plus a
    chain of O(m) eta transforms instead of refactorizing.
    """

    def __init__(self, A, basis: list[int], refresh: int = REFRESH):
        self._A = A
        self._sparse = sp.issparse(A)
        self._basis = basis  # shared with the owning state, kept live
        self._refresh = int(refresh)
        self._etas: list[tuple[int, np.ndarray]] = []
        self.refactorizations = 0
        self.eta_updates = 0
        self.basis_nnz = 0
        self.fill_nnz = 0
        self.refactorize()

    def refactorize(self) -> None:
        """Factorize the current basis from scratch (drops the etas).

        Exactly singular bases raise :class:`_SingularBasis` (matching
        the old ``np.linalg.solve`` breakdown); merely ill-conditioned
        ones set :attr:`ill_conditioned`, which suspends eta updates so
        each subsequent pivot re-factorizes until conditioning
        recovers.
        """
        self._etas.clear()
        m = self._A.shape[0]
        if self._sparse:
            B = self._A[:, self._basis].tocsc()
            self.basis_nnz = int(B.nnz)
            try:
                with np.errstate(all="ignore"):
                    self._lu = splu(B)
            except RuntimeError as exc:  # singular (or structurally so)
                raise _SingularBasis(str(exc)) from None
            self.fill_nnz = int(self._lu.L.nnz + self._lu.U.nnz)
            diag = np.abs(self._lu.U.diagonal())
        else:
            B = self._A[:, self._basis]
            self.basis_nnz = int(np.count_nonzero(B))
            with np.errstate(all="ignore"), warnings.catch_warnings():
                warnings.simplefilter("ignore")
                lu, piv = scipy.linalg.lu_factor(B, check_finite=False)
            diag = np.abs(np.diag(lu))
            if not np.all(np.isfinite(lu)) or (m and diag.min() == 0.0):
                raise _SingularBasis("singular basis matrix")
            self._lu = (lu, piv)
            self.fill_nnz = m * m
        self.ill_conditioned = bool(
            m and diag.min() <= ILL_CONDITIONED_TOL * max(1.0, diag.max())
        )
        self.refactorizations += 1

    @property
    def has_etas(self) -> bool:
        """True when eta updates are pending on top of the LU factors."""
        return bool(self._etas)

    @property
    def fill_ratio(self) -> float:
        """Factor nnz over basis nnz at the last refactorization."""
        return self.fill_nnz / max(1, self.basis_nnz)

    def _base_ftran(self, v: np.ndarray) -> np.ndarray:
        if self._sparse:
            return self._lu.solve(v)
        return scipy.linalg.lu_solve(self._lu, v, check_finite=False)

    def _base_btran(self, v: np.ndarray) -> np.ndarray:
        if self._sparse:
            return self._lu.solve(v, trans="T")
        return scipy.linalg.lu_solve(self._lu, v, trans=1, check_finite=False)

    def ftran(self, v) -> np.ndarray:
        """Solve ``B x = v`` through the factors and the eta chain."""
        x = self._base_ftran(np.asarray(v, dtype=float))
        for r, d in self._etas:
            xr = x[r] / d[r]
            if xr != 0.0:
                x -= d * xr
            x[r] = xr
        return x

    def btran(self, v) -> np.ndarray:
        """Solve ``B^T y = v`` through the eta chain and the factors."""
        y = np.asarray(v, dtype=float).copy()
        for r, d in reversed(self._etas):
            y[r] = (y[r] - (d @ y - d[r] * y[r])) / d[r]
        return self._base_btran(y)

    def pivot(self, leaving_row: int, direction: np.ndarray) -> None:
        """Record the basis exchange that replaced ``basis[leaving_row]``.

        ``direction`` is the entering column expressed in the *old*
        basis (``B_old^{-1} a_entering``); the caller has already
        mutated the shared basis list.  Appends one eta, refactorizing
        instead when the chain is full or the pivot is unsafely small.
        """
        if (
            len(self._etas) >= self._refresh
            or self.ill_conditioned
            or abs(direction[leaving_row]) < PIVOT_TOL
        ):
            self.refactorize()
        else:
            self._etas.append((int(leaving_row), np.asarray(direction, dtype=float)))
            self.eta_updates += 1


class _SimplexState:
    """Mutable revised-simplex state over a standard-form LP.

    ``A`` may be a dense array or any ``scipy.sparse`` matrix (stored
    CSC internally for cheap column access); the factored basis and all
    pricing operations dispatch on that representation.
    """

    def __init__(self, A, b: np.ndarray, c: np.ndarray, basis: list[int]):
        self._sparse = sp.issparse(A)
        self.A = A.tocsc() if self._sparse else A
        # Cache the row-major transpose: reduced-cost pricing and the
        # dual ratio row each need one A^T mat-vec per iteration, and
        # rebuilding the transpose wrapper per call costs more than the
        # product itself at these sizes.
        self._A_T = self.A.T.tocsr() if self._sparse else self.A.T
        self.b = b
        self.c = c
        self.basis = basis
        self.iterations = 0
        self.factor: _BasisFactor | None = None
        #: Candidate list for partial pricing (wide problems only),
        #: with its column-subset transpose cached at refresh time.
        self._candidates: np.ndarray | None = None
        self._candidates_T = None
        #: True once partial pricing actually ran (a candidate list was
        #: built or consulted) — narrow problems, Bland stretches and
        #: pure dual-simplex solves never do, whatever the width.
        self.used_partial_pricing = False
        self._in_basis = np.zeros(self.A.shape[1], dtype=bool)
        self._in_basis[basis] = True
        #: True once the optimality tolerance had to be widened on a
        #: stall — conclusions that depend on exact optimality (the
        #: phase-1 infeasibility proof) must not be trusted then.
        self.tolerance_escalated = False

    # -- factored linear algebra ---------------------------------------
    def ensure_factor(self) -> None:
        if self.factor is None:
            self.factor = _BasisFactor(self.A, self.basis)

    def column(self, j: int) -> np.ndarray:
        """Dense copy of column ``j`` of ``A``."""
        if self._sparse:
            A = self.A
            start, end = A.indptr[j], A.indptr[j + 1]
            col = np.zeros(A.shape[0])
            col[A.indices[start:end]] = A.data[start:end]
            return col
        return self.A[:, j]

    def reduced_costs(self, y: np.ndarray) -> np.ndarray:
        """Full reduced-cost vector ``c - A^T y`` (basis entries zeroed)."""
        reduced = self.c - self._A_T @ y
        reduced[self.basis] = 0.0
        return reduced

    def solve_basis(self, exact: bool = False) -> np.ndarray:
        """Current basic solution ``x_B = B^{-1} b``.

        ``exact=True`` refactorizes first, dropping any eta-chain
        round-off — used at phase boundaries and when packaging the
        final solution.
        """
        self.ensure_factor()
        if exact and self.factor.has_etas:
            self.factor.refactorize()
        return self.factor.ftran(self.b)

    def _pivot(self, leaving_row: int, entering: int, direction: np.ndarray) -> None:
        self._in_basis[self.basis[leaving_row]] = False
        self._in_basis[entering] = True
        self.basis[leaving_row] = entering
        self.factor.pivot(leaving_row, direction)

    # -- pricing -------------------------------------------------------
    def _price(self, y: np.ndarray, tol: float, use_bland: bool) -> int | None:
        """Entering column index, or ``None`` when provably optimal.

        Bland mode always runs a full pass (lowest eligible index, the
        termination guarantee).  Otherwise narrow problems use full
        Dantzig pricing; wide problems keep a candidate list of the
        most attractive columns from the last full pass and only
        re-price those, refreshing the list — and certifying optimality
        — with a full pass when the list yields nothing.
        """
        n = self.A.shape[1]
        if use_bland:
            reduced = self.reduced_costs(y)
            candidates = np.where(reduced < -tol)[0]
            if candidates.size == 0:
                return None
            return int(candidates[0])

        if n > PARTIAL_PRICING_MIN_COLS and self._candidates is not None:
            self.used_partial_pricing = True
            cand = self._candidates
            r_cand = self.c[cand] - (self._candidates_T @ y)
            r_cand[self._in_basis[cand]] = 0.0
            best = int(np.argmin(r_cand))
            if r_cand[best] < -tol:
                return int(cand[best])
            # List ran dry: fall through to a full refresh pass.

        reduced = self.reduced_costs(y)
        best = int(np.argmin(reduced))
        if reduced[best] >= -tol:
            return None
        if n > PARTIAL_PRICING_MIN_COLS:
            self.used_partial_pricing = True
            size = max(128, n // 16)
            order = np.argsort(reduced)[:size]
            self._candidates = order[reduced[order] < -tol]
            subset = self.A[:, self._candidates]
            self._candidates_T = subset.T.tocsr() if self._sparse else subset.T
        return best

    # -- primal loop ---------------------------------------------------
    def run(self, max_iterations: int) -> str:
        """Iterate to optimality; returns 'optimal' or 'unbounded'.

        The optimality test is scale-aware (relative to ``max |c|``)
        and escalates when the objective stalls: on an ill-conditioned
        basis the computed reduced costs carry noise that can sit just
        below a fixed tolerance, producing endless zero-length pivots
        at the optimum.  After a long window with no objective
        improvement the tolerance is widened a decade at a time (up to
        :data:`ESCALATION_CAP` times its base value, and flagged via
        ``tolerance_escalated``) until the phantom candidates
        disappear — a bounded, Harris-style tolerance expansion.
        """
        m, _ = self.A.shape
        bland_after = max_iterations // 2
        base_tol = COST_TOL * (1.0 + float(np.max(np.abs(self.c))))
        tol = base_tol
        best_objective = np.inf
        last_improvement = 0
        stall_window = max(100, 2 * m)
        try:
            self.ensure_factor()
        except _SingularBasis:
            return "numerical_error"
        while True:
            if self.iterations >= max_iterations:
                return "iteration_limit"
            self.iterations += 1
            use_bland = self.iterations > bland_after

            try:
                x_b = self.factor.ftran(self.b)
                y = self.factor.btran(self.c[self.basis])
            except _SingularBasis:
                return "numerical_error"
            if not (np.all(np.isfinite(x_b)) and np.all(np.isfinite(y))):
                return "numerical_error"

            objective = float(self.c[self.basis] @ x_b)
            if objective < best_objective - 1e-12 * (1.0 + abs(best_objective)):
                best_objective = objective
                last_improvement = self.iterations
            elif (
                self.iterations - last_improvement >= stall_window
                and tol < base_tol * ESCALATION_CAP
            ):
                tol *= 10.0
                self.tolerance_escalated = True
                last_improvement = self.iterations

            entering = self._price(y, tol, use_bland)
            if entering is None:
                return "optimal"

            direction = self.factor.ftran(self.column(entering))
            positive = np.where(direction > PIVOT_TOL)[0]
            if positive.size == 0:
                return "unbounded"
            ratios = x_b[positive] / direction[positive]
            best = ratios.min()
            ties = positive[np.where(ratios <= best + PIVOT_TOL)[0]]
            if use_bland:
                # Lowest *variable* index among ties (Bland's rule).
                leaving_row = min(ties, key=lambda r: self.basis[r])
            else:
                # Largest pivot among ties for numerical stability.
                leaving_row = max(ties, key=lambda r: direction[r])
            try:
                self._pivot(leaving_row, entering, direction)
            except _SingularBasis:
                return "numerical_error"

    # -- dual loop -----------------------------------------------------
    def dual_run(self, max_iterations: int) -> str:
        """Dual-simplex pivots from a dual-feasible basis.

        Drives negative basic variables out while preserving dual
        feasibility; returns ``'feasible'`` once the basic solution is
        primal feasible (and hence optimal, since reduced costs stay
        non-negative) or ``'infeasible'`` when a leaving row admits no
        entering column — the standard dual-unboundedness certificate
        of primal infeasibility.
        """
        m, _ = self.A.shape
        bland_after = max_iterations // 2
        try:
            self.ensure_factor()
        except _SingularBasis:
            return "numerical_error"
        while True:
            if self.iterations >= max_iterations:
                return "iteration_limit"
            self.iterations += 1
            use_bland = self.iterations > bland_after

            try:
                x_b = self.factor.ftran(self.b)
                y = self.factor.btran(self.c[self.basis])
            except _SingularBasis:
                return "numerical_error"
            if not (np.all(np.isfinite(x_b)) and np.all(np.isfinite(y))):
                return "numerical_error"
            negative = np.where(x_b < -PIVOT_TOL)[0]
            if negative.size == 0:
                return "feasible"
            if use_bland:
                leaving_row = int(negative[0])
            else:
                leaving_row = int(negative[np.argmin(x_b[negative])])

            unit = np.zeros(m)
            unit[leaving_row] = 1.0
            try:
                rho = self.factor.btran(unit)
            except _SingularBasis:
                return "numerical_error"
            alpha = self._A_T @ rho
            reduced = self.reduced_costs(y)
            candidates = np.where((alpha < -PIVOT_TOL) & ~self._in_basis)[0]
            if candidates.size == 0:
                return "infeasible"
            ratios = reduced[candidates] / -alpha[candidates]
            best = ratios.min()
            ties = candidates[np.where(ratios <= best + COST_TOL)[0]]
            if use_bland:
                entering = int(ties[0])
            else:
                # Largest pivot magnitude among ties for stability.
                entering = int(ties[np.argmin(alpha[ties])])
            direction = self.factor.ftran(self.column(entering))
            try:
                self._pivot(leaving_row, entering, direction)
            except _SingularBasis:
                return "numerical_error"

    # -- accounting ----------------------------------------------------
    def stats(self) -> dict:
        """Solve counters for this state (factor counters included)."""
        out = {
            "iterations": self.iterations,
            "refactorizations": 0,
            "eta_updates": 0,
            "fill_ratio": 0.0,
            "basis_nnz": 0,
        }
        if self.factor is not None:
            out["refactorizations"] = self.factor.refactorizations
            out["eta_updates"] = self.factor.eta_updates
            out["fill_ratio"] = round(self.factor.fill_ratio, 3)
            out["basis_nnz"] = self.factor.basis_nnz
        return out


def _merge_stats(
    std: StandardFormLP, *states: _SimplexState, warm: bool = False
) -> dict:
    """Combine per-phase state counters into one LPResult stats dict."""
    merged = {
        "sparse": bool(std.is_sparse),
        "n_rows": int(std.A.shape[0]),
        "n_cols": int(std.A.shape[1]),
        "nnz": int(std.A.nnz) if std.is_sparse else int(np.count_nonzero(std.A)),
        "iterations": 0,
        "refactorizations": 0,
        "eta_updates": 0,
        "fill_ratio": 0.0,
        "basis_nnz": 0,
        "pricing": "full",
        "warm_start_used": bool(warm),
    }
    for state in states:
        if state is None:
            continue
        part = state.stats()
        merged["iterations"] += part["iterations"]
        merged["refactorizations"] += part["refactorizations"]
        merged["eta_updates"] += part["eta_updates"]
        merged["fill_ratio"] = max(merged["fill_ratio"], part["fill_ratio"])
        merged["basis_nnz"] = max(merged["basis_nnz"], part["basis_nnz"])
        if state.used_partial_pricing:
            merged["pricing"] = "partial"
    return merged


def _combine_stats(earlier: dict | None, final: dict | None) -> dict | None:
    """Fold an earlier attempt's counters into the final result's stats.

    Used on the recovery chain (failed cold attempt -> perturbed cold
    solve -> dual-simplex cleanup) so the reported iterations and
    refactorizations cover the *whole* solve, not just the last leg —
    otherwise the iteration-cost accounting (and the benchmark gate
    built on it) sees a 1-iteration solve where thousands of pivots
    ran.
    """
    if not earlier:
        return final
    if not final:
        return dict(earlier)
    merged = dict(final)
    for key in ("iterations", "refactorizations", "eta_updates"):
        merged[key] = int(earlier.get(key, 0)) + int(final.get(key, 0))
    for key in ("fill_ratio", "basis_nnz"):
        merged[key] = max(earlier.get(key, 0), final.get(key, 0))
    if earlier.get("pricing") == "partial" or final.get("pricing") == "partial":
        merged["pricing"] = "partial"
    return merged


def _prepare(A, b: np.ndarray):
    """Flip rows so the right-hand side is non-negative."""
    b = b.copy()
    negative = b < 0
    if sp.issparse(A):
        signs = np.where(negative, -1.0, 1.0)
        A = (sp.diags(signs) @ A).tocsr()
    else:
        A = A.copy()
        A[negative] *= -1.0
    b[negative] *= -1.0
    return A, b


def _finish_optimal(
    state: _SimplexState,
    std: StandardFormLP,
    rows,
    iterations: int,
    stats: dict,
) -> LPResult:
    """Package an optimal phase-2/warm state as an LPResult.

    The exact re-solve refactorizes a basis that until now was only
    exercised through the eta chain; if that fresh factorization finds
    it singular, a NUMERICAL_ERROR result is returned (callers route it
    into the perturbed-restart recovery or the cold fallback) rather
    than letting the private exception escape the backend.
    """
    n = std.c.size
    x = np.zeros(n)
    try:
        x_b = state.solve_basis(exact=True)
    except _SingularBasis:
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=iterations,
            message="final basis singular on exact refactorization",
            stats=stats,
        )
    x[state.basis] = np.clip(x_b, 0.0, None)
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=std.extract_original(x),
        objective=float(std.c @ x),
        iterations=iterations,
        backend="simplex",
        warm_start=SimplexBasis(basis=tuple(state.basis), rows=tuple(rows)),
        stats=stats,
    )


def _warm_solve(
    std: StandardFormLP, warm: SimplexBasis, max_iterations: int
) -> LPResult | None:
    """Attempt a warm-started solve from a previous optimal basis.

    Returns ``None`` when the basis cannot be reused (structure
    mismatch, singular basis, lost dual feasibility, pivot budget) —
    the caller then falls back to the cold two-phase path.  Row sign
    flips are unnecessary here: scaling a row of ``[A | b]`` by -1
    never changes the solution set, and only phase 1's artificial
    basis needs ``b >= 0``.
    """
    m, n = std.A.shape
    basis = [int(v) for v in warm.basis]
    rows = [int(r) for r in warm.rows]
    if len(basis) != len(rows) or not basis:
        return None
    if min(basis) < 0 or max(basis) >= n or min(rows) < 0 or max(rows) >= m:
        return None
    A2 = std.A[rows]
    b2 = std.b[rows]
    c = std.c.copy()
    state = _SimplexState(A2, b2, c, basis)
    try:
        x_b = state.solve_basis()
        y = state.factor.btran(c[basis])
    except _SingularBasis:
        return None
    if not (np.all(np.isfinite(x_b)) and np.all(np.isfinite(y))):
        return None
    reduced = state.reduced_costs(y)
    if reduced.min() < -WARM_DUAL_TOL * (1.0 + float(np.max(np.abs(c)))):
        # Not dual feasible (c or A changed?): warm start is invalid.
        return None
    if x_b.min() < -PIVOT_TOL:
        status = state.dual_run(max_iterations)
        if status == "infeasible":
            return LPResult(
                status=LPStatus.INFEASIBLE,
                backend="simplex",
                iterations=state.iterations,
                message="dual simplex: no entering column for a negative basic",
                stats=_merge_stats(std, state, warm=True),
            )
        if status != "feasible":
            return None
    status = state.run(max_iterations)
    if status == "optimal":
        finished = _finish_optimal(
            state, std, rows, state.iterations, _merge_stats(std, state, warm=True)
        )
        if finished.status is LPStatus.NUMERICAL_ERROR:
            return None  # unusable warm basis: fall back to a cold solve
        return finished
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED,
            backend="simplex",
            iterations=state.iterations,
            stats=_merge_stats(std, state, warm=True),
        )
    return None


def _perturbed_recovery(
    std: StandardFormLP, max_iterations: int
) -> LPResult | None:
    """Degeneracy recovery: re-solve with a tiny generic RHS shift.

    Cycling and singular-basis breakdowns on these LPs come from primal
    degeneracy (many basic variables at exactly zero).  A tiny generic
    perturbation of ``b`` makes the polytope simple, so the pivot path
    avoids the degenerate trap; the perturbed optimal basis is then
    re-verified against the *true* right-hand side through the
    warm-start machinery — dual feasibility carries over exactly (``A``
    and ``c`` are untouched), so the dual-simplex cleanup either
    certifies a true optimum or proves true infeasibility.  Returns
    ``None`` when no attempt produces a certified result.
    """
    m = std.b.size
    if m == 0:
        return None
    # Deterministic generic jitter: golden-ratio fractional parts.
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    jitter = np.modf(np.arange(1, m + 1) * phi)[0]
    budget = min(max_iterations, 5 * (m + std.c.size) + 1000)
    for scale in (1e-8, 1e-6):
        eps = scale * (1.0 + np.abs(std.b)) * (0.25 + 0.75 * jitter)
        perturbed = StandardFormLP(
            c=std.c, A=std.A, b=std.b + eps, n_original=std.n_original
        )
        trial = _cold_solve(perturbed, budget)
        if not trial.is_optimal or trial.warm_start is None:
            continue
        fixed = _warm_solve(std, trial.warm_start, budget)
        if fixed is not None and fixed.status in (
            LPStatus.OPTIMAL,
            LPStatus.INFEASIBLE,
        ):
            fixed.message = (
                f"recovered via perturbed restart (scale {scale:g}); "
                + fixed.message
            ).rstrip("; ")
            fixed.iterations += trial.iterations
            fixed.stats = _combine_stats(trial.stats, fixed.stats)
            if fixed.stats is not None:
                # The internal warm verify is an implementation detail;
                # the caller's solve was cold, and flagging it otherwise
                # misleads the profiler.
                fixed.stats["warm_start_used"] = False
                fixed.stats["recovered"] = True
            return fixed
    return None


def solve_standard_form(
    std: StandardFormLP,
    max_iterations: int | None = None,
    warm_start: SimplexBasis | None = None,
) -> LPResult:
    """Solve a standard-form LP with the two-phase revised simplex.

    Parameters
    ----------
    std:
        Problem in ``min c.x, A x = b, x >= 0`` form; ``A`` may be a
        dense array or a ``scipy.sparse`` matrix — the factored basis
        and pricing adapt to the representation.
    max_iterations:
        Per-phase iteration budget; defaults to ``50 * (m + n) + 1000``.
    warm_start:
        A :class:`SimplexBasis` from a previous optimal solve of the
        same constraint structure (only RHS changes allowed).  Invalid
        or unusable bases silently fall back to the cold path.

    Degenerate instances that stall (iteration limit) or break the
    basis factorization (numerical error) are retried once through
    :func:`_perturbed_recovery` before the failure is reported.
    """
    if max_iterations is None:
        m0, n0 = std.A.shape
        max_iterations = 50 * (m0 + n0) + 1000

    if warm_start is not None and std.A.shape[0]:
        warm_result = _warm_solve(std, warm_start, max_iterations)
        if warm_result is not None:
            return warm_result

    result = _cold_solve(std, max_iterations)
    if result.status in (LPStatus.NUMERICAL_ERROR, LPStatus.ITERATION_LIMIT):
        recovered = _perturbed_recovery(std, max_iterations)
        if recovered is not None:
            recovered.iterations += result.iterations
            recovered.stats = _combine_stats(result.stats, recovered.stats)
            return recovered
    return result


def _cold_solve(std: StandardFormLP, max_iterations: int) -> LPResult:
    """The two-phase path on a standard-form problem."""
    A, b = _prepare(std.A, std.b)
    sparse = sp.issparse(A)
    c = std.c.copy()
    m, n = A.shape

    if m == 0:
        # No constraints: optimum is x = 0 unless some cost is negative.
        if np.any(c < -COST_TOL):
            return LPResult(status=LPStatus.UNBOUNDED, backend="simplex")
        x = np.zeros(n)
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(x),
            objective=0.0,
            backend="simplex",
            stats=_merge_stats(std),
        )

    # ------------------------------------------------------------------
    # Phase 1: artificial variables form the starting identity basis.
    # ------------------------------------------------------------------
    if sparse:
        A1 = sp.hstack([A, sp.identity(m, format="csr")], format="csc")
    else:
        A1 = np.hstack([A, np.eye(m)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    basis = list(range(n, n + m))
    phase1 = _SimplexState(A1, b, c1, basis)
    status = phase1.run(max_iterations)
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 terminated with {status}",
            stats=_merge_stats(std, phase1),
        )
    try:
        x_b = phase1.solve_basis(exact=True)
    except _SingularBasis:
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=phase1.iterations,
            message="phase-1 basis singular on exact refactorization",
            stats=_merge_stats(std, phase1),
        )
    phase1_objective = float(c1[phase1.basis] @ x_b)
    if phase1_objective > FEASIBILITY_TOL:
        if phase1.tolerance_escalated:
            # Phase 1 only "finished" because the stalled tolerance was
            # widened; positive artificials are then not a trustworthy
            # infeasibility proof.  Report a numerical failure so the
            # perturbed-restart recovery runs and downstream consumers
            # (the sweep's feasibility bisection) do not treat this as
            # a clean certificate.
            return LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                backend="simplex",
                iterations=phase1.iterations,
                message=(
                    f"phase 1 stalled at objective {phase1_objective:.3e} "
                    f"under an escalated tolerance"
                ),
                stats=_merge_stats(std, phase1),
            )
        return LPResult(
            status=LPStatus.INFEASIBLE,
            backend="simplex",
            iterations=phase1.iterations,
            message=f"phase 1 objective {phase1_objective:.3e}",
            stats=_merge_stats(std, phase1),
        )

    # Drive any artificial variables still in the basis (at zero level)
    # out; rows where no original column can pivot are redundant and
    # dropped together with their artificial.  Each replacement is one
    # BTRAN (the tableau row) plus one FTRAN (the pivot's eta update) —
    # no dense refactorization.
    keep_rows = list(range(m))
    try:
        for row in range(m):
            var = phase1.basis[row]
            if var < n:
                continue
            unit = np.zeros(m)
            unit[row] = 1.0
            rho = phase1.factor.btran(unit)
            tableau_row = A1.T @ rho
            pivots = [
                j
                for j in range(n)
                if abs(tableau_row[j]) > PIVOT_TOL and not phase1._in_basis[j]
            ]
            if pivots:
                entering = pivots[0]
                direction = phase1.factor.ftran(phase1.column(entering))
                phase1._pivot(row, entering, direction)
            else:
                keep_rows.remove(row)
    except _SingularBasis:
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=phase1.iterations,
            message="singular basis while eliminating artificial variables",
            stats=_merge_stats(std, phase1),
        )

    A2 = A[keep_rows]
    b2 = b[np.asarray(keep_rows, dtype=int)]
    basis2 = [phase1.basis[r] for r in keep_rows]
    if any(v >= n for v in basis2):  # pragma: no cover - defensive
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            backend="simplex",
            iterations=phase1.iterations,
            message="could not eliminate artificial variables",
            stats=_merge_stats(std, phase1),
        )

    # ------------------------------------------------------------------
    # Phase 2: optimize the true objective from the feasible basis.
    # ------------------------------------------------------------------
    phase2 = _SimplexState(A2, b2, c, basis2)
    status = phase2.run(max_iterations)
    total_iters = phase1.iterations + phase2.iterations
    if status == "unbounded":
        return LPResult(
            status=LPStatus.UNBOUNDED,
            backend="simplex",
            iterations=total_iters,
            stats=_merge_stats(std, phase1, phase2),
        )
    if status in ("numerical_error", "iteration_limit"):
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR
            if status == "numerical_error"
            else LPStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=total_iters,
            message=f"phase 2 terminated with {status}",
            stats=_merge_stats(std, phase1, phase2),
        )

    return _finish_optimal(
        phase2, std, keep_rows, total_iters, _merge_stats(std, phase1, phase2)
    )


def solve(
    problem: LinearProgram,
    max_iterations: int | None = None,
    warm_start: SimplexBasis | None = None,
) -> LPResult:
    """Solve a :class:`LinearProgram` with the two-phase simplex.

    Sparse problems (:attr:`LinearProgram.is_sparse`) run on the sparse
    factored path end to end; dense problems use the dense LU fallback.
    ``warm_start`` accepts the :class:`SimplexBasis` reported by a
    previous optimal solve of the same problem structure; see
    :func:`solve_standard_form`.
    """
    return solve_standard_form(
        problem.to_standard_form(), max_iterations, warm_start=warm_start
    )
