"""Mehrotra predictor-corrector primal-dual interior-point LP solver.

This is the library's stand-in for PCx, the interior-point solver the
paper's tool was built around.  It implements the classic Mehrotra
predictor–corrector method (see S. J. Wright, *Primal-Dual Interior-
Point Methods*, SIAM 1997, Ch. 10) on dense standard-form problems:

    min c.x   s.t.   A x = b,  x >= 0

with duals ``(y, s)``.  Per iteration one normal-equations matrix
``M = A diag(x/s) A^T`` is factorized (Cholesky, with diagonal
regularization fallback) and reused for the predictor and corrector
solves.  Linearly dependent rows of ``A`` are removed up front by a
pivoted-QR rank test so ``M`` stays positive definite.

Before iterating, the constraint system is equilibrated (one pass of
row then column max-norm scaling, as PCx's presolve does): the policy
LPs mix O(1) balance-equation rows with budget rows scaled by the
horizon ``1/(1-gamma)`` (1e5 and beyond), and without scaling the
Newton steps on such systems overflow.

The policy-optimization LPs are a few hundred variables at most, so a
dense implementation converges in 10–30 iterations in well under a
millisecond-to-second budget.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus

#: Relative tolerance on primal/dual residuals and the duality gap.
DEFAULT_TOL = 1e-8
#: Accept the best iterate seen when progress stalls, provided its
#: worst relative error is below this (badly conditioned instances
#: cannot reach DEFAULT_TOL in double precision; the LP optimum is
#: still accurate to ~6 digits, which the cross-check tolerance allows).
FALLBACK_TOL = 1e-6
#: Stop when the merit has not improved for this many iterations.
STALL_LIMIT = 10
#: Iteration ceiling; Mehrotra needs ~10-40 iterations on these LPs.
DEFAULT_MAX_ITERATIONS = 200
#: Fraction-to-boundary step damping.
STEP_DAMPING = 0.9995
#: Divergence guard: iterates beyond this norm indicate an unbounded or
#: infeasible problem that the method cannot certify.
BLOWUP_LIMIT = 1e14


def _independent_rows(A: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool]:
    """Select a maximal independent row subset of ``(A, b)``.

    Returns ``(A_kept, b_kept, consistent)`` where ``consistent`` is
    False when a dropped (dependent) row has a right-hand side that is
    inconsistent with the kept rows — a certificate of infeasibility.
    """
    m = A.shape[0]
    if m == 0:
        return A, b, True
    # Rank-revealing QR of A^T: pivot columns of A^T = independent rows of A.
    q, r, pivots = scipy.linalg.qr(A.T, mode="economic", pivoting=True)
    diag = np.abs(np.diag(r)) if r.size else np.zeros(0)
    if diag.size == 0 or diag[0] == 0.0:
        rank = 0
    else:
        rank = int(np.sum(diag > diag[0] * max(A.shape) * np.finfo(float).eps))
    keep = np.sort(pivots[:rank])
    A_kept = A[keep]
    b_kept = b[keep]
    if rank == m:
        return A_kept, b_kept, True
    # Consistency: dropped rows must be linear combinations with matching rhs.
    dropped = np.sort(pivots[rank:])
    if A_kept.shape[0] == 0:
        consistent = bool(np.all(np.abs(b[dropped]) <= 1e-9))
        return A_kept, b_kept, consistent
    coeffs, *_ = np.linalg.lstsq(A_kept.T, A[dropped].T, rcond=None)
    reconstructed_rhs = coeffs.T @ b_kept
    scale = 1.0 + np.abs(b[dropped])
    consistent = bool(np.all(np.abs(reconstructed_rhs - b[dropped]) <= 1e-7 * scale))
    return A_kept, b_kept, consistent


def _equilibrate(A: np.ndarray, b: np.ndarray, c: np.ndarray):
    """One pass of row/column max-norm scaling.

    Returns ``(A', b', c', row_scale, col_scale)`` with
    ``A' = diag(1/row) A diag(1/col)``; a solution ``x'`` of the scaled
    problem maps back as ``x = x' / col`` and duals as ``y = y' / row``.
    """
    row = np.max(np.abs(A), axis=1)
    row[row == 0.0] = 1.0
    A1 = A / row[:, None]
    col = np.max(np.abs(A1), axis=0)
    col[col == 0.0] = 1.0
    A2 = A1 / col[None, :]
    return A2, b / row, c / col, row, col


def _starting_point(A: np.ndarray, b: np.ndarray, c: np.ndarray):
    """Mehrotra's heuristic starting point (Wright, Ch. 10, eq. 10.9)."""
    m, n = A.shape
    AAT = A @ A.T + 1e-12 * np.eye(m)
    x_tilde = A.T @ np.linalg.solve(AAT, b)
    y_tilde = np.linalg.solve(AAT, A @ c)
    s_tilde = c - A.T @ y_tilde

    dx = max(-1.5 * x_tilde.min(initial=0.0), 0.0)
    ds = max(-1.5 * s_tilde.min(initial=0.0), 0.0)
    x_hat = x_tilde + dx
    s_hat = s_tilde + ds
    # Guard against the all-zero corner (b = 0 or c in row space of A).
    if x_hat.max(initial=0.0) <= 0.0:
        x_hat = np.ones(n)
    if s_hat.max(initial=0.0) <= 0.0:
        s_hat = np.ones(n)
    gap = float(x_hat @ s_hat)
    dx_hat = 0.5 * gap / max(s_hat.sum(), 1e-12)
    ds_hat = 0.5 * gap / max(x_hat.sum(), 1e-12)
    return x_hat + dx_hat, y_tilde, s_hat + ds_hat


def _max_step(v: np.ndarray, dv: np.ndarray) -> float:
    """Largest alpha in [0, 1] with ``v + alpha dv >= 0``."""
    negative = dv < 0
    if not np.any(negative):
        return 1.0
    return float(min(1.0, np.min(-v[negative] / dv[negative])))


def _solve_normal_equations(M: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``M z = rhs`` with Cholesky, regularizing on breakdown."""
    jitter = 0.0
    identity = np.eye(M.shape[0])
    for _ in range(6):
        try:
            cho = scipy.linalg.cho_factor(M + jitter * identity, lower=True)
            return scipy.linalg.cho_solve(cho, rhs)
        except np.linalg.LinAlgError:
            jitter = 1e-12 if jitter == 0.0 else jitter * 100.0
    # Last resort: least squares (keeps the iteration alive).
    return np.linalg.lstsq(M, rhs, rcond=None)[0]


def solve_standard_form(
    std: StandardFormLP,
    tol: float = DEFAULT_TOL,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> LPResult:
    """Solve a standard-form LP with Mehrotra predictor-corrector.

    Parameters
    ----------
    std:
        Problem in ``min c.x, A x = b, x >= 0`` form.
    tol:
        Relative convergence tolerance on residuals and duality gap.
    max_iterations:
        Iteration ceiling before giving up with
        :attr:`LPStatus.ITERATION_LIMIT`.
    """
    A_full, b_full, c = std.A.copy(), std.b.copy(), std.c.copy()
    n = c.size

    if A_full.shape[0] == 0:
        if np.any(c < -tol):
            return LPResult(status=LPStatus.UNBOUNDED, backend="interior-point")
        x = np.zeros(n)
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(x),
            objective=0.0,
            backend="interior-point",
        )

    A, b, consistent = _independent_rows(A_full, b_full)
    if not consistent:
        return LPResult(
            status=LPStatus.INFEASIBLE,
            backend="interior-point",
            message="dependent rows with inconsistent right-hand sides",
        )
    m = A.shape[0]
    if m == 0:
        # All rows were 0 = 0; fall back to the unconstrained case.
        if np.any(c < -tol):
            return LPResult(status=LPStatus.UNBOUNDED, backend="interior-point")
        x = np.zeros(n)
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(x),
            objective=0.0,
            backend="interior-point",
        )

    original_c = c
    A, b, c, _row_scale, col_scale = _equilibrate(A, b, c)

    x, y, s = _starting_point(A, b, c)
    norm_b = 1.0 + np.linalg.norm(b)
    norm_c = 1.0 + np.linalg.norm(c)

    def optimal_result(candidate: np.ndarray, iteration: int) -> LPResult:
        unscaled = np.clip(candidate, 0.0, None) / col_scale
        return LPResult(
            status=LPStatus.OPTIMAL,
            x=std.extract_original(unscaled),
            objective=float(original_c @ unscaled),
            iterations=iteration,
            backend="interior-point",
        )

    best_merit = np.inf
    best_x = x.copy()
    stalled = 0
    for iteration in range(1, max_iterations + 1):
        r_b = A @ x - b
        r_c = A.T @ y + s - c
        mu = float(x @ s) / n
        primal_obj = float(c @ x)
        dual_obj = float(b @ y)
        gap = abs(primal_obj - dual_obj) / (1.0 + abs(primal_obj))
        merit = max(
            np.linalg.norm(r_b) / norm_b, np.linalg.norm(r_c) / norm_c, gap
        )

        if merit <= tol:
            return optimal_result(x, iteration)
        if merit < best_merit * (1.0 - 1e-3):
            best_merit = merit
            best_x = x.copy()
            stalled = 0
        else:
            stalled += 1
        # Badly conditioned instances hit a double-precision floor above
        # ``tol``; once progress stalls, the best iterate is the answer
        # (or a genuine failure if it never got close).
        if stalled >= STALL_LIMIT:
            if best_merit <= FALLBACK_TOL:
                return optimal_result(best_x, iteration)
            return LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                backend="interior-point",
                iterations=iteration,
                message=f"stalled with merit {best_merit:.3e}",
            )
        if np.linalg.norm(x) > BLOWUP_LIMIT or np.linalg.norm(y) > BLOWUP_LIMIT:
            if best_merit <= FALLBACK_TOL:
                return optimal_result(best_x, iteration)
            return LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                backend="interior-point",
                iterations=iteration,
                message="iterates diverged (problem likely infeasible or unbounded)",
            )

        d = x / s
        M = (A * d) @ A.T

        # --- predictor (affine scaling) direction ---------------------
        rhs_xs = -x * s
        rhs_y = -r_b - A @ (rhs_xs / s) - (A * d) @ r_c
        dy_aff = _solve_normal_equations(M, rhs_y)
        ds_aff = -r_c - A.T @ dy_aff
        dx_aff = (rhs_xs - x * ds_aff) / s

        alpha_p_aff = _max_step(x, dx_aff)
        alpha_d_aff = _max_step(s, ds_aff)
        mu_aff = float((x + alpha_p_aff * dx_aff) @ (s + alpha_d_aff * ds_aff)) / n
        sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0
        sigma = float(min(max(sigma, 0.0), 1.0))

        # --- corrector direction (reuses the factorization pattern) ---
        rhs_xs = -x * s + sigma * mu - dx_aff * ds_aff
        rhs_y = -r_b - A @ (rhs_xs / s) - (A * d) @ r_c
        dy = _solve_normal_equations(M, rhs_y)
        ds = -r_c - A.T @ dy
        dx = (rhs_xs - x * ds) / s

        alpha_p = STEP_DAMPING * _max_step(x, dx)
        alpha_d = STEP_DAMPING * _max_step(s, ds)
        x = x + alpha_p * dx
        y = y + alpha_d * dy
        s = s + alpha_d * ds
        # Keep strictly interior despite floating-point cancellation.
        x = np.maximum(x, 1e-300)
        s = np.maximum(s, 1e-300)

    return LPResult(
        status=LPStatus.ITERATION_LIMIT,
        backend="interior-point",
        iterations=max_iterations,
        message="no convergence within the iteration budget",
    )


def solve(
    problem: LinearProgram,
    tol: float = DEFAULT_TOL,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    warm_start: object | None = None,
) -> LPResult:
    """Solve a :class:`LinearProgram` with the interior-point method.

    ``warm_start`` is accepted for interface uniformity and ignored —
    warm-starting interior-point methods from a vertex is notoriously
    counterproductive (the iterate starts on the boundary of the
    central path's neighbourhood).
    """
    # The Mehrotra implementation is dense (Cholesky on the normal
    # equations); sparse problems are densified at the boundary.
    return solve_standard_form(
        problem.to_standard_form(sparse=False), tol, max_iterations
    )
