"""Linear programming substrate.

The paper's policy-optimization tool is built around PCx, an interior
point LP solver.  This package provides the equivalent layer:

* :class:`~repro.lp.problem.LinearProgram` — a dense LP container
  ``min c.x  s.t.  A_eq x = b_eq, A_ub x <= b_ub, x >= 0`` with
  conversion to standard equality form;
* :mod:`~repro.lp.interior_point` — a from-scratch Mehrotra
  predictor–corrector primal–dual interior-point solver (the PCx
  stand-in);
* :mod:`~repro.lp.simplex` — a from-scratch two-phase revised simplex
  with Bland's anti-cycling rule;
* :mod:`~repro.lp.scipy_backend` — scipy's HiGHS, the default
  production backend;
* :func:`~repro.lp.solve.solve_lp` — the single entry point used by the
  optimizer, with backend selection and optional cross-checking.

All three backends are interchangeable on the policy-optimization LPs
(a few hundred unknowns at most) and are cross-validated in the test
suite.
"""

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexBasis
from repro.lp.solve import available_backends, solve_lp, supports_warm_start

__all__ = [
    "LinearProgram",
    "StandardFormLP",
    "LPResult",
    "LPStatus",
    "SimplexBasis",
    "solve_lp",
    "available_backends",
    "supports_warm_start",
]
