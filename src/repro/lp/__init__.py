"""Linear programming substrate.

The paper's policy-optimization tool is built around PCx, an interior
point LP solver.  This package provides the equivalent layer:

* :class:`~repro.lp.problem.LinearProgram` — an LP container
  ``min c.x  s.t.  A_eq x = b_eq, A_ub x <= b_ub, x >= 0`` holding the
  constraint blocks sparse (CSR) or dense, with conversion to standard
  equality form in either representation;
* :mod:`~repro.lp.interior_point` — a from-scratch Mehrotra
  predictor–corrector primal–dual interior-point solver (the PCx
  stand-in; dense — sparse problems densify at its boundary);
* :mod:`~repro.lp.simplex` — a from-scratch two-phase revised simplex
  over a factored basis (LU + eta updates, sparse or dense) with
  Bland's anti-cycling rule and dual-simplex warm restarts;
* :mod:`~repro.lp.scipy_backend` — scipy's HiGHS, the default
  production backend (CSR passed straight through on sparse problems);
* :func:`~repro.lp.solve.solve_lp` — the single entry point used by the
  optimizer, with backend selection and optional cross-checking.

All three backends are interchangeable on the policy-optimization LPs
and are cross-validated in the test suite; the sparse simplex and
HiGHS paths scale to deep-queue systems with thousands of states.
"""

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexBasis
from repro.lp.solve import available_backends, solve_lp, supports_warm_start

__all__ = [
    "LinearProgram",
    "StandardFormLP",
    "LPResult",
    "LPStatus",
    "SimplexBasis",
    "solve_lp",
    "available_backends",
    "supports_warm_start",
]
