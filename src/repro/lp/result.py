"""Solver-independent result type for linear programs."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class LPStatus(enum.Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def is_optimal(self) -> bool:
        """True when the solver proved optimality."""
        return self is LPStatus.OPTIMAL


@dataclass
class LPResult:
    """Outcome of solving a :class:`~repro.lp.problem.LinearProgram`.

    Attributes
    ----------
    status:
        Termination status.
    x:
        Primal solution in the *original* variable space (``None`` unless
        optimal).
    objective:
        Objective value ``c.x`` (``None`` unless optimal).
    iterations:
        Iterations taken by the backend (0 if unknown).
    backend:
        Name of the backend that produced this result.
    dual_eq:
        Dual multipliers of the equality constraints, when available.
    dual_ub:
        Dual multipliers of the inequality constraints, when available.
    message:
        Free-form diagnostic from the backend.
    warm_start:
        Opaque backend-specific restart state (e.g. the optimal simplex
        basis).  Passing it back to :func:`repro.lp.solve_lp` as
        ``warm_start=`` lets a supporting backend re-solve a
        right-hand-side-perturbed instance of the same problem without
        starting from scratch; backends without warm-start support
        accept and ignore it.  ``None`` when the backend has nothing to
        offer.
    stats:
        Solve-statistics dict (JSON-able) from backends that keep
        accounting.  The revised simplex reports ``iterations``,
        ``refactorizations``, ``eta_updates``, ``fill_ratio``,
        ``basis_nnz``, ``pricing`` (``"full"``/``"partial"``),
        ``sparse``, problem dimensions/``nnz``, ``warm_start_used``
        and — on solves that went through the perturbed degeneracy
        restart — ``recovered`` with counters accumulated over the
        whole chain; scipy reports dimensions and its iteration count.  ``None`` when the backend offers nothing — consumers
        (the CLI's ``--profile``, the sweep engine's accounting) must
        treat it as optional.
    """

    status: LPStatus
    x: np.ndarray | None = None
    objective: float | None = None
    iterations: int = 0
    backend: str = ""
    dual_eq: np.ndarray | None = field(default=None, repr=False)
    dual_ub: np.ndarray | None = field(default=None, repr=False)
    message: str = ""
    warm_start: object | None = field(default=None, repr=False)
    stats: dict | None = field(default=None, repr=False)

    @property
    def is_optimal(self) -> bool:
        """True when the solve terminated at a proven optimum."""
        return self.status.is_optimal

    def require_optimal(self) -> "LPResult":
        """Return self, raising :class:`InfeasibleError` otherwise."""
        if not self.is_optimal:
            raise InfeasibleError(
                f"LP solve failed: status={self.status.value!r} "
                f"backend={self.backend!r} message={self.message!r}"
            )
        return self


class InfeasibleError(RuntimeError):
    """Raised when an LP required to be solvable is not."""
