"""The policy-optimization tool (paper Section V, Fig. 7).

The paper wraps its machinery in a tool that takes a *system
description* and a *request trace*, extracts the SR model, composes the
Markov chains, solves the LP, extracts the policy and verifies it by
simulation.  This package is that tool:

* :mod:`~repro.tool.spec` — a declarative, JSON-serializable system
  description format with syntactic checking (the paper's "syntax
  checker" box);
* :mod:`~repro.tool.pipeline` — the end-to-end flow: trace -> SR
  extractor -> Markov composer -> LP solver -> policy extractor ->
  simulation verification (both Markov-driven and trace-driven);
* :mod:`~repro.tool.cli` — the ``repro-dpm`` command-line interface.
"""

from repro.tool.pipeline import PipelineReport, optimize_spec, run_pipeline
from repro.tool.spec import SystemSpec, load_spec, parse_spec

__all__ = [
    "SystemSpec",
    "parse_spec",
    "load_spec",
    "run_pipeline",
    "optimize_spec",
    "PipelineReport",
]
