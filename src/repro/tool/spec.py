"""Declarative system descriptions (paper Fig. 7, "system description").

The paper's tool consumes "an informal specification of the information
needed to formulate the SP model, various system parameters (time
horizon, queue length), cost functions ... constraints and optimization
target", hand-translated into stochastic matrices.  Here the format is
a JSON-serializable dictionary, checked for syntactic and stochastic
correctness before composition:

.. code-block:: python

    spec = {
        "name": "my-device",
        "time_resolution": 1e-3,
        "gamma": 0.99999,
        "queue_capacity": 2,
        "provider": {
            "states": ["on", "off"],
            "commands": ["s_on", "s_off"],
            "transitions": {
                "s_on": [[1.0, 0.0], [0.1, 0.9]],
                "s_off": [[0.2, 0.8], [0.0, 1.0]],
            },
            "service_rates": [[0.8, 0.0], [0.0, 0.0]],
            "power": [[3.0, 4.0], [4.0, 0.0]],
        },
        "requester": {            # optional if a trace is supplied
            "states": ["idle", "busy"],
            "transitions": [[0.95, 0.05], [0.15, 0.85]],
            "arrivals": [0, 1],
        },
        "initial_state": ["on", "idle", 0],
        "objective": "power",     # metric to minimize
        "constraints": {"penalty": 0.5, "loss": 0.2},
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.markov.chain import MarkovChain
from repro.util.validation import ValidationError


@dataclass
class SystemSpec:
    """A validated system description, ready for composition.

    Attributes
    ----------
    name:
        Identifier used in reports.
    provider:
        The service-provider model.
    requester:
        The workload model, or ``None`` when it is to be extracted from
        a trace by the pipeline.
    queue_capacity:
        Bounded queue capacity.
    gamma:
        Discount factor (time horizon ``1/(1-gamma)`` slices).
    time_resolution:
        Seconds per slice.
    initial_state:
        ``(provider, requester, queue)`` start for optimization, or
        ``None`` for uniform.
    objective:
        Metric name to minimize.
    constraints:
        Per-slice upper bounds: ``{metric: bound}``.
    lower_constraints:
        Per-slice lower bounds (e.g. minimum throughput).
    """

    name: str
    provider: ServiceProvider
    requester: ServiceRequester | None
    queue_capacity: int
    gamma: float
    time_resolution: float = 1.0
    initial_state: tuple | None = None
    objective: str = "power"
    constraints: dict[str, float] = field(default_factory=dict)
    lower_constraints: dict[str, float] = field(default_factory=dict)

    def compose(
        self, requester: ServiceRequester | None = None
    ) -> tuple[PowerManagedSystem, CostModel, np.ndarray]:
        """Compose the joint system, standard costs and p0.

        When the spec's objective or constraints reference the
        ``"waiting"`` metric, the Little's-law waiting-time metric is
        registered automatically (paper Section VI-A's latency
        constraint).

        Parameters
        ----------
        requester:
            Overrides the spec's requester (the pipeline passes the
            trace-extracted model here).
        """
        requester = requester or self.requester
        if requester is None:
            raise ValidationError(
                f"spec {self.name!r} has no requester; supply one or run "
                f"the pipeline with a trace"
            )
        system = PowerManagedSystem(
            self.provider, requester, ServiceQueue(self.queue_capacity)
        )
        costs = self.costs_for(system)
        if self.initial_state is None:
            p0 = system.uniform_distribution()
        else:
            provider_state, requester_state, queue = self.initial_state
            p0 = system.point_distribution(provider_state, requester_state, int(queue))
        return system, costs, p0

    def costs_for(self, system: PowerManagedSystem) -> CostModel:
        """Standard costs plus any extra metrics the spec references."""
        costs = CostModel.standard(system)
        referenced = (
            {self.objective}
            | set(self.constraints)
            | set(self.lower_constraints)
        )
        if "waiting" in referenced:
            from repro.core.costs import waiting_time_penalty

            costs.add_metric("waiting", waiting_time_penalty(system))
        return costs


def _require(mapping: dict, key: str, context: str):
    if key not in mapping:
        raise ValidationError(f"{context}: missing required field {key!r}")
    return mapping[key]


def parse_spec(raw: dict) -> SystemSpec:
    """Validate a raw dictionary into a :class:`SystemSpec`.

    Raises :class:`~repro.util.validation.ValidationError` with a field
    path on any structural or stochastic error — this is the "syntax
    checker" stage of the paper's tool.
    """
    if not isinstance(raw, dict):
        raise ValidationError(f"spec must be a mapping, got {type(raw).__name__}")
    name = str(raw.get("name", "unnamed-system"))

    provider_raw = _require(raw, "provider", f"spec {name!r}")
    for key in ("states", "commands", "transitions", "service_rates", "power"):
        _require(provider_raw, key, f"spec {name!r} provider")
    provider = ServiceProvider.from_tables(
        states=[str(s) for s in provider_raw["states"]],
        commands=[str(c) for c in provider_raw["commands"]],
        transitions=provider_raw["transitions"],
        service_rates=provider_raw["service_rates"],
        power=provider_raw["power"],
    )

    requester = None
    if raw.get("requester") is not None:
        requester_raw = raw["requester"]
        for key in ("transitions", "arrivals"):
            _require(requester_raw, key, f"spec {name!r} requester")
        states = requester_raw.get("states")
        chain = MarkovChain(
            requester_raw["transitions"],
            [str(s) for s in states] if states is not None else None,
        )
        requester = ServiceRequester(chain, requester_raw["arrivals"])

    gamma = float(raw.get("gamma", 0.99999))
    if not 0.0 < gamma < 1.0:
        raise ValidationError(f"spec {name!r}: gamma must be in (0, 1), got {gamma!r}")
    queue_capacity = int(raw.get("queue_capacity", 0))
    if queue_capacity < 0:
        raise ValidationError(
            f"spec {name!r}: queue_capacity must be >= 0, got {queue_capacity}"
        )
    time_resolution = float(raw.get("time_resolution", 1.0))
    if time_resolution <= 0:
        raise ValidationError(
            f"spec {name!r}: time_resolution must be > 0, got {time_resolution!r}"
        )

    initial_state = raw.get("initial_state")
    if initial_state is not None:
        if len(initial_state) != 3:
            raise ValidationError(
                f"spec {name!r}: initial_state must be "
                f"[provider, requester, queue], got {initial_state!r}"
            )
        initial_state = (
            str(initial_state[0]),
            str(initial_state[1]),
            int(initial_state[2]),
        )

    constraints = {
        str(metric): float(bound)
        for metric, bound in dict(raw.get("constraints", {})).items()
    }
    lower_constraints = {
        str(metric): float(bound)
        for metric, bound in dict(raw.get("lower_constraints", {})).items()
    }
    objective = str(raw.get("objective", "power"))

    return SystemSpec(
        name=name,
        provider=provider,
        requester=requester,
        queue_capacity=queue_capacity,
        gamma=gamma,
        time_resolution=time_resolution,
        initial_state=initial_state,
        objective=objective,
        constraints=constraints,
        lower_constraints=lower_constraints,
    )


def load_spec(path) -> SystemSpec:
    """Parse a spec from a JSON file."""
    try:
        raw = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"spec file {path}: invalid JSON ({exc})") from exc
    return parse_spec(raw)
