"""``repro-dpm`` — command-line interface to the policy-optimization tool.

Subcommands:

* ``optimize SPEC.json [--trace TRACE.txt]`` — run the Fig. 7 pipeline
  on a system spec (extracting the workload model from the trace when
  one is given) and print the optimal policy and verification summary;
  ``--backend {auto,loop,vector,jit}`` picks the simulation backend
  (``jit`` needs the optional numba extra; ``repro-dpm backends``
  shows what is importable), ``--chunk-slices`` pins the batch tier's
  chunk length, and ``--lp-backend`` the LP solver;
* ``pareto SPEC.json --constraint penalty --bounds 0.1,0.2,0.5`` —
  sweep a constraint through the incremental sweep engine (bound
  dedupe, feasibility bracketing, warm-started re-solves) and print the
  trade-off curve; ``--refine N`` densifies the curve where it bends,
  ``--jobs N`` fans cold solves out across processes, ``--lp-backend``
  picks the LP solver (warm starts need ``simplex``) and
  ``--simulate N`` verifies every feasible point with one batched
  simulation run;
* ``experiment ID [--full]`` — regenerate a paper table/figure
  (``repro-dpm experiment list`` shows the registry); ``--backend`` /
  ``--lp-backend`` are forwarded through the registry to drivers that
  accept them;
* ``fleet SPEC.json --ticks 20`` — run an online fleet campaign
  (:mod:`repro.runtime`): a JSON spec describes device groups x
  workloads x agents; ``--telemetry`` streams JSON-lines snapshots,
  ``--checkpoint`` saves resumable state each run and ``--resume``
  continues a saved campaign; ``--backend`` picks grouped batch
  stepping (``auto``/``vector``/``jit``) vs the per-device loop and
  ``--timing`` stamps telemetry with per-tick wall-clock;
* ``serve SPEC.json --socket /tmp/fleet.sock --shards 4`` — run the
  sharded fleet daemon (:mod:`repro.service`): the fleet is dealt
  across worker processes by device-group content signature and
  stepped in lockstep, with device-level telemetry and checkpoints
  byte-identical to the single-process ``fleet`` path; ``--resume``
  continues a checkpointed campaign under any shard count,
  ``--checkpoint-every`` sets the per-shard restart-spool cadence and
  ``--flush-every``/``--fsync`` tune telemetry durability;
* ``fleet-ctl --socket /tmp/fleet.sock ACTION`` — control a running
  daemon: ``info``/``ping``, ``step N [--follow]`` (streamed
  telemetry on stdout), ``register GROUP.json``, ``remove ID``,
  ``update-policy ID AGENT.json``, ``snapshot [--per-device]``,
  ``checkpoint PATH`` and ``shutdown`` — all against the live fleet,
  no restart;
* ``fit TRACE.txt --resolution 0.001 --out FITTED.json`` — the full
  estimation pipeline (:mod:`repro.estimation`): BIC-selected arrival
  chain + MMPP(2)/Poisson generator fits + validation report; with
  ``--provider-spec`` or ``--provider-log`` it emits a complete,
  ready-to-optimize system spec (feed it back to ``optimize`` /
  ``pareto``) and ``--fleet-out`` writes a fleet campaign spec driven
  by the fitted generator;
* ``extract TRACE.txt --resolution 0.001 --memory 2`` — run just the
  SR extractor and print the fitted model;
* ``lint [PATHS...]`` — run the :mod:`repro.lint` determinism &
  backend-parity static analyzer (RNG threading, ``@njit`` kernel
  purity, hash stability, float determinism, telemetry/checkpoint
  schema drift); ``--json`` emits the machine-readable report,
  ``--select`` runs a rule subset and ``--list-rules`` documents the
  battery.  Exit code 0 means clean, 1 means findings, 2 means the
  run itself failed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.pareto import simulate_curve
from repro.experiments import available_experiments, run_experiment
from repro.lint.cli import add_lint_arguments, run_lint
from repro.runtime.controller import CONTROLLER_BACKENDS, UNIFORM_SOURCES
from repro.sim.backends import BACKEND_CHOICES, available_backends
from repro.sim.rng import make_rng
from repro.tool.pipeline import run_pipeline, sweep_tradeoff
from repro.tool.spec import load_spec
from repro.traces.extractor import SRExtractor
from repro.traces.trace import Trace
from repro.util.tables import format_table
from repro.util.validation import ValidationError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dpm",
        description=(
            "Policy optimization for dynamic power management "
            "(Benini et al., DAC 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_opt = sub.add_parser("optimize", help="run the full pipeline on a spec")
    p_opt.add_argument("spec", help="path to a JSON system spec")
    p_opt.add_argument("--trace", help="path to a request trace file")
    p_opt.add_argument("--memory", type=int, default=1, help="SR extractor memory")
    p_opt.add_argument("--seed", type=int, default=0, help="verification RNG seed")
    p_opt.add_argument(
        "--no-verify", action="store_true", help="skip simulation verification"
    )
    p_opt.add_argument(
        "--lp-backend",
        default="scipy",
        help="LP backend (scipy/interior-point/simplex)",
    )
    p_opt.add_argument(
        "--backend",
        default="auto",
        choices=BACKEND_CHOICES,
        help="simulation backend for verification (default: auto)",
    )
    p_opt.add_argument(
        "--chunk-slices",
        type=int,
        default=None,
        metavar="N",
        help="pin the batch tier's chunk length (slices per uniform "
        "draw); float totals are bitwise-reproducible only for a fixed "
        "pin (default: lane-count-scaled heuristic)",
    )
    p_opt.add_argument(
        "--average",
        action="store_true",
        help="use the long-run average formulation (paper Eq. 7) instead "
        "of the discounted one",
    )
    p_opt.add_argument(
        "--print-policy", action="store_true", help="print the full policy matrix"
    )
    p_opt.add_argument(
        "--profile",
        action="store_true",
        help="print LP solve statistics (iterations, refactorizations, "
        "fill-in) from the backend",
    )

    p_pareto = sub.add_parser("pareto", help="sweep a constraint bound")
    p_pareto.add_argument("spec", help="path to a JSON system spec")
    p_pareto.add_argument(
        "--constraint", default="penalty", help="metric to sweep (default: penalty)"
    )
    p_pareto.add_argument(
        "--bounds",
        required=True,
        help="comma-separated bounds, e.g. 0.1,0.2,0.5",
    )
    p_pareto.add_argument(
        "--objective", default="power", help="metric to minimize (default: power)"
    )
    p_pareto.add_argument(
        "--refine",
        type=int,
        default=0,
        metavar="N",
        help="adaptively bisect the N largest objective gaps to densify "
        "the curve where it bends (default: 0)",
    )
    p_pareto.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="solve cold sweep points across N processes (default: 1, "
        "the incremental warm-started sweep)",
    )
    p_pareto.add_argument(
        "--lp-backend",
        default="scipy",
        help="LP backend (scipy/interior-point/simplex; warm starts "
        "require simplex)",
    )
    p_pareto.add_argument(
        "--simulate",
        type=int,
        default=0,
        metavar="SLICES",
        help="verify each feasible point by simulating its policy for "
        "SLICES slices (batched; 0 disables)",
    )
    p_pareto.add_argument(
        "--backend",
        default="auto",
        choices=BACKEND_CHOICES,
        help="simulation backend for --simulate (default: auto)",
    )
    p_pareto.add_argument(
        "--chunk-slices",
        type=int,
        default=None,
        metavar="N",
        help="pin the batch tier's chunk length for --simulate "
        "(default: lane-count-scaled heuristic)",
    )
    p_pareto.add_argument(
        "--profile",
        action="store_true",
        help="print aggregated LP solve statistics (iterations, "
        "refactorizations, warm starts, dedupe/bracket savings)",
    )
    p_pareto.add_argument("--seed", type=int, default=0)

    p_exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p_exp.add_argument(
        "experiment_id",
        help="experiment id, 'list' to enumerate, or 'all'",
    )
    p_exp.add_argument(
        "--full",
        action="store_true",
        help="full-length simulations (default: quick mode)",
    )
    p_exp.add_argument("--seed", type=int, default=0)
    p_exp.add_argument(
        "--backend",
        default=None,
        choices=BACKEND_CHOICES,
        help="simulation backend, forwarded to drivers that accept it",
    )
    p_exp.add_argument(
        "--lp-backend",
        default=None,
        help="LP backend (scipy/interior-point/simplex), forwarded to "
        "drivers that accept it",
    )

    p_fleet = sub.add_parser(
        "fleet", help="run an online fleet campaign (repro.runtime)"
    )
    p_fleet.add_argument(
        "spec",
        nargs="?",
        help="path to a JSON fleet spec (omit with --resume)",
    )
    p_fleet.add_argument(
        "--ticks", type=int, default=10, help="ticks to run (default: 10)"
    )
    p_fleet.add_argument(
        "--slices-per-tick",
        type=int,
        default=None,
        metavar="N",
        help="slices per tick (default: the spec's slices_per_tick, or 1000)",
    )
    p_fleet.add_argument(
        "--backend",
        default="auto",
        choices=CONTROLLER_BACKENDS,
        help="fleet stepping mode: grouped batches (auto/vector/jit; "
        "jit needs the numba extra) or the per-device reference loop",
    )
    p_fleet.add_argument(
        "--chunk-slices",
        type=int,
        default=None,
        metavar="N",
        help="pinned chunk length for grouped batches (default: 256); "
        "results are bitwise-reproducible only across runs sharing "
        "the pin",
    )
    p_fleet.add_argument(
        "--uniform-source",
        default="auto",
        choices=UNIFORM_SOURCES,
        help="per-lane uniform producer for grouped batches: auto "
        "(vectorized batched PCG64 where byte-identical, serial "
        "fan-in otherwise), fanin, or batched (require the "
        "vectorized path); affects speed only, never results",
    )
    p_fleet.add_argument(
        "--timing",
        action="store_true",
        help="stamp telemetry with per-tick wall-clock (step/solve "
        "split); forfeits byte-identical telemetry across machines",
    )
    p_fleet.add_argument(
        "--lp-backend",
        default="scipy",
        help="LP backend for optimal/adaptive agents",
    )
    p_fleet.add_argument(
        "--telemetry",
        metavar="PATH",
        help="write JSON-lines fleet snapshots to PATH",
    )
    p_fleet.add_argument(
        "--telemetry-every",
        type=int,
        default=1,
        metavar="K",
        help="ticks between telemetry snapshots (default: 1)",
    )
    p_fleet.add_argument(
        "--per-device",
        action="store_true",
        help="include per-device sub-records in telemetry snapshots",
    )
    p_fleet.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="save full fleet state to PATH after the run",
    )
    p_fleet.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a checkpointed campaign instead of building from a spec",
    )
    p_fleet.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve", help="run the sharded fleet daemon (repro.service)"
    )
    p_serve.add_argument(
        "spec",
        nargs="?",
        help="path to a JSON fleet spec (omit with --resume, or to "
        "start an empty fleet and register groups live)",
    )
    p_serve.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="AF_UNIX socket path to serve on (keep it short: the "
        "kernel caps socket paths at ~100 bytes)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="worker process count (default: 2); results are "
        "byte-identical for every value",
    )
    p_serve.add_argument(
        "--slices-per-tick",
        type=int,
        default=None,
        metavar="N",
        help="slices per tick (default: the spec's slices_per_tick, or 1000)",
    )
    p_serve.add_argument(
        "--backend",
        default="auto",
        choices=CONTROLLER_BACKENDS,
        help="per-shard fleet stepping mode (as for the fleet command)",
    )
    p_serve.add_argument(
        "--chunk-slices",
        type=int,
        default=None,
        metavar="N",
        help="pinned chunk length for grouped batches (default: 256)",
    )
    p_serve.add_argument(
        "--uniform-source",
        default="auto",
        choices=UNIFORM_SOURCES,
        help="per-lane uniform producer for grouped batches "
        "(as for the fleet command)",
    )
    p_serve.add_argument(
        "--lp-backend",
        default="scipy",
        help="LP backend for optimal/adaptive agents",
    )
    p_serve.add_argument(
        "--telemetry",
        metavar="PATH",
        help="write JSON-lines fleet snapshots to PATH",
    )
    p_serve.add_argument(
        "--telemetry-every",
        type=int,
        default=1,
        metavar="K",
        help="ticks between telemetry snapshots (default: 1)",
    )
    p_serve.add_argument(
        "--per-device",
        action="store_true",
        help="include per-device sub-records in telemetry snapshots",
    )
    p_serve.add_argument(
        "--flush-every",
        type=int,
        default=1,
        metavar="N",
        help="telemetry records between flushes (default: 1; raise to "
        "trade crash durability for throughput)",
    )
    p_serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the telemetry file on every flush",
    )
    p_serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="K",
        help="per-shard restart-spool cadence in ticks (default: 1; "
        "0 disables spooling — a dead worker then kills the run)",
    )
    p_serve.add_argument(
        "--spool-dir",
        metavar="DIR",
        help="directory for per-shard restart spools (default: a "
        "private temporary directory)",
    )
    p_serve.add_argument(
        "--resume",
        metavar="PATH",
        help="resume a checkpointed campaign (any shard count) instead "
        "of building from a spec",
    )
    p_serve.add_argument(
        "--worker-deadline",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="seconds before a silent worker is declared hung and "
        "restarted from spool (default: 300; 0 disables deadlines)",
    )
    p_serve.add_argument(
        "--restart-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the exponential pause between failed recoveries "
        "of one shard (default: 0.5, capped at 30)",
    )
    p_serve.add_argument(
        "--quarantine-after",
        type=int,
        default=5,
        metavar="N",
        help="consecutive failed recoveries before a shard is "
        "quarantined instead of crash-looping (default: 5)",
    )
    p_serve.add_argument(
        "--fault-plan",
        metavar="PATH",
        help="JSON fault plan (repro.faults) injected across the "
        "daemon and every worker — deterministic chaos testing",
    )
    p_serve.add_argument(
        "--fault-ledger",
        metavar="DIR",
        help="one-shot fault ledger directory (default: "
        "<spool-dir>/fired); share it with fleet-ctl --fault-plan "
        "to coordinate one plan across both ends",
    )
    p_serve.add_argument("--seed", type=int, default=0)

    p_ctl = sub.add_parser(
        "fleet-ctl", help="control a running fleet daemon"
    )
    p_ctl.add_argument(
        "--socket",
        required=True,
        metavar="PATH",
        help="the daemon's AF_UNIX socket path",
    )
    p_ctl.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="socket timeout (default: block forever)",
    )
    p_ctl.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="reconnect-and-retry attempts per request after a "
        "transport failure (default: 3; 0 disables; retried requests "
        "are idempotent — the daemon never re-applies one)",
    )
    p_ctl.add_argument(
        "--retry-backoff",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="base of the exponential pause between retry attempts "
        "(default: 0.05, capped at 2)",
    )
    p_ctl.add_argument(
        "--fault-plan",
        metavar="PATH",
        help="JSON fault plan installed in this client process "
        "(client.send / client.recv / channel.send sites)",
    )
    p_ctl.add_argument(
        "--fault-ledger",
        metavar="DIR",
        help="one-shot fault ledger directory (default: "
        "<fault-plan>.fired next to the plan file)",
    )
    ctl_sub = p_ctl.add_subparsers(dest="action", required=True)
    ctl_sub.add_parser("info", help="operational summary as JSON")
    ctl_sub.add_parser("ping", help="liveness probe")
    p_ctl_step = ctl_sub.add_parser("step", help="advance the fleet")
    p_ctl_step.add_argument(
        "ticks", type=int, nargs="?", default=1, help="ticks to run"
    )
    p_ctl_step.add_argument(
        "--follow",
        action="store_true",
        help="print each streamed telemetry record to stdout (one "
        "JSON line per snapshot, byte-identical to the daemon's "
        "--telemetry file)",
    )
    p_ctl_reg = ctl_sub.add_parser(
        "register", help="register a device group into the live fleet"
    )
    p_ctl_reg.add_argument(
        "group", help="path to a JSON group spec (fleet-spec group vocabulary)"
    )
    p_ctl_reg.add_argument(
        "--seed", type=int, default=0, help="base seed (as build_fleet)"
    )
    p_ctl_reg.add_argument(
        "--group-index",
        type=int,
        default=None,
        metavar="I",
        help="explicit group index for seeding/ids (default: the "
        "daemon's running counter)",
    )
    p_ctl_rm = ctl_sub.add_parser("remove", help="deregister one device")
    p_ctl_rm.add_argument("device_id")
    p_ctl_up = ctl_sub.add_parser(
        "update-policy", help="push a new agent onto a live device"
    )
    p_ctl_up.add_argument("device_id")
    p_ctl_up.add_argument(
        "agent", help="path to a JSON agent spec (fleet-spec vocabulary)"
    )
    p_ctl_snap = ctl_sub.add_parser(
        "snapshot", help="current fleet telemetry snapshot as JSON"
    )
    p_ctl_snap.add_argument(
        "--per-device",
        action="store_true",
        help="include per-device sub-records",
    )
    p_ctl_ck = ctl_sub.add_parser(
        "checkpoint", help="write a full-fleet checkpoint"
    )
    p_ctl_ck.add_argument(
        "path", help="checkpoint path (on the daemon's filesystem)"
    )
    ctl_sub.add_parser("shutdown", help="stop the daemon")

    sub.add_parser(
        "backends",
        help="list simulation backends and whether each is importable",
    )

    p_lint = sub.add_parser(
        "lint",
        help="statically check the repo's reproducibility contracts",
    )
    add_lint_arguments(p_lint)

    p_ext = sub.add_parser("extract", help="fit an SR model from a trace")
    p_ext.add_argument("trace", help="path to a request trace file")
    p_ext.add_argument("--resolution", type=float, required=True, help="tau, seconds")
    p_ext.add_argument("--memory", type=int, default=1)

    p_fit = sub.add_parser(
        "fit", help="identify workload/provider models from measured data"
    )
    p_fit.add_argument("trace", help="path to a request trace file")
    p_fit.add_argument(
        "--resolution", type=float, required=True, help="tau, seconds"
    )
    p_fit.add_argument(
        "--memory",
        type=int,
        default=None,
        help="fix the chain memory (skips the BIC structure search)",
    )
    p_fit.add_argument(
        "--memories",
        default="1,2,3",
        help="candidate memories for the structure search (default: 1,2,3)",
    )
    p_fit.add_argument(
        "--max-level",
        type=int,
        default=None,
        help="fix the arrival-level cap (default: searched up to 3)",
    )
    p_fit.add_argument(
        "--smoothing",
        type=float,
        default=0.5,
        help="Dirichlet pseudo-count for chain fitting (default: 0.5)",
    )
    p_fit.add_argument(
        "--criterion",
        choices=("bic", "aic"),
        default="bic",
        help="structure-selection criterion (default: bic)",
    )
    p_fit.add_argument(
        "--provider-spec",
        metavar="SPEC.json",
        help="take the SP model and optimization setup from a system spec",
    )
    p_fit.add_argument(
        "--provider-log",
        metavar="LOG.jsonl",
        help="fit the SP model from a JSON-lines transition log",
    )
    p_fit.add_argument(
        "--out",
        metavar="SYSTEM.json",
        help="write the fitted, ready-to-optimize system spec",
    )
    p_fit.add_argument(
        "--fleet-out",
        metavar="FLEET.json",
        help="write a one-group fleet spec driven by the fitted generator",
    )
    p_fit.add_argument(
        "--count",
        type=int,
        default=16,
        help="device count for --fleet-out (default: 16)",
    )
    p_fit.add_argument(
        "--generator",
        choices=("auto", "mmpp2", "poisson"),
        default="auto",
        help="fleet workload generator (default: lower-BIC fit)",
    )
    p_fit.add_argument(
        "--report", metavar="REPORT.json", help="write the fit report JSON"
    )
    p_fit.add_argument(
        "--name", default=None, help="name for the emitted system spec"
    )
    p_fit.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        help="queue capacity for the emitted spec (default: provider "
        "spec's, or 1)",
    )
    p_fit.add_argument(
        "--gamma",
        type=float,
        default=None,
        help="discount factor for the emitted spec",
    )
    p_fit.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when a validation check fails",
    )

    return parser


def _print_lp_profile(lp_result, header: str = "lp solve profile") -> None:
    """Render one LP solve's ``LPResult.stats`` as a profile block."""
    stats = getattr(lp_result, "stats", None)
    if not stats:
        print(
            f"{header}: backend {lp_result.backend!r} reported no solve "
            f"statistics"
        )
        return
    shape = f"{stats.get('n_rows', '?')} rows x {stats.get('n_cols', '?')} cols"
    rep = "sparse" if stats.get("sparse") else "dense"
    print(
        f"{header}: {rep} {shape}, nnz {stats.get('nnz', '?')}, "
        f"backend {lp_result.backend}"
    )
    print(
        f"  iterations {stats.get('iterations', 0)}, "
        f"refactorizations {stats.get('refactorizations', 0)}, "
        f"eta updates {stats.get('eta_updates', 0)}, "
        f"fill-in {stats.get('fill_ratio', 0.0)}x, "
        f"pricing {stats.get('pricing', 'n/a')}, "
        f"warm start {'yes' if stats.get('warm_start_used') else 'no'}"
    )


def _cmd_optimize(args) -> int:
    spec = load_spec(args.spec)
    trace = Trace.load(args.trace) if args.trace else None
    rng = None if args.no_verify else make_rng(args.seed)
    report = run_pipeline(
        spec,
        trace=trace,
        memory=args.memory,
        rng=rng,
        backend=args.lp_backend,
        formulation="average" if args.average else "discounted",
        sim_backend=args.backend,
        chunk_slices=args.chunk_slices,
    )
    print(report.summary())
    if args.profile:
        _print_lp_profile(report.optimization.lp_result)
    if not report.optimization.feasible:
        return 1
    if args.print_policy:
        policy = report.optimization.policy
        rows = [
            [state] + [policy.matrix[i, a] for a in range(policy.n_commands)]
            for i, state in enumerate(report.system_states)
        ]
        print(
            format_table(
                ["state"] + list(policy.command_names),
                rows,
                title="optimal policy matrix",
            )
        )
    return 0


def _cmd_pareto(args) -> int:
    spec = load_spec(args.spec)
    bounds = [float(b) for b in args.bounds.split(",") if b.strip()]
    report = sweep_tradeoff(
        spec,
        bounds,
        objective=args.objective,
        constraint=args.constraint,
        refine=args.refine,
        n_jobs=args.jobs,
        backend=args.lp_backend,
    )
    curve = report.curve
    simulated: list = [None] * len(curve.points)
    headers = [f"{args.constraint}_bound", f"min_{args.objective}", "feasible"]
    if args.simulate > 0:
        simulated = simulate_curve(
            curve,
            report.system,
            report.costs,
            args.simulate,
            args.seed,
            backend=args.backend,
            chunk_slices=args.chunk_slices,
        )
        headers.append(f"sim_{args.objective}")
    rows = []
    for point, sims in zip(curve.points, simulated):
        row = [
            point.bound,
            point.objective if point.feasible else float("nan"),
            "yes" if point.feasible else "no",
        ]
        if args.simulate > 0:
            row.append(
                sims[0].averages[args.objective] if sims else float("nan")
            )
        rows.append(tuple(row))
    print(
        format_table(
            headers,
            rows,
            title=f"trade-off curve for {spec.name}",
        )
    )
    stats = curve.stats
    if stats is not None:
        print(
            f"sweep: {stats.n_solves} LP solves for {stats.n_requested} "
            f"requested bounds ({stats.n_warm} warm-started, "
            f"{stats.n_deduped} deduped, {stats.n_bracket_skipped} "
            f"skipped by bracketing, {stats.n_refined} refined)"
        )
        if args.profile:
            saved = stats.n_deduped + stats.n_bracket_skipped
            print(
                f"profile: {stats.lp_iterations} simplex iterations, "
                f"{stats.lp_refactorizations} refactorizations across "
                f"{stats.n_solves} solves; {saved} solve(s) answered "
                f"without touching the backend (dedupe/bracket cache hits)"
            )
            solved = next(
                (
                    p.result.lp_result
                    for p in curve.points
                    if p.result is not None and p.result.lp_result is not None
                ),
                None,
            )
            if solved is not None:
                _print_lp_profile(solved, header="representative solve")
    return 0


def _cmd_experiment(args) -> int:
    if args.experiment_id == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0
    ids = (
        list(available_experiments())
        if args.experiment_id == "all"
        else [args.experiment_id]
    )
    exit_code = 0
    for experiment_id in ids:
        result = run_experiment(
            experiment_id,
            quick=not args.full,
            seed=args.seed,
            backend=args.backend,
            lp_backend=args.lp_backend,
        )
        print(result.render())
        print()
        if not result.all_checks_pass:
            exit_code = 1
    return exit_code


def _cmd_backends(args) -> int:
    """Print every known simulation backend and its importability."""
    rows = []
    for name, reason in available_backends().items():
        rows.append((name, "available" if reason is None else f"unavailable: {reason}"))
    print(format_table(["backend", "status"], rows, title="simulation backends"))
    return 0


def _cmd_fleet(args) -> int:
    import json as _json

    from repro.runtime import (
        FleetController,
        JsonLinesTelemetry,
        build_fleet,
    )

    telemetry = None
    if args.telemetry:
        telemetry = JsonLinesTelemetry(
            args.telemetry, append=args.resume is not None
        )
    try:
        if args.resume:
            controller = FleetController.resume(
                args.resume,
                telemetry=telemetry,
                telemetry_every=args.telemetry_every,
                telemetry_per_device=args.per_device or None,
                backend=args.backend if args.backend != "auto" else None,
                uniform_source=(
                    args.uniform_source
                    if args.uniform_source != "auto"
                    else None
                ),
                record_timing=args.timing,
            )
            cache = None
            if args.chunk_slices is not None:
                print(
                    "note: --chunk-slices is ignored on --resume (the "
                    "checkpoint's pin is kept for bitwise determinism)"
                )
            print(
                f"resumed fleet of {len(controller.fleet)} devices at "
                f"tick {controller.tick}"
            )
        else:
            if not args.spec:
                raise ValidationError(
                    "a fleet spec is required unless --resume is given"
                )
            raw = _json.loads(Path(args.spec).read_text())
            fleet, cache = build_fleet(
                raw, base_seed=args.seed, lp_backend=args.lp_backend
            )
            slices_per_tick = args.slices_per_tick or int(
                raw.get("slices_per_tick", 1000)
            )
            controller = FleetController(
                fleet,
                slices_per_tick=slices_per_tick,
                backend=args.backend,
                telemetry=telemetry,
                telemetry_every=args.telemetry_every,
                telemetry_per_device=args.per_device,
                chunk_slices=args.chunk_slices,
                uniform_source=args.uniform_source,
                record_timing=args.timing,
                policy_cache=cache,
            )
            print(
                f"built fleet {raw.get('name', 'unnamed')!r}: "
                f"{len(fleet)} devices"
            )
        if args.slices_per_tick and args.resume:
            print(
                "note: --slices-per-tick is ignored on --resume (the "
                "checkpoint's tick length is kept for determinism)"
            )

        grouping = controller.grouping()
        vector_devices = sum(
            g["devices"] for g in grouping["vector_groups"]
        )
        print(
            f"grouping: {len(grouping['vector_groups'])} batch group(s) "
            f"covering {vector_devices} device(s) on the "
            f"{controller.resolved_backend!r} backend, "
            f"{grouping['loop_devices']} on the per-device loop"
        )
        if cache is not None and (cache.stats.hits or cache.stats.misses):
            print(
                f"policy cache: {cache.stats.misses} solve(s), "
                f"{cache.stats.hits} hit(s), "
                f"{cache.stats.warm_hinted} warm-started"
            )

        controller.run(args.ticks)

        record = controller.snapshot(per_device=False)
        rows = [
            (name, stats["mean"], stats["min"], stats["max"])
            for name, stats in sorted(record["metrics"].items())
        ]
        print(
            format_table(
                ["metric", "fleet_mean", "min", "max"],
                rows,
                title=(
                    f"fleet after tick {record['tick']} "
                    f"({record['fleet_slices']} device-slices)"
                ),
            )
        )
        counters = record["counters"]
        print(
            f"requests: {counters['arrivals']} arrived, "
            f"{counters['serviced']} serviced, {counters['lost']} lost"
        )
        if args.timing and controller.last_timing is not None:
            timing = controller.last_timing
            print(
                f"last tick: {timing['tick_seconds']:.3f}s "
                f"({timing['step_seconds']:.3f}s stepping, "
                f"{timing['solve_seconds']:.3f}s solving)"
            )
        if args.checkpoint:
            controller.save_checkpoint(args.checkpoint)
            print(f"checkpoint saved to {args.checkpoint}")
        return 0
    finally:
        if telemetry is not None:
            telemetry.close()


def _cmd_serve(args) -> int:
    import json as _json

    from repro.runtime import (
        JsonLinesTelemetry,
        build_fleet,
        load_checkpoint,
    )
    from repro.service import FleetDaemon, ShardSupervisor

    if args.resume and args.spec:
        raise ValidationError("pass a fleet spec or --resume, not both")
    telemetry = None
    if args.telemetry:
        telemetry = JsonLinesTelemetry(
            args.telemetry,
            append=args.resume is not None,
            flush_every=args.flush_every,
            fsync=args.fsync,
        )
    cache = None
    fleet = None
    tick = 0
    next_group_index = 0
    slices_per_tick = args.slices_per_tick or 1000
    backend = args.backend
    chunk_slices = args.chunk_slices
    uniform_source = args.uniform_source
    per_device = args.per_device
    if args.resume:
        payload = load_checkpoint(args.resume)
        fleet = payload["fleet"]
        tick = payload["tick"]
        slices_per_tick = payload["slices_per_tick"]
        backend = payload["backend"]
        chunk_slices = payload["chunk_slices"]
        # Speed knob, not a determinism pin: an explicit flag wins over
        # the checkpoint's saved producer (pre-knob checkpoints resume
        # as "auto").
        if uniform_source == "auto":
            uniform_source = payload.get("uniform_source", "auto")
        # Like `fleet --resume`: the flag can force per-device snapshots
        # on, but when absent the checkpoint's setting carries over so a
        # resumed daemon keeps emitting the same telemetry shape.
        per_device = per_device or bool(payload["telemetry_per_device"])
        for option, flag in (
            (args.slices_per_tick, "--slices-per-tick"),
            (args.chunk_slices, "--chunk-slices"),
        ):
            if option is not None:
                print(
                    f"note: {flag} is ignored on --resume (the "
                    f"checkpoint's value is kept for determinism)"
                )
        print(
            f"resumed fleet of {len(fleet)} devices at tick {tick} "
            f"across {args.shards} shard(s)"
        )
    elif args.spec:
        raw = _json.loads(Path(args.spec).read_text())
        fleet, cache = build_fleet(
            raw, base_seed=args.seed, lp_backend=args.lp_backend
        )
        slices_per_tick = args.slices_per_tick or int(
            raw.get("slices_per_tick", 1000)
        )
        next_group_index = len(raw.get("groups", []))
        print(
            f"built fleet {raw.get('name', 'unnamed')!r}: "
            f"{len(fleet)} devices across {args.shards} shard(s)"
        )
    else:
        print(
            f"starting an empty fleet across {args.shards} shard(s); "
            f"register groups with fleet-ctl"
        )
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.load(args.fault_plan)
        print(
            f"chaos mode: {len(fault_plan)} fault(s) scripted from "
            f"{args.fault_plan}"
        )
    supervisor = ShardSupervisor(
        args.shards,
        slices_per_tick=slices_per_tick,
        backend=backend,
        chunk_slices=chunk_slices,
        uniform_source=uniform_source,
        lp_backend=args.lp_backend,
        spool_dir=args.spool_dir,
        checkpoint_every=args.checkpoint_every,
        worker_deadline=args.worker_deadline or None,
        restart_backoff=args.restart_backoff,
        quarantine_after=args.quarantine_after,
        fault_plan=fault_plan,
        fault_ledger=args.fault_ledger,
    )
    if fleet is not None:
        supervisor.start(fleet, tick=tick)
    daemon = FleetDaemon(
        args.socket,
        supervisor,
        telemetry=telemetry,
        telemetry_every=args.telemetry_every,
        telemetry_per_device=per_device,
        policy_cache=cache,
        next_group_index=next_group_index,
    )
    print(f"serving on {args.socket} (stop with fleet-ctl shutdown)")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        print("interrupted; workers stopped")
    return 0


def _cmd_fleet_ctl(args) -> int:
    import json as _json

    from repro.service import ServiceClient

    if args.fault_plan:
        from repro import faults
        from repro.faults import FaultPlan

        ledger = args.fault_ledger or f"{args.fault_plan}.fired"
        faults.install(FaultPlan.load(args.fault_plan), ledger)
    with ServiceClient(
        args.socket,
        timeout=args.timeout,
        retries=args.retries,
        retry_backoff=args.retry_backoff,
    ) as client:
        if args.action == "info":
            print(_json.dumps(client.info(), indent=2, sort_keys=True))
        elif args.action == "ping":
            print(_json.dumps(client.ping(), sort_keys=True))
        elif args.action == "step":
            on_telemetry = None
            if args.follow:
                def on_telemetry(record):
                    # Matches JsonLinesTelemetry's serialization, so
                    # redirected stdout diffs cleanly against a
                    # --telemetry file.
                    print(_json.dumps(record, sort_keys=True))
            result = client.step(args.ticks, on_telemetry=on_telemetry)
            summary = (
                f"stepped {result['ticks_run']} tick(s) to "
                f"tick {result['tick']}"
            )
            if args.follow:
                print(summary, file=sys.stderr)
            else:
                print(summary)
        elif args.action == "register":
            group = _json.loads(Path(args.group).read_text())
            result = client.register_group(
                group, base_seed=args.seed, group_index=args.group_index
            )
            ids = result["device_ids"]
            print(
                f"registered {len(ids)} device(s) "
                f"({ids[0]} .. {ids[-1]}) as group "
                f"{result['group_index']}; fleet is now "
                f"{result['n_devices']} device(s)"
            )
        elif args.action == "remove":
            result = client.remove_device(args.device_id)
            print(
                f"removed {result['device_id']}; fleet is now "
                f"{result['n_devices']} device(s)"
            )
        elif args.action == "update-policy":
            agent = _json.loads(Path(args.agent).read_text())
            result = client.update_policy(args.device_id, agent)
            print(f"device {result['device_id']} now runs {result['agent']}")
        elif args.action == "snapshot":
            print(
                _json.dumps(client.snapshot(args.per_device), sort_keys=True)
            )
        elif args.action == "checkpoint":
            result = client.checkpoint(args.path)
            print(
                f"checkpoint at tick {result['tick']} written to "
                f"{result['path']}"
            )
        elif args.action == "shutdown":
            client.shutdown()
            print("daemon stopped")
        else:  # pragma: no cover - argparse rejects unknown actions
            raise ValidationError(f"unknown action {args.action!r}")
    return 0


def _cmd_fit(args) -> int:
    import json as _json

    from repro.estimation import (
        ProviderLog,
        fit_provider,
        fit_workload,
        fleet_spec_from_fit,
        system_spec_from_fit,
    )
    from repro.tool.spec import parse_spec

    trace = Trace.load(args.trace)
    memories = (
        (args.memory,)
        if args.memory is not None
        else tuple(
            int(m) for m in str(args.memories).split(",") if m.strip()
        )
    )
    fit = fit_workload(
        trace,
        resolution=args.resolution,
        memories=memories,
        max_levels=None if args.max_level is None else (args.max_level,),
        smoothing=args.smoothing,
        criterion=args.criterion,
    )
    print(fit.summary())

    # Resolve the service-provider side: a hand-written spec, a fitted
    # transition log, or none (workload-only fit).
    provider = None
    queue_capacity = 1
    gamma = 0.99999
    objective = "power"
    constraints: dict = {}
    lower_constraints: dict = {}
    initial_state = None
    if args.provider_spec and args.provider_log:
        raise ValidationError(
            "pass --provider-spec or --provider-log, not both"
        )
    if args.provider_spec:
        base = load_spec(args.provider_spec)
        provider = base.provider
        queue_capacity = base.queue_capacity
        gamma = base.gamma
        objective = base.objective
        constraints = dict(base.constraints)
        lower_constraints = dict(base.lower_constraints)
        # base.initial_state is intentionally not carried over: the
        # fitted chain renames the SR states, so the emitted spec
        # starts from the uniform distribution instead.
    elif args.provider_log:
        provider_fit = fit_provider(ProviderLog.load_jsonl(args.provider_log))
        provider = provider_fit.provider
        print(provider_fit.summary())
        print(provider_fit.transition_time_table())
    if args.queue_capacity is not None:
        queue_capacity = args.queue_capacity
    if args.gamma is not None:
        gamma = args.gamma

    name = args.name or f"{Path(args.trace).stem}-fitted"
    if args.out or args.fleet_out:
        if provider is None:
            raise ValidationError(
                "--out/--fleet-out need an SP model; pass --provider-spec "
                "or --provider-log"
            )
        raw = system_spec_from_fit(
            name,
            provider,
            fit,
            queue_capacity=queue_capacity,
            gamma=gamma,
            objective=objective,
            constraints=constraints,
            lower_constraints=lower_constraints,
            initial_state=initial_state,
        )
        parse_spec(raw)  # fail before writing anything malformed
        if args.out:
            Path(args.out).write_text(_json.dumps(raw, indent=2) + "\n")
            print(f"fitted system spec written to {args.out}")
        if args.fleet_out:
            fleet_raw = fleet_spec_from_fit(
                fit,
                raw,
                name=f"{name}-fleet",
                count=args.count,
                generator=args.generator,
            )
            Path(args.fleet_out).write_text(
                _json.dumps(fleet_raw, indent=2) + "\n"
            )
            print(f"fleet spec written to {args.fleet_out}")
    if args.report:
        Path(args.report).write_text(
            _json.dumps(fit.report.to_dict(), indent=2) + "\n"
        )
        print(f"fit report written to {args.report}")
    if not fit.report.valid:
        print("validation: FAILED (see report above)")
        if args.strict:
            return 1
    return 0


def _cmd_extract(args) -> int:
    trace = Trace.load(args.trace)
    model = SRExtractor(memory=args.memory).fit_trace(trace, args.resolution)
    print(
        f"fitted {model.memory}-memory model over {model.n_states} states "
        f"from {model.n_observations} transitions"
    )
    names = ["".join(map(str, s)) for s in model.states]
    rows = [
        [names[i]] + [model.matrix[i, j] for j in range(model.n_states)]
        for i in range(model.n_states)
    ]
    print(format_table(["state"] + names, rows, title="transition matrix"))
    with np.printoptions(precision=4, suppress=True):
        print("state counts:", model.state_counts)
    return 0


def main(argv=None) -> int:
    """CLI entry point (installed as ``repro-dpm``)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "optimize": _cmd_optimize,
        "pareto": _cmd_pareto,
        "experiment": _cmd_experiment,
        "fleet": _cmd_fleet,
        "serve": _cmd_serve,
        "fleet-ctl": _cmd_fleet_ctl,
        "fit": _cmd_fit,
        "extract": _cmd_extract,
        "backends": _cmd_backends,
        "lint": run_lint,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:  # output piped into head etc.
        return 0
    except (ValidationError, FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
