"""End-to-end policy-optimization pipeline (paper Fig. 7).

``run_pipeline`` wires the full tool flow together:

1. **SR extractor** — discretize the request trace at the spec's time
   resolution and fit a k-memory Markov workload model;
2. **Markov composer** — compose SP x SR x SQ into the joint chain;
3. **LP solver / policy extractor** — solve the constrained LP and
   recover the randomized optimal policy (Eq. 16);
4. **Verification** — simulate the policy against the Markov model
   ("to check consistency") and against the raw trace ("to check the
   quality of the Markov model"), reporting both alongside the
   optimizer's analytic predictions.

``optimize_spec`` is the trace-less variant for specs that carry their
own requester model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import OptimizationResult, PolicyOptimizer
from repro.core.pareto import ParetoCurve
from repro.core.pareto_sweep import ParetoSweepSolver
from repro.policies.stochastic import StationaryPolicyAgent
from repro.sim.engine import SimulationResult, simulate
from repro.sim.trace_sim import TraceSimulationResult, simulate_trace
from repro.tool.spec import SystemSpec
from repro.traces.extractor import KMemoryModel, SRExtractor
from repro.traces.trace import Trace
from repro.util.tables import format_table
from repro.util.validation import ValidationError


@dataclass
class PipelineReport:
    """Everything the tool produced for one optimization run.

    Attributes
    ----------
    spec_name:
        The spec the run came from.
    optimization:
        The LP result: policy, frequencies, analytic metrics.
    sr_model:
        The extracted workload model (``None`` when the spec supplied
        its own requester).
    markov_simulation:
        Verification run against the Markov model (``None`` if skipped).
    trace_simulation:
        Verification run against the raw trace (``None`` if skipped or
        no trace was given).
    """

    spec_name: str
    optimization: OptimizationResult
    sr_model: KMemoryModel | None = None
    markov_simulation: SimulationResult | None = None
    trace_simulation: TraceSimulationResult | None = None
    system_states: list[str] = field(default_factory=list, repr=False)

    def summary(self) -> str:
        """Human-readable run summary with the verification table."""
        lines = [f"pipeline run for spec {self.spec_name!r}"]
        opt = self.optimization
        if not opt.feasible:
            lines.append("  INFEASIBLE under the given constraints")
            return "\n".join(lines)
        rows = []
        for metric, value in sorted(opt.evaluation.averages.items()):
            row = [metric, value]
            row.append(
                self.markov_simulation.averages.get(metric, float("nan"))
                if self.markov_simulation
                else float("nan")
            )
            if self.trace_simulation and metric in (POWER, PENALTY):
                row.append(
                    self.trace_simulation.mean_power
                    if metric == POWER
                    else self.trace_simulation.mean_penalty
                )
            else:
                row.append(float("nan"))
            rows.append(row)
        lines.append(
            format_table(
                ["metric", "analytic", "markov-sim", "trace-sim"],
                rows,
                title="per-slice averages",
            )
        )
        randomized = "randomized" if not opt.policy.is_deterministic else "deterministic"
        lines.append(f"  policy: {randomized}, {opt.policy.n_states} states")
        return "\n".join(lines)


def optimize_spec(
    spec: SystemSpec,
    backend: str = "scipy",
    cross_check: bool = False,
    formulation: str = "discounted",
) -> tuple[PolicyOptimizer, OptimizationResult]:
    """Solve the optimization a spec describes (spec-supplied requester).

    Parameters
    ----------
    formulation:
        ``"discounted"`` (paper Eq. 9, uses the spec's gamma and
        initial state) or ``"average"`` (paper Eq. 7, long-run average;
        gamma and initial state are ignored).
    """
    system, costs, p0 = spec.compose()
    optimizer = _make_optimizer(
        spec, system, costs, p0, backend, cross_check, formulation
    )
    result = optimizer.optimize(
        spec.objective,
        "min",
        upper_bounds=spec.constraints,
        lower_bounds=spec.lower_constraints,
    )
    return optimizer, result


def _make_optimizer(spec, system, costs, p0, backend, cross_check, formulation):
    if formulation == "discounted":
        return PolicyOptimizer(
            system,
            costs,
            gamma=spec.gamma,
            initial_distribution=p0,
            backend=backend,
            cross_check=cross_check,
        )
    if formulation == "average":
        from repro.core.average_cost import AverageCostOptimizer

        return AverageCostOptimizer(
            system, costs, backend=backend, cross_check=cross_check
        )
    raise ValidationError(
        f"unknown formulation {formulation!r}; use 'discounted' or 'average'"
    )


@dataclass
class SweepReport:
    """A spec-level Pareto sweep plus the objects needed to verify it.

    Attributes
    ----------
    curve:
        The swept :class:`~repro.core.pareto.ParetoCurve` (``curve.stats``
        carries the engine's solve accounting).
    optimizer / system / costs:
        The optimizer and composed system behind the sweep — kept so
        callers can simulate the curve's policies or solve follow-up
        points without recomposing the spec.
    """

    curve: ParetoCurve
    optimizer: PolicyOptimizer
    system: "object"
    costs: "object"


def sweep_tradeoff(
    spec: SystemSpec,
    bounds,
    objective: str = POWER,
    constraint: str = PENALTY,
    *,
    constraint_sense: str = "<=",
    extra_upper_bounds: dict[str, float] | None = None,
    refine: int = 0,
    n_jobs: int = 1,
    backend: str = "scipy",
    cross_check: bool = False,
    formulation: str = "discounted",
) -> SweepReport:
    """Sweep a spec's trade-off curve through the incremental engine.

    Composes the spec, builds the optimizer for the requested
    ``formulation`` and runs a :class:`ParetoSweepSolver` sweep (bound
    dedupe, feasibility bracketing, warm-started incremental re-solves,
    optional ``refine`` densification and ``n_jobs`` process fan-out).
    This is the CLI's ``pareto`` engine.
    """
    system, costs, p0 = spec.compose()
    optimizer = _make_optimizer(
        spec, system, costs, p0, backend, cross_check, formulation
    )
    solver = ParetoSweepSolver(
        optimizer,
        objective=objective,
        constraint=constraint,
        constraint_sense=constraint_sense,
        extra_upper_bounds=extra_upper_bounds,
        n_jobs=n_jobs,
    )
    curve = solver.solve(bounds, refine=refine)
    return SweepReport(curve=curve, optimizer=optimizer, system=system, costs=costs)


def run_pipeline(
    spec: SystemSpec,
    trace: Trace | None = None,
    memory: int = 1,
    rng: np.random.Generator | None = None,
    verify_slices: int = 50_000,
    backend: str = "scipy",
    cross_check: bool = False,
    formulation: str = "discounted",
    sim_backend: str = "auto",
    chunk_slices: int | None = None,
) -> PipelineReport:
    """Run the full Fig. 7 flow.

    Parameters
    ----------
    spec:
        The validated system description.
    trace:
        Request trace; required when the spec has no requester.  When
        given, the SR model is extracted from it and trace-driven
        verification is performed.
    memory:
        SR extractor memory ``k``.
    rng:
        Generator for the verification simulations; ``None`` disables
        them (pure optimization).
    verify_slices:
        Length of the Markov-driven verification run.
    backend / cross_check:
        LP backend options (see :func:`repro.lp.solve_lp`).
    formulation:
        ``"discounted"`` (paper Eq. 9) or ``"average"`` (paper Eq. 7).
    sim_backend:
        Simulation backend for the Markov verification run
        (``"auto"``, ``"loop"``, ``"vector"`` or ``"jit"``, see
        :mod:`repro.sim.backends`).
    chunk_slices:
        Pin the batch tier's chunk length for the verification run
        (see :func:`repro.sim.engine.simulate_many`); ignored by the
        loop backend.
    """
    sr_model = None
    requester = spec.requester
    if trace is not None:
        sr_model = SRExtractor(memory=memory).fit_trace(trace, spec.time_resolution)
        requester = sr_model.to_requester()
    if requester is None:
        raise ValidationError(
            f"spec {spec.name!r} has no requester model and no trace was given"
        )

    from repro.core.components import ServiceQueue
    from repro.core.system import PowerManagedSystem

    system = PowerManagedSystem(
        spec.provider, requester, ServiceQueue(spec.queue_capacity)
    )
    costs = spec.costs_for(system)
    if spec.initial_state is None:
        p0 = system.uniform_distribution()
    else:
        provider_state, requester_state, queue = spec.initial_state
        # A spec initial state may name a requester state that does not
        # exist in a trace-extracted model; fall back to its first
        # (lowest-arrival-history) state.
        if str(requester_state) not in requester.state_names:
            requester_state = requester.state_names[0]
        p0 = system.point_distribution(provider_state, requester_state, int(queue))

    optimizer = _make_optimizer(
        spec, system, costs, p0, backend, cross_check, formulation
    )
    result = optimizer.optimize(
        spec.objective,
        "min",
        upper_bounds=spec.constraints,
        lower_bounds=spec.lower_constraints,
    )
    report = PipelineReport(
        spec_name=spec.name,
        optimization=result,
        sr_model=sr_model,
        system_states=[str(state) for state in system.states],
    )
    if not result.feasible or rng is None:
        return report

    agent = StationaryPolicyAgent(system, result.policy)
    report.markov_simulation = simulate(
        system,
        costs,
        agent,
        int(verify_slices),
        rng,
        backend=sim_backend,
        chunk_slices=chunk_slices,
    )
    if trace is not None:
        report.trace_simulation = simulate_trace(
            system,
            agent,
            trace.discretize(spec.time_resolution),
            rng,
            tracker=sr_model.tracker(),
        )
    return report
