"""Validation helpers for probabilistic model inputs.

Every user-facing constructor in :mod:`repro` validates its numeric
inputs through these functions, so a malformed model fails fast with a
message naming the offending quantity instead of surfacing later as a
mysteriously non-stochastic composed chain.
"""

from __future__ import annotations

import numpy as np

#: Absolute tolerance used when checking that probabilities sum to one.
#: Chosen loose enough to accept matrices assembled from rounded literals
#: (e.g. the paper's 0.85 / 0.15 examples) but tight enough to catch
#: genuinely broken rows.
PROBABILITY_ATOL = 1e-9


class ValidationError(ValueError):
    """Raised when a model input fails a structural or numeric check."""


def check_probability(value: float, name: str = "probability") -> float:
    """Return ``value`` if it lies in [0, 1], else raise.

    Parameters
    ----------
    value:
        Scalar to check.
    name:
        Human-readable name used in the error message.
    """
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if value < -PROBABILITY_ATOL or value > 1.0 + PROBABILITY_ATOL:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return min(max(value, 0.0), 1.0)


def check_nonnegative(value: float, name: str = "value") -> float:
    """Return ``value`` if it is finite and >= 0, else raise."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(f"{name} must be finite and non-negative, got {value!r}")
    return value


def check_distribution(vector, name: str = "distribution") -> np.ndarray:
    """Validate a probability distribution and return it as an array.

    The vector must be one-dimensional, entrywise in [0, 1] and sum to one
    up to :data:`PROBABILITY_ATOL` (scaled by length).
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    if np.any(arr < -PROBABILITY_ATOL):
        raise ValidationError(f"{name} contains negative entries: min={arr.min()!r}")
    total = arr.sum()
    if abs(total - 1.0) > PROBABILITY_ATOL * max(arr.size, 10):
        raise ValidationError(f"{name} must sum to 1, got {total!r}")
    return np.clip(arr, 0.0, None)


def check_square(matrix, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a finite square 2-D array and return it."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValidationError(f"{name} must be square, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_stochastic_matrix(matrix, name: str = "matrix") -> np.ndarray:
    """Validate a row-stochastic matrix and return it as an array.

    Each row must be a probability distribution.  Substochastic rows (sums
    below one) are rejected; discounting is modelled explicitly through the
    trap state (paper Fig. 5), never by silently leaking probability mass.
    """
    arr = check_square(matrix, name)
    if np.any(arr < -PROBABILITY_ATOL):
        bad = np.unravel_index(int(np.argmin(arr)), arr.shape)
        raise ValidationError(f"{name} has negative entry at {bad}: {arr[bad]!r}")
    sums = arr.sum(axis=1)
    bad_rows = np.where(np.abs(sums - 1.0) > PROBABILITY_ATOL * max(arr.shape[0], 10))[0]
    if bad_rows.size:
        row = int(bad_rows[0])
        raise ValidationError(
            f"{name} row {row} sums to {sums[row]!r}, expected 1 "
            f"({bad_rows.size} bad row(s) total)"
        )
    return np.clip(arr, 0.0, None)
