"""Shared utilities: validation helpers and plain-text table rendering.

These helpers are deliberately dependency-light; everything in
:mod:`repro` that needs to check a stochastic matrix or print an aligned
results table goes through this package so error messages and output
formatting stay consistent across the library.
"""

from repro.util.tables import format_table, format_series
from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_probability,
    check_square,
    check_stochastic_matrix,
    check_nonnegative,
)

__all__ = [
    "ValidationError",
    "check_distribution",
    "check_probability",
    "check_square",
    "check_stochastic_matrix",
    "check_nonnegative",
    "format_table",
    "format_series",
]
