"""Plain-text table rendering for experiment and benchmark output.

The experiment drivers (one per paper table/figure) print their results
through these helpers so that ``pytest benchmarks/ --benchmark-only`` and
the example scripts produce aligned, diff-friendly tables resembling the
rows/series the paper reports.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _render_cell(value, float_format: str) -> str:
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    float_format: str = ".4f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells may be any type, floats are
        formatted with ``float_format``.
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional title line printed above the table.

    Returns
    -------
    str
        The rendered table (no trailing newline).
    """
    rendered = [[_render_cell(cell, float_format) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[idx]) for idx, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
    float_format: str = ".4f",
) -> str:
    """Render a named (x, y) series as a two-column table.

    Used for figure reproductions where the paper plots a curve; each
    point becomes one row so the series can be compared numerically.
    """
    if len(xs) != len(ys):
        raise ValueError(f"series {name!r}: {len(xs)} x values vs {len(ys)} y values")
    return format_table(
        [x_label, y_label],
        list(zip(xs, ys)),
        float_format=float_format,
        title=name,
    )
