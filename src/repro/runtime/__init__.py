"""repro.runtime — the online fleet-controller subsystem.

The paper optimizes one device offline; the ROADMAP's north star is a
production service managing *fleets*.  This package is that layer: a
long-lived controller stepping thousands of heterogeneous, concurrently
managed devices through time on top of the repo's existing primitives
(the vectorized joint-state batch kernel, the incremental LP machinery,
the trace/synthetic workload generators).

Module index
------------

:mod:`~repro.runtime.fleet`
    :class:`Device` / :class:`Fleet` — the device registry: per-device
    systems, agents, RNG streams, state and accumulators; ``build_fleet``
    turns a JSON fleet spec (device groups x workloads x agents) into a
    registered fleet; :func:`device_rng` derives addressable per-device
    streams from one seed.
:mod:`~repro.runtime.controller`
    :class:`FleetController` — tick-based stepping.  Hot path: devices
    sharing a (system, costs, policy-determinism) signature advance as
    one batch of the vector backend's joint-state kernel, each lane
    drawing from its own device's generator through a
    :class:`~repro.sim.rng.UniformSource` (vectorized batched PCG64
    fan-in by default, serial fan-in otherwise); stateful/adaptive/
    stream-driven devices fall back to a resumable per-device loop.
    Results are bitwise identical however devices are grouped.
:mod:`~repro.runtime.policy_cache`
    :class:`PolicyCache` — content-addressed dedupe of LP solves
    (identical specs hit the cache; near-identical ones warm-start the
    simplex basis) plus the content-signature helpers the grouping and
    the adaptive agent's refit path share.
:mod:`~repro.runtime.streams`
    :class:`ArrivalStream` — exogenous workloads: trace replay
    (``TraceStream.load``), online synthetic generators (Poisson,
    MMPP(2), periodic bursts) and live per-tick callables.
:mod:`~repro.runtime.telemetry`
    Periodic fleet/device snapshots as deterministic records;
    in-memory and JSON-lines sinks.
:mod:`~repro.runtime.checkpoint`
    Versioned save/resume of full fleet state — RNG streams, agent
    internals, stream cursors — so campaigns survive restarts with
    byte-identical telemetry.

The sharded fleet daemon in :mod:`repro.service` builds on this layer:
it partitions a fleet across worker processes (each running its own
:class:`FleetController` over a sub-fleet) and reaggregates telemetry
and checkpoints byte-identically to a single-process run.

Quickstart::

    from repro.policies import StationaryPolicyAgent, eager_markov_policy
    from repro.runtime import Fleet, FleetController, device_rng
    from repro.systems import disk_drive

    bundle = disk_drive.build()
    policy = eager_markov_policy(bundle.system, "go_active", "go_sleep")
    fleet = Fleet()
    for i in range(1024):
        fleet.add_device(
            f"disk-{i:04d}", bundle.system, bundle.costs,
            StationaryPolicyAgent(bundle.system, policy),
            rng=device_rng(seed=0, index=i),
        )
    controller = FleetController(fleet, slices_per_tick=1000)
    controller.run(10)                       # 10k slices per device
    print(controller.snapshot()["metrics"]["power"]["mean"])

or, from the command line::

    repro-dpm fleet examples/fleet_spec.json --ticks 20 \\
        --telemetry telemetry.jsonl --checkpoint campaign.ckpt
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    checkpoint_payload,
    load_checkpoint,
    save_checkpoint,
    write_checkpoint,
)
from repro.runtime.controller import (
    FLEET_CHUNK_SLICES,
    FLEET_LANE_BLOCK,
    FleetController,
    resolve_backend_name,
)
from repro.runtime.fleet import (
    Device,
    Fleet,
    OptimizeDirective,
    build_agent_from_spec,
    build_fleet,
    build_group_devices,
    device_rng,
    parse_fleet_spec,
)
from repro.runtime.policy_cache import (
    CachedOptimizer,
    CacheStats,
    PolicyCache,
    costs_signature,
    policy_signature,
    system_signature,
)
from repro.runtime.streams import (
    ArrivalStream,
    CallableStream,
    MMPP2Stream,
    PeriodicBurstStream,
    PoissonStream,
    TraceStream,
    stream_from_spec,
)
from repro.runtime.telemetry import (
    JsonLinesTelemetry,
    MemoryTelemetry,
    device_record,
    snapshot,
    snapshot_from_records,
)

__all__ = [
    "ArrivalStream",
    "CHECKPOINT_VERSION",
    "CachedOptimizer",
    "CacheStats",
    "CallableStream",
    "Device",
    "FLEET_CHUNK_SLICES",
    "FLEET_LANE_BLOCK",
    "Fleet",
    "FleetController",
    "JsonLinesTelemetry",
    "MMPP2Stream",
    "MemoryTelemetry",
    "OptimizeDirective",
    "PeriodicBurstStream",
    "PoissonStream",
    "PolicyCache",
    "TraceStream",
    "build_agent_from_spec",
    "build_fleet",
    "build_group_devices",
    "checkpoint_payload",
    "costs_signature",
    "device_record",
    "device_rng",
    "load_checkpoint",
    "parse_fleet_spec",
    "policy_signature",
    "resolve_backend_name",
    "save_checkpoint",
    "snapshot",
    "snapshot_from_records",
    "stream_from_spec",
    "system_signature",
    "write_checkpoint",
]
