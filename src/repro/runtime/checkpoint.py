"""Fleet checkpointing: save and resume long campaigns deterministically.

A checkpoint captures *everything* the controller needs to continue as
if it had never stopped: every device's model, agent (including
internal heuristic state), accumulators, current joint state, workload
stream cursor and — crucially — its random generator state.  Because
fleet randomness is per-device (see
:mod:`repro.runtime.controller`), a resumed campaign consumes each
device's stream from exactly where the checkpoint left it, and the
telemetry it goes on to produce is byte-identical to an uninterrupted
run's.

The format is a versioned pickle (protocol 4) of a plain payload
mapping.  Pickle is the right tool here: device state is arbitrary
Python (stateful agents, trackers, numpy generators), the file is a
private save-game rather than an interchange format, and loading one
is as trusted as importing the code that wrote it.  Fleets containing
non-serializable members (a :class:`~repro.runtime.streams.CallableStream`,
an agent closed over a lambda) are rejected with a clear error at save
time instead of a corrupt file at 3 a.m.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path

from repro import faults
from repro.util.validation import ValidationError

__all__ = [
    "CHECKPOINT_FIELDS",
    "CHECKPOINT_VERSION",
    "checkpoint_payload",
    "load_checkpoint",
    "save_checkpoint",
    "write_checkpoint",
]

#: The complete field set of a checkpoint payload.  Declared once;
#: ``repro.lint`` rule SCH001 statically checks :func:`save_checkpoint`
#: against it, so the writer and :func:`load_checkpoint`'s readers
#: cannot drift apart silently.  Adding a field here is an explicit
#: schema decision — remember to bump :data:`CHECKPOINT_VERSION` when
#: the change is incompatible.
CHECKPOINT_FIELDS = frozenset(
    {
        "format",
        "version",
        "tick",
        "slices_per_tick",
        "backend",
        "chunk_slices",
        "uniform_source",
        "telemetry_every",
        "telemetry_per_device",
        "fleet",
    }
)

#: Bump on incompatible payload changes; loaders reject mismatches.
CHECKPOINT_VERSION = 1

#: Payload marker distinguishing fleet checkpoints from arbitrary pickles.
_FORMAT = "repro-fleet-checkpoint"

#: Pinned pickle protocol (stable across the supported CPythons).
_PROTOCOL = 4


def checkpoint_payload(  # repro-lint: schema=CHECKPOINT_FIELDS
    fleet,
    tick: int,
    slices_per_tick: int,
    backend: str,
    chunk_slices: int,
    telemetry_every: int,
    telemetry_per_device: bool,
    uniform_source: str = "auto",
) -> dict:
    """Build a checkpoint payload from explicit run state.

    The shared producer behind :func:`save_checkpoint` (single-process
    controller) and the service daemon's gathered-fleet checkpoints —
    one payload literal, so the two paths cannot drift and a sharded
    daemon checkpoint is byte-identical to a single-process one for
    equal fleet state.  Raises
    :class:`~repro.util.validation.ValidationError` when any device
    cannot be serialized (live callable streams), naming the device.
    """
    for device in fleet:
        if device.stream is not None and not device.stream.checkpointable:
            raise ValidationError(
                f"device {device.device_id!r} is fed by a "
                f"non-checkpointable stream "
                f"({device.stream.describe()}); replace it with a "
                f"trace/synthetic stream to checkpoint this fleet"
            )
    return {
        "format": _FORMAT,
        "version": CHECKPOINT_VERSION,
        "tick": int(tick),
        "slices_per_tick": int(slices_per_tick),
        "backend": str(backend),
        "chunk_slices": int(chunk_slices),
        "uniform_source": str(uniform_source),
        "telemetry_every": int(telemetry_every),
        "telemetry_per_device": bool(telemetry_per_device),
        "fleet": fleet,
    }


#: fsync attempts before giving up (transient EIO on networked
#: filesystems is real; a checkpoint is worth three tries).
_FSYNC_ATTEMPTS = 3


def _fsync_with_retry(fh, path) -> None:
    """fsync ``fh``, retrying transient failures a bounded number of
    times.  The fault point lets chaos plans script the failure."""
    for attempt in range(1, _FSYNC_ATTEMPTS + 1):
        try:
            faults.CHECKPOINT_FSYNC.fire(path=str(path))
            os.fsync(fh.fileno())
            return
        except OSError:
            if attempt == _FSYNC_ATTEMPTS:
                raise
            time.sleep(0.01 * attempt)


def write_checkpoint(path, payload: dict, *, fsync: bool = False) -> None:
    """Serialize a :func:`checkpoint_payload` mapping to ``path``.

    The write is atomic — a temp file in the same directory is
    ``os.replace``\\ d over ``path`` — so a writer killed mid-save can
    never leave a torn checkpoint: ``path`` holds either the previous
    complete checkpoint or the new one.  The file bytes themselves are
    unchanged (a plain protocol-4 pickle).  ``fsync=True`` additionally
    syncs the temp file before the rename so the checkpoint survives
    machine crashes, not just process ones.
    """
    try:
        blob = pickle.dumps(payload, protocol=_PROTOCOL)
    except Exception as exc:
        raise ValidationError(
            f"fleet state is not serializable ({exc}); agents and streams "
            f"must avoid lambdas and open handles to be checkpointable"
        ) from exc
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            if fsync:
                _fsync_with_retry(fh, path)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def save_checkpoint(path, controller, *, fsync: bool = False) -> None:
    """Write ``controller``'s full fleet state to ``path``.

    Raises :class:`~repro.util.validation.ValidationError` when any
    device cannot be serialized (live callable streams, lambda-closure
    agents), naming the offending device.
    """
    write_checkpoint(
        path,
        checkpoint_payload(
            controller.fleet,
            controller.tick,
            controller.slices_per_tick,
            controller.backend,
            controller.chunk_slices,
            controller._telemetry_every,
            controller._telemetry_per_device,
            uniform_source=controller.uniform_source,
        ),
        fsync=fsync,
    )


def load_checkpoint(path) -> dict:
    """Read and validate a checkpoint payload written by
    :func:`save_checkpoint`.

    Returns the payload mapping (``fleet``, ``tick``,
    ``slices_per_tick``, ``backend``, telemetry settings); use
    :meth:`~repro.runtime.controller.FleetController.resume` to turn
    it straight into a running controller.
    """
    path = Path(path)
    if not path.exists():
        raise ValidationError(f"checkpoint file {path} does not exist")
    try:
        payload = pickle.loads(path.read_bytes())
    except Exception as exc:
        raise ValidationError(
            f"checkpoint file {path} is not readable ({exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
        raise ValidationError(
            f"{path} is not a repro fleet checkpoint"
        )
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValidationError(
            f"checkpoint version {version!r} is not supported "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    return payload
