"""Arrival streams: what drives a fleet device's workload.

A device is either *model-driven* — arrivals come from its own SR
Markov chain inside the joint-state kernel — or *stream-driven*:
an :class:`ArrivalStream` hands the controller one integer request
count per slice, and the device replays them (the fleet analogue of
the paper's Section-V trace-driven simulation mode).

Streams are stateful cursors: ``next_counts(n)`` returns the next
``n`` per-slice counts and advances.  All the shipped streams are
picklable with their full cursor/RNG state, so a checkpointed fleet
resumes its workloads deterministically; the one exception is
:class:`CallableStream` (live per-tick callables are the integration
point for real telemetry feeds and cannot be serialized — checkpointing
a fleet containing one raises a clear error).

Shipped implementations:

* :class:`TraceStream` — replay a discretized
  :class:`~repro.traces.trace.Trace` (``TraceStream.load`` reads the
  trace file format directly), cycling or zero-padding at the end;
* :class:`PoissonStream` — memoryless arrivals, one rate per slice;
* :class:`MMPP2Stream` — the slotted two-state Markov-modulated
  process of :func:`repro.traces.synthetic.mmpp2_trace`, generated
  incrementally with persistent hidden state;
* :class:`PeriodicBurstStream` — deterministic bursts
  (:func:`repro.traces.synthetic.periodic_burst_trace`, incremental);
* :class:`CallableStream` — wrap any ``f(start_slice, n_slices)``.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.traces.trace import Trace
from repro.util.validation import ValidationError, check_probability

__all__ = [
    "ArrivalStream",
    "CallableStream",
    "MMPP2Stream",
    "PeriodicBurstStream",
    "PoissonStream",
    "TraceStream",
    "stream_from_spec",
]


class ArrivalStream(abc.ABC):
    """One device's exogenous workload: per-slice request counts."""

    #: Whether checkpointing can serialize this stream (overridden by
    #: :class:`CallableStream`).
    checkpointable: bool = True

    @abc.abstractmethod
    def next_counts(self, n_slices: int) -> np.ndarray:
        """The next ``n_slices`` arrival counts; advances the cursor."""

    def describe(self) -> str:
        """Human-readable one-liner (used in telemetry/spec echoes)."""
        return type(self).__name__

    @staticmethod
    def _check_n(n_slices: int) -> int:
        n_slices = int(n_slices)
        if n_slices <= 0:
            raise ValidationError(f"n_slices must be > 0, got {n_slices}")
        return n_slices


class TraceStream(ArrivalStream):
    """Replay a discretized trace, cycling or zero-padding at the end.

    Parameters
    ----------
    counts:
        Per-slice arrival counts (e.g. ``trace.discretize(tau)``).
    cycle:
        When True (default) the counts repeat forever; when False the
        stream emits zeros once the trace is exhausted.
    """

    def __init__(self, counts, cycle: bool = True):
        arr = np.asarray(counts, dtype=np.int64).reshape(-1)
        if arr.size == 0:
            raise ValidationError("TraceStream needs a non-empty count array")
        if np.any(arr < 0):
            raise ValidationError("arrival counts must be non-negative")
        self._counts = arr
        self._cycle = bool(cycle)
        self._position = 0

    @classmethod
    def from_trace(
        cls, trace: Trace, resolution: float, cycle: bool = True
    ) -> "TraceStream":
        """Discretize ``trace`` at ``resolution`` seconds per slice."""
        return cls(trace.discretize(resolution), cycle=cycle)

    @classmethod
    def load(cls, path, resolution: float, cycle: bool = True) -> "TraceStream":
        """Read a :meth:`Trace.save` file and discretize it."""
        return cls.from_trace(Trace.load(path), resolution, cycle=cycle)

    @property
    def position(self) -> int:
        """Slices consumed so far."""
        return self._position

    @property
    def counts(self) -> np.ndarray:
        """The backing count array (shared — treat as read-only).

        Lets many devices replay one discretized trace without each
        re-reading the file: build one stream, hand its ``counts`` to
        ``TraceStream(counts)`` per device.
        """
        return self._counts

    def rebind_counts(self, counts: np.ndarray) -> None:
        """Swap the backing array for an equal one (cursor unchanged).

        Pickling a fleet across process boundaries forks the shared
        count array into per-shard copies; the daemon rebinds gathered
        streams onto the canonical build-time array so a gathered
        fleet's checkpoint pickles with the same object sharing — and
        therefore the same bytes — as a single-process fleet's.  The
        replacement must be value-equal; this never changes replay.
        """
        arr = np.asarray(counts, dtype=np.int64).reshape(-1)
        if arr.shape != self._counts.shape or not np.array_equal(
            arr, self._counts
        ):
            raise ValidationError(
                "rebind_counts requires a value-equal count array"
            )
        self._counts = arr

    def next_counts(self, n_slices: int) -> np.ndarray:
        n_slices = self._check_n(n_slices)
        size = self._counts.size
        if self._cycle:
            idx = (self._position + np.arange(n_slices)) % size
            out = self._counts[idx]
        else:
            out = np.zeros(n_slices, dtype=np.int64)
            lo = min(self._position, size)
            hi = min(self._position + n_slices, size)
            if hi > lo:
                out[: hi - lo] = self._counts[lo:hi]
        self._position += n_slices
        return out

    def describe(self) -> str:
        mode = "cycle" if self._cycle else "once"
        return f"trace({self._counts.size} slices, {mode})"


class PoissonStream(ArrivalStream):
    """Memoryless arrivals: ``Poisson(rate_per_slice)`` counts."""

    def __init__(self, rate_per_slice: float, rng: np.random.Generator):
        rate = float(rate_per_slice)
        if rate < 0:
            raise ValidationError(f"rate_per_slice must be >= 0, got {rate!r}")
        self._rate = rate
        self._rng = rng

    def next_counts(self, n_slices: int) -> np.ndarray:
        n_slices = self._check_n(n_slices)
        return self._rng.poisson(self._rate, size=n_slices).astype(np.int64)

    def describe(self) -> str:
        return f"poisson(rate={self._rate})"


class MMPP2Stream(ArrivalStream):
    """Slotted two-state Markov-modulated arrivals, generated online.

    The same process as :func:`repro.traces.synthetic.mmpp2_trace`
    (idle/busy hidden chain, busy slices emit one request with
    ``busy_arrival_probability``) but produced incrementally with the
    hidden state carried across calls, so a long-lived fleet device can
    be fed forever without materializing a trace.
    """

    def __init__(
        self,
        p_stay_idle: float,
        p_stay_busy: float,
        rng: np.random.Generator,
        busy_arrival_probability: float = 1.0,
    ):
        self._p_ii = check_probability(p_stay_idle, "p_stay_idle")
        self._p_bb = check_probability(p_stay_busy, "p_stay_busy")
        self._emit = check_probability(
            busy_arrival_probability, "busy_arrival_probability"
        )
        self._rng = rng
        self._busy = False

    def next_counts(self, n_slices: int) -> np.ndarray:
        n_slices = self._check_n(n_slices)
        # One (flip, emit) uniform pair per slice, drawn row-major, so
        # the stream's output is invariant to how calls chunk it — the
        # property tick-size neutrality and checkpoint/resume rely on.
        uniforms = self._rng.random((n_slices, 2))
        out = np.zeros(n_slices, dtype=np.int64)
        busy = self._busy
        for t in range(n_slices):
            stay = self._p_bb if busy else self._p_ii
            if uniforms[t, 0] >= stay:
                busy = not busy
            if busy and uniforms[t, 1] < self._emit:
                out[t] = 1
        self._busy = busy
        return out

    def describe(self) -> str:
        return f"mmpp2(p_ii={self._p_ii}, p_bb={self._p_bb})"


class PeriodicBurstStream(ArrivalStream):
    """Deterministic periodic bursts: ``burst`` on-slices, ``gap`` off."""

    def __init__(self, burst_length: int, gap_length: int):
        burst_length = int(burst_length)
        gap_length = int(gap_length)
        if burst_length <= 0 or gap_length < 0:
            raise ValidationError(
                "burst_length must be > 0 and gap_length >= 0, got "
                f"{burst_length} and {gap_length}"
            )
        self._burst = burst_length
        self._gap = gap_length
        self._position = 0

    def next_counts(self, n_slices: int) -> np.ndarray:
        n_slices = self._check_n(n_slices)
        period = self._burst + self._gap
        phases = (self._position + np.arange(n_slices)) % period
        self._position += n_slices
        return (phases < self._burst).astype(np.int64)

    def describe(self) -> str:
        return f"periodic(burst={self._burst}, gap={self._gap})"


class CallableStream(ArrivalStream):
    """Wrap a live ``f(start_slice, n_slices) -> counts`` callable.

    The escape hatch for real deployments (poll a queue, read a
    telemetry feed).  Not checkpointable: arbitrary callables cannot be
    serialized, so :mod:`repro.runtime.checkpoint` refuses fleets that
    contain one.
    """

    checkpointable = False

    def __init__(self, fn):
        if not callable(fn):
            raise ValidationError("CallableStream needs a callable")
        self._fn = fn
        self._position = 0

    def next_counts(self, n_slices: int) -> np.ndarray:
        n_slices = self._check_n(n_slices)
        out = np.asarray(
            self._fn(self._position, n_slices), dtype=np.int64
        ).reshape(-1)
        if out.size != n_slices:
            raise ValidationError(
                f"stream callable returned {out.size} counts for "
                f"{n_slices} requested slices"
            )
        if np.any(out < 0):
            raise ValidationError("arrival counts must be non-negative")
        self._position += n_slices
        return out

    def describe(self) -> str:
        return "callable"


def stream_from_spec(raw: dict, rng: np.random.Generator) -> ArrivalStream:
    """Build a stream from a fleet-spec ``workload`` entry.

    ``{"type": "trace", "path": ..., "resolution": ..., "cycle": true}``,
    ``{"type": "poisson", "rate_per_slice": ...}``,
    ``{"type": "mmpp2", "p_stay_idle": ..., "p_stay_busy": ...,
    "busy_arrival_probability": ...}`` or
    ``{"type": "periodic", "burst_length": ..., "gap_length": ...}``.
    Stochastic streams draw from ``rng`` (the device's own generator,
    so workloads are reproducible per device).
    """
    if not isinstance(raw, dict) or "type" not in raw:
        raise ValidationError(
            f"workload spec must be a mapping with a 'type', got {raw!r}"
        )
    kind = str(raw["type"])
    if kind == "trace":
        if "path" not in raw or "resolution" not in raw:
            raise ValidationError(
                "trace workload needs 'path' and 'resolution'"
            )
        return TraceStream.load(
            raw["path"], float(raw["resolution"]), cycle=bool(raw.get("cycle", True))
        )
    if kind == "poisson":
        return PoissonStream(float(raw.get("rate_per_slice", 0.1)), rng)
    if kind == "mmpp2":
        return MMPP2Stream(
            float(raw.get("p_stay_idle", 0.95)),
            float(raw.get("p_stay_busy", 0.85)),
            rng,
            busy_arrival_probability=float(
                raw.get("busy_arrival_probability", 1.0)
            ),
        )
    if kind == "periodic":
        return PeriodicBurstStream(
            int(raw.get("burst_length", 5)), int(raw.get("gap_length", 20))
        )
    raise ValidationError(
        f"unknown workload type {kind!r}; use trace/poisson/mmpp2/periodic"
    )
