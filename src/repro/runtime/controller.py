"""The fleet controller: step thousands of devices through time.

:class:`FleetController` advances a registered
:class:`~repro.runtime.fleet.Fleet` tick by tick
(``slices_per_tick`` slices each).  The hot path is *grouped vector
stepping*: devices sharing a ``(system, costs, policy-determinism)``
signature are packed into one batch of the
:mod:`~repro.sim.backends.vector` joint-state kernel — their distinct
policies stacked into a single
:class:`~repro.sim.backends.vector.CompiledPolicyBatch` — so a
thousand stationary devices advance in a handful of fused NumPy calls
per chunk instead of a thousand Python loops.  Devices the kernel
cannot express (stateful heuristics, adaptive agents, stream-driven
workloads) fall back to a resumable per-device loop with the reference
semantics of :class:`~repro.sim.backends.loop.LoopBackend`.

Determinism is per-device, not per-run: each device owns its generator
and the batch draws every lane's uniforms from its own stream through
:class:`_FanInUniforms`, always at the pinned
:data:`FLEET_CHUNK_SLICES` chunk length.  A device therefore consumes
*exactly the same uniforms through the same reduction boundaries* no
matter how it is grouped, what else is in the fleet, or whether the
campaign was checkpoint/resumed — fleet results are bitwise
reproducible from per-device seeds alone.  (One documented exception:
adaptive devices sharing a *warm-starting* policy cache can pick
different tied-optimal vertices depending on cache history — see the
determinism note on :class:`~repro.runtime.policy_cache.PolicyCache`.)
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Observation
from repro.runtime.fleet import Device, Fleet
from repro.runtime.telemetry import snapshot
from repro.sim.backends.base import SimulationTables
from repro.sim.backends.vector import CompiledPolicyBatch, step_lanes
from repro.sim.rng import sample_categorical
from repro.util.validation import ValidationError

__all__ = ["FLEET_CHUNK_SLICES", "FleetController"]

#: Pinned chunk length for fleet batches.  A constant (rather than the
#: kernel's lane-count-scaled uniform budget) keeps each lane's
#: summation tree identical whether the device steps alone or among
#: thousands — the bitwise half of the fleet determinism contract.
#: 256 slices x 4 uniform kinds x 1024 lanes is an 8 MB draw buffer.
FLEET_CHUNK_SLICES = 256

#: Accepted ``backend`` values for the controller.
CONTROLLER_BACKENDS = ("auto", "loop", "vector")


class _FanInUniforms:
    """Duck-typed generator drawing each lane from its own device stream.

    The vector kernel asks one source for ``(chunk, kinds, lanes)``
    uniform blocks; this shim fans the request out so lane ``l``'s
    draws continue device ``l``'s private stream in ``(slice, kind)``
    order — the same order a single-device batch would consume.
    """

    def __init__(self, generators):
        self._generators = list(generators)

    def random(self, shape):
        chunk, n_kinds, n_lanes = shape
        if n_lanes != len(self._generators):
            raise ValidationError(
                f"fan-in shim built for {len(self._generators)} lanes, "
                f"kernel asked for {n_lanes}"
            )
        out = np.empty(shape)
        for lane, generator in enumerate(self._generators):
            out[:, :, lane] = generator.random((chunk, n_kinds))
        return out


class _VectorGroup:
    """One compiled batch: devices sharing a group signature."""

    def __init__(self, devices: list[Device]):
        self.devices = devices
        first = devices[0]
        self.tables = first.compile_tables()
        # Distinct policies within the group are stacked once; lanes
        # index into the stack (1024 identical devices compile one row).
        from repro.runtime.policy_cache import policy_signature

        unique: dict[str, int] = {}
        policies = []
        policy_of_lane = []
        for device in devices:
            policy = device.agent.stationary_policy(device.system)
            signature = policy_signature(policy)
            if signature not in unique:
                unique[signature] = len(policies)
                policies.append(policy)
            policy_of_lane.append(unique[signature])
        self.compiled = CompiledPolicyBatch.compile(first.system, policies)
        self.policy_of_lane = np.asarray(policy_of_lane, dtype=np.int64)
        self.n_policies = len(policies)

    def step(self, n_slices: int) -> None:
        """Advance every device in the group by ``n_slices`` slices."""
        devices = self.devices
        starts = (
            np.asarray([d.state[0] for d in devices], dtype=np.int64),
            np.asarray([d.state[1] for d in devices], dtype=np.int64),
            np.asarray([d.state[2] for d in devices], dtype=np.int64),
        )
        lengths = np.full(len(devices), int(n_slices), dtype=np.int64)
        acc = step_lanes(
            self.tables,
            self.compiled,
            self.policy_of_lane,
            lengths,
            starts,
            _FanInUniforms(d.rng for d in devices),
            chunk_slices=FLEET_CHUNK_SLICES,
        )
        for lane, device in enumerate(devices):
            device.totals += acc.totals[:, lane]
            device.command_counts += acc.command_counts[lane]
            device.provider_occupancy += acc.provider_occupancy[lane]
            device.arrivals += int(acc.arrivals[lane])
            device.serviced += int(acc.serviced[lane])
            device.lost += int(acc.lost[lane])
            device.loss_event_slices += int(acc.loss_events[lane])
            device.state = tuple(int(v) for v in acc.final_state[lane])
            device.slices += int(n_slices)


def _step_device_loop(
    device: Device, tables: SimulationTables, n_slices: int
) -> None:
    """Resumable reference loop: one device, ``n_slices`` slices.

    Model-driven devices reproduce
    :class:`~repro.sim.backends.loop.LoopBackend` semantics slice for
    slice (agent draw if any, SP draw, SR draw, service Bernoulli only
    when work is pending) but continue from the device's persisted
    state instead of resetting.  Stream-driven devices replace the SR
    draw with the stream's arrival counts and track the observed SR
    state (the fleet rendition of paper Section V's trace-driven mode).
    """
    s, r, q = device.state
    agent, rng = device.agent, device.rng
    metric_stack = tables.metric_stack
    sp_cum, sr_cum = tables.sp_cum, tables.sr_cum
    rates = tables.rates
    arrivals_of, issuing = tables.arrivals_of, tables.issuing
    capacity, n_sr, n_sq = tables.capacity, tables.n_sr, tables.n_sq
    n_commands = tables.n_commands
    counts = (
        device.stream.next_counts(n_slices)
        if device.stream is not None
        else None
    )
    prev_arrivals = device.prev_arrivals
    base_slice = device.slices

    totals = np.zeros(len(device.metric_names))
    for t in range(int(n_slices)):
        observation = Observation(
            provider_state=s,
            requester_state=r,
            queue_length=q,
            arrivals=prev_arrivals,
            slice_index=base_slice + t,
        )
        a = int(agent.select_command(observation, rng))
        if not 0 <= a < n_commands:
            raise ValidationError(
                f"device {device.device_id!r}: agent returned command {a}, "
                f"valid range is [0, {n_commands})"
            )

        joint = (s * n_sr + r) * n_sq + q
        totals += metric_stack[:, joint, a]
        device.command_counts[a] += 1
        device.provider_occupancy[s] += 1
        if counts is None:
            at_risk = issuing[r] and q == capacity
        else:
            at_risk = prev_arrivals > 0 and q == capacity
        if at_risk:
            device.loss_event_slices += 1

        s_next = sample_categorical(sp_cum[a, s], rng)
        if counts is None:
            r_next = sample_categorical(sr_cum[r], rng)
            z = int(arrivals_of[r_next])
        else:
            z = int(counts[t])
            r_next = device.tracker.update(z)
        pending = q + z
        served = 0
        if pending > 0 and rng.random() < rates[s, a]:
            served = 1
        q_next = min(pending - served, capacity)

        device.arrivals += z
        device.serviced += served
        device.lost += max(pending - served - capacity, 0)
        prev_arrivals = z
        s, r, q = s_next, r_next, q_next

    device.totals += totals
    device.state = (s, r, q)
    device.prev_arrivals = prev_arrivals
    device.slices += int(n_slices)


class FleetController:
    """Long-lived online controller over a device fleet.

    Parameters
    ----------
    fleet:
        The registered devices.  Membership may change between ticks
        (``add_device``/``remove_device``); the controller regroups and
        recompiles lazily.
    slices_per_tick:
        Slices every device advances per :meth:`step_tick`.
    backend:
        ``"auto"`` (group vector-eligible devices, loop the rest),
        ``"loop"`` (everything through the per-device loop — the
        benchmark baseline), or ``"vector"`` (require every device to
        be vector-eligible).
    telemetry:
        Optional sink with a ``record(dict)`` method
        (:class:`~repro.runtime.telemetry.MemoryTelemetry` /
        :class:`~repro.runtime.telemetry.JsonLinesTelemetry`).
    telemetry_every:
        Ticks between snapshots.
    telemetry_per_device:
        Include per-device sub-records in each snapshot.

    Examples
    --------
    >>> from repro.policies import StationaryPolicyAgent, eager_markov_policy
    >>> from repro.runtime import Fleet, FleetController, device_rng
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> policy = eager_markov_policy(bundle.system, "s_on", "s_off")
    >>> fleet = Fleet()
    >>> for i in range(4):
    ...     _ = fleet.add_device(
    ...         f"dev-{i}", bundle.system, bundle.costs,
    ...         StationaryPolicyAgent(bundle.system, policy),
    ...         rng=device_rng(0, i),
    ...     )
    >>> controller = FleetController(fleet, slices_per_tick=100)
    >>> controller.run(3)
    >>> controller.tick, fleet.total_slices
    (3, 1200)
    """

    def __init__(
        self,
        fleet: Fleet,
        slices_per_tick: int = 1000,
        backend: str = "auto",
        telemetry=None,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
    ):
        slices_per_tick = int(slices_per_tick)
        if slices_per_tick <= 0:
            raise ValidationError(
                f"slices_per_tick must be > 0, got {slices_per_tick}"
            )
        if backend not in CONTROLLER_BACKENDS:
            raise ValidationError(
                f"unknown controller backend {backend!r}; "
                f"choose from {CONTROLLER_BACKENDS}"
            )
        telemetry_every = int(telemetry_every)
        if telemetry_every <= 0:
            raise ValidationError(
                f"telemetry_every must be > 0, got {telemetry_every}"
            )
        self._fleet = fleet
        self._slices_per_tick = slices_per_tick
        self._backend = backend
        self._telemetry = telemetry
        self._telemetry_every = telemetry_every
        self._telemetry_per_device = bool(telemetry_per_device)
        self._tick = 0
        # Compiled-group caches, invalidated on fleet membership changes.
        self._groups_version = -1
        self._vector_groups: list[_VectorGroup] = []
        self._loop_devices: list[Device] = []
        self._loop_tables: dict[tuple, SimulationTables] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        """The managed fleet."""
        return self._fleet

    @property
    def tick(self) -> int:
        """Ticks completed so far."""
        return self._tick

    @property
    def slices_per_tick(self) -> int:
        """Slices every device advances per tick."""
        return self._slices_per_tick

    @property
    def backend(self) -> str:
        """The stepping mode (``auto``/``loop``/``vector``)."""
        return self._backend

    def grouping(self) -> dict:
        """How the current fleet splits into batches (for reporting)."""
        self._refresh_groups()
        return {
            "vector_groups": [
                {
                    "devices": len(group.devices),
                    "distinct_policies": group.n_policies,
                }
                for group in self._vector_groups
            ],
            "loop_devices": len(self._loop_devices),
        }

    def snapshot(self, per_device: bool | None = None) -> dict:
        """A telemetry snapshot of the current fleet state."""
        if per_device is None:
            per_device = self._telemetry_per_device
        return snapshot(self._fleet, self._tick, per_device=per_device)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _refresh_groups(self) -> None:
        if self._groups_version == self._fleet.version:
            return
        from repro.runtime.policy_cache import (
            costs_signature,
            system_signature,
        )

        grouped: dict[tuple, list[Device]] = {}
        loop_devices: list[Device] = []
        for device in self._fleet:
            eligible = device.vector_eligible and self._backend != "loop"
            if self._backend == "vector" and not device.vector_eligible:
                raise ValidationError(
                    f"backend 'vector' requires every device to be "
                    f"vector-eligible; {device.device_id!r} "
                    f"({device.agent.describe()}, "
                    f"{'stream' if device.stream else 'model'}-driven) is not"
                )
            if eligible:
                grouped.setdefault(device.group_key(), []).append(device)
            else:
                loop_devices.append(device)
        self._vector_groups = [
            _VectorGroup(devices) for devices in grouped.values()
        ]
        self._loop_devices = loop_devices
        self._loop_tables = {
            (system_signature(d.system), costs_signature(d.costs)): None
            for d in loop_devices
        }
        for device in loop_devices:
            key = (
                system_signature(device.system),
                costs_signature(device.costs),
            )
            if self._loop_tables[key] is None:
                self._loop_tables[key] = device.compile_tables()
            # Stash the key so the tick loop avoids re-hashing.
            device._tables_key = key
        self._groups_version = self._fleet.version

    def step_tick(self) -> dict | None:
        """Advance every device by one tick; maybe emit telemetry.

        Returns the telemetry record when this tick emitted one (the
        sink, if any, receives it too), else ``None``.
        """
        if len(self._fleet) == 0:
            raise ValidationError("cannot step an empty fleet")
        self._refresh_groups()
        for group in self._vector_groups:
            group.step(self._slices_per_tick)
        for device in self._loop_devices:
            tables = self._loop_tables[device._tables_key]
            _step_device_loop(device, tables, self._slices_per_tick)
        self._tick += 1
        if self._tick % self._telemetry_every == 0:
            record = self.snapshot()
            if self._telemetry is not None:
                self._telemetry.record(record)
            return record
        return None

    def run(self, n_ticks: int) -> None:
        """Run ``n_ticks`` ticks back to back."""
        n_ticks = int(n_ticks)
        if n_ticks < 0:
            raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
        for _ in range(n_ticks):
            self.step_tick()

    # ------------------------------------------------------------------
    # checkpointing (delegates to repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Persist the full fleet state (RNG streams included)."""
        from repro.runtime.checkpoint import save_checkpoint

        save_checkpoint(path, self)

    @classmethod
    def resume(
        cls,
        path,
        telemetry=None,
        telemetry_every: int | None = None,
        telemetry_per_device: bool | None = None,
        backend: str | None = None,
    ) -> "FleetController":
        """Rebuild a controller from a checkpoint and continue.

        Telemetry sinks are not part of the checkpoint (they hold open
        file handles); pass a fresh one.  ``backend`` overrides the
        saved stepping mode when given — safe, because per-device
        streams make results grouping-invariant.
        """
        from repro.runtime.checkpoint import load_checkpoint

        payload = load_checkpoint(path)
        controller = cls(
            payload["fleet"],
            slices_per_tick=payload["slices_per_tick"],
            backend=backend or payload["backend"],
            telemetry=telemetry,
            telemetry_every=(
                payload["telemetry_every"]
                if telemetry_every is None
                else telemetry_every
            ),
            telemetry_per_device=(
                payload["telemetry_per_device"]
                if telemetry_per_device is None
                else telemetry_per_device
            ),
        )
        controller._tick = payload["tick"]
        return controller
