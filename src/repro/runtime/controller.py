"""The fleet controller: step thousands of devices through time.

:class:`FleetController` advances a registered
:class:`~repro.runtime.fleet.Fleet` tick by tick
(``slices_per_tick`` slices each).  The hot path is *grouped batch
stepping*: devices sharing a ``(system, costs, policy-determinism)``
signature are packed into one batch of the joint-state chunk kernel —
their distinct policies stacked into a single
:class:`~repro.sim.backends.vector.CompiledPolicyBatch` — so a
thousand stationary devices advance in a handful of fused calls per
chunk instead of a thousand Python loops.  The kernel itself is the
resolved batch tier: :mod:`~repro.sim.backends.vector` or, when numba
is installed, the byte-identical compiled stepper of
:mod:`~repro.sim.backends.jit` (what lifts the grouped path to
100k+-device ticks; groups that large are sharded into
:data:`FLEET_LANE_BLOCK`-lane blocks to bound buffer sizes).  Devices
the kernel cannot express (stateful heuristics, adaptive agents,
stream-driven workloads) fall back to a resumable per-device loop with
the reference semantics of :class:`~repro.sim.backends.loop.LoopBackend`.

Determinism is per-device, not per-run: each device owns its generator
and the batch draws every lane's uniforms from its own stream through
a :class:`~repro.sim.rng.UniformSource` — the serial
:class:`~repro.sim.rng.FanInSource`, or (``uniform_source="auto"``,
the default) the byte-identical vectorized
:class:`~repro.sim.rng_batched.BatchedPCG64Source` whenever every
stream in a lane block is a clean PCG64 — always at a pinned chunk
length (:data:`FLEET_CHUNK_SLICES` unless overridden — the pin is part
of the reproducibility contract and is checkpointed).  A device therefore consumes
*exactly the same uniforms through the same reduction boundaries* no
matter how it is grouped, what else is in the fleet, or whether the
campaign was checkpoint/resumed — fleet results are bitwise
reproducible from per-device seeds alone.  (One documented exception:
adaptive devices sharing a *warm-starting* policy cache can pick
different tied-optimal vertices depending on cache history — see the
determinism note on :class:`~repro.runtime.policy_cache.PolicyCache`.)
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from repro.policies.base import Observation
from repro.runtime.fleet import Device, Fleet
from repro.runtime.telemetry import snapshot
from repro.sim.backends import get_backend, preferred_batch_backend
from repro.sim.backends.base import SimulationTables
from repro.sim.backends.vector import CompiledPolicyBatch
from repro.sim.rng import FanInSource, sample_categorical
from repro.util.validation import ValidationError

__all__ = [
    "FLEET_CHUNK_SLICES",
    "FLEET_LANE_BLOCK",
    "UNIFORM_SOURCES",
    "FleetController",
    "resolve_backend_name",
]

#: Default pinned chunk length for fleet batches.  A constant (rather
#: than the kernel's lane-count-scaled uniform budget) keeps each
#: lane's summation tree identical whether the device steps alone or
#: among thousands — the bitwise half of the fleet determinism
#: contract.  256 slices x 4 uniform kinds x 1024 lanes is an 8 MB
#: draw buffer.
FLEET_CHUNK_SLICES = 256

#: Lanes stepped per kernel call.  Groups larger than this are sharded
#: into consecutive lane blocks so a 100k-device group draws bounded
#: uniform buffers (256 x 4 x 16384 is ~134 MB) instead of one
#: fleet-sized allocation.  Bitwise neutral: every lane draws from its
#: own device stream through the fan-in shim and chunk boundaries are
#: per-lane, so block boundaries change *which call* steps a lane,
#: never what it consumes or how its sums associate.
FLEET_LANE_BLOCK = 16_384

#: Accepted ``backend`` values for the controller.
CONTROLLER_BACKENDS = ("auto", "loop", "vector", "jit")

#: Accepted ``uniform_source`` values for the controller.  ``"auto"``
#: picks the vectorized batched producer for any lane block whose
#: streams it can carry byte-identically and falls back to the serial
#: fan-in otherwise; ``"fanin"``/``"batched"`` force one producer
#: (``"batched"`` fails loudly rather than fall back).
UNIFORM_SOURCES = ("auto", "fanin", "batched")


def resolve_backend_name(backend: str) -> str:
    """What :attr:`FleetController.resolved_backend` would report for
    ``backend`` on this machine, without building a controller.

    The service daemon stamps telemetry records it aggregates from
    shard workers; resolving centrally (instead of asking a worker)
    keeps the stamp available even while shards are restarting.
    """
    if backend not in CONTROLLER_BACKENDS:
        raise ValidationError(
            f"unknown controller backend {backend!r}; "
            f"choose from {CONTROLLER_BACKENDS}"
        )
    if backend == "loop":
        return "loop"
    if backend == "auto":
        return preferred_batch_backend().name
    return get_backend(backend).name


class _FanInUniforms(FanInSource):
    """Deprecated alias of :class:`~repro.sim.rng.FanInSource`.

    The fan-in shim graduated into the first-class
    :class:`~repro.sim.rng.UniformSource` API; this name survives one
    release for code that constructed the private shim directly.
    """

    def __init__(self, generators):
        warnings.warn(
            "_FanInUniforms is deprecated; use repro.sim.rng.FanInSource",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(generators)


def _block_uniform_source(
    generators, uniform_source: str, n_kinds: int, max_chunk: int
):
    """Build one lane block's :class:`~repro.sim.rng.UniformSource`.

    ``"fanin"`` always gets the serial :class:`FanInSource`.
    ``"batched"`` requires the vectorized path: it raises (naming the
    offending lane) when this numpy build failed the byte-identity
    self-check or a stream is not a clean PCG64.  ``"auto"`` prefers
    batched exactly when it is guaranteed byte-identical for every
    stream in the block, else silently falls back to the serial fan-in
    — either way the block consumes identical uniforms, so the knob
    never changes results, only speed.
    """
    from repro.sim import rng_batched

    generators = list(generators)
    if uniform_source == "fanin":
        return FanInSource(generators, n_kinds=n_kinds, max_chunk=max_chunk)
    if uniform_source == "batched":
        if not rng_batched.batched_available():
            raise ValidationError(
                f"uniform_source 'batched' unavailable: "
                f"{rng_batched.batched_unavailable_reason()}"
            )
        return rng_batched.BatchedPCG64Source(
            generators, n_kinds=n_kinds, max_chunk=max_chunk
        )
    if rng_batched.batched_available() and all(
        rng_batched.supports_generator(generator) for generator in generators
    ):
        return rng_batched.BatchedPCG64Source(
            generators, n_kinds=n_kinds, max_chunk=max_chunk
        )
    return FanInSource(generators, n_kinds=n_kinds, max_chunk=max_chunk)


class _VectorGroup:
    """One compiled batch: devices sharing a group signature.

    ``step_lanes`` is the resolved batch tier's bound stepper
    (``VectorBackend.step_lanes`` or ``JitBackend.step_lanes``) — the
    two are byte-identical, so the choice affects speed only.
    """

    def __init__(
        self,
        devices: list[Device],
        step_lanes,
        chunk_slices: int,
        uniform_source: str = "auto",
    ):
        self.devices = devices
        self._step_lanes = step_lanes
        self._chunk_slices = int(chunk_slices)
        self._uniform_source = uniform_source
        # One UniformSource per lane block, built lazily on the first
        # step and reused while the group cache lives (the controller
        # rebuilds groups — and therefore sources — whenever fleet
        # membership changes).  Caching is what makes the batched
        # producer pay: its stacked state imports once, then advances
        # as array math with the backing generators re-synced after
        # every step.  Device streams are runtime-owned between ticks
        # (nothing else draws from a grouped device's generator), so a
        # cached source never goes stale.
        self._sources: dict[int, object] = {}
        first = devices[0]
        self.tables = first.compile_tables()
        # Distinct policies within the group are stacked once; lanes
        # index into the stack (1024 identical devices compile one row).
        from repro.runtime.policy_cache import policy_signature

        unique: dict[str, int] = {}
        policies = []
        policy_of_lane = []
        for device in devices:
            policy = device.agent.stationary_policy(device.system)
            signature = policy_signature(policy)
            if signature not in unique:
                unique[signature] = len(policies)
                policies.append(policy)
            policy_of_lane.append(unique[signature])
        self.compiled = CompiledPolicyBatch.compile(first.system, policies)
        self.policy_of_lane = np.asarray(policy_of_lane, dtype=np.int64)
        self.n_policies = len(policies)

    def step(self, n_slices: int) -> None:
        """Advance every device in the group by ``n_slices`` slices."""
        # The kernel draws (chunk, kinds, lanes) blocks with kinds
        # fixed by policy determinism; declaring the geometry lets the
        # source reject a desynchronizing request instead of serving it.
        n_kinds = 3 if self.compiled.fully_deterministic else 4
        for base in range(0, len(self.devices), FLEET_LANE_BLOCK):
            block = self.devices[base : base + FLEET_LANE_BLOCK]
            source = self._sources.get(base)
            if source is None:
                source = _block_uniform_source(
                    (d.rng for d in block),
                    self._uniform_source,
                    n_kinds,
                    self._chunk_slices,
                )
                self._sources[base] = source
            starts = (
                np.asarray([d.state[0] for d in block], dtype=np.int64),
                np.asarray([d.state[1] for d in block], dtype=np.int64),
                np.asarray([d.state[2] for d in block], dtype=np.int64),
            )
            lengths = np.full(len(block), int(n_slices), dtype=np.int64)
            try:
                acc = self._step_lanes(
                    self.tables,
                    self.compiled,
                    self.policy_of_lane[base : base + len(block)],
                    lengths,
                    starts,
                    source,
                    chunk_slices=self._chunk_slices,
                )
            finally:
                # Batched sources serve draws from stacked state; the
                # sync advances the backing generators to match so the
                # devices' streams stay canonical even if the kernel
                # raised mid-chunk.
                sync = getattr(source, "sync", None)
                if sync is not None:
                    sync()
            for lane, device in enumerate(block):
                device.totals += acc.totals[:, lane]
                device.command_counts += acc.command_counts[lane]
                device.provider_occupancy += acc.provider_occupancy[lane]
                device.arrivals += int(acc.arrivals[lane])
                device.serviced += int(acc.serviced[lane])
                device.lost += int(acc.lost[lane])
                device.loss_event_slices += int(acc.loss_events[lane])
                device.state = tuple(int(v) for v in acc.final_state[lane])
                device.slices += int(n_slices)


def _step_device_loop(
    device: Device, tables: SimulationTables, n_slices: int
) -> None:
    """Resumable reference loop: one device, ``n_slices`` slices.

    Model-driven devices reproduce
    :class:`~repro.sim.backends.loop.LoopBackend` semantics slice for
    slice (agent draw if any, SP draw, SR draw, service Bernoulli only
    when work is pending) but continue from the device's persisted
    state instead of resetting.  Stream-driven devices replace the SR
    draw with the stream's arrival counts and track the observed SR
    state (the fleet rendition of paper Section V's trace-driven mode).
    """
    s, r, q = device.state
    agent, rng = device.agent, device.rng
    metric_stack = tables.metric_stack
    sp_cum, sr_cum = tables.sp_cum, tables.sr_cum
    rates = tables.rates
    arrivals_of, issuing = tables.arrivals_of, tables.issuing
    capacity, n_sr, n_sq = tables.capacity, tables.n_sr, tables.n_sq
    n_commands = tables.n_commands
    counts = (
        device.stream.next_counts(n_slices)
        if device.stream is not None
        else None
    )
    prev_arrivals = device.prev_arrivals
    base_slice = device.slices

    totals = np.zeros(len(device.metric_names))
    for t in range(int(n_slices)):
        observation = Observation(
            provider_state=s,
            requester_state=r,
            queue_length=q,
            arrivals=prev_arrivals,
            slice_index=base_slice + t,
        )
        a = int(agent.select_command(observation, rng))
        if not 0 <= a < n_commands:
            raise ValidationError(
                f"device {device.device_id!r}: agent returned command {a}, "
                f"valid range is [0, {n_commands})"
            )

        joint = (s * n_sr + r) * n_sq + q
        totals += metric_stack[:, joint, a]
        device.command_counts[a] += 1
        device.provider_occupancy[s] += 1
        if counts is None:
            at_risk = issuing[r] and q == capacity
        else:
            at_risk = prev_arrivals > 0 and q == capacity
        if at_risk:
            device.loss_event_slices += 1

        s_next = sample_categorical(sp_cum[a, s], rng)
        if counts is None:
            r_next = sample_categorical(sr_cum[r], rng)
            z = int(arrivals_of[r_next])
        else:
            z = int(counts[t])
            r_next = device.tracker.update(z)
        pending = q + z
        served = 0
        if pending > 0 and rng.random() < rates[s, a]:
            served = 1
        q_next = min(pending - served, capacity)

        device.arrivals += z
        device.serviced += served
        device.lost += max(pending - served - capacity, 0)
        prev_arrivals = z
        s, r, q = s_next, r_next, q_next

    device.totals += totals
    device.state = (s, r, q)
    device.prev_arrivals = prev_arrivals
    device.slices += int(n_slices)


class FleetController:
    """Long-lived online controller over a device fleet.

    Parameters
    ----------
    fleet:
        The registered devices.  Membership may change between ticks
        (``add_device``/``remove_device``); the controller regroups and
        recompiles lazily.
    slices_per_tick:
        Slices every device advances per :meth:`step_tick`.
    backend:
        ``"auto"`` (group vector-eligible devices through the
        preferred batch tier — jit when numba imports, else vector —
        and loop the rest), ``"loop"`` (everything through the
        per-device loop — the benchmark baseline), ``"vector"``, or
        ``"jit"`` (require every device to be vector-eligible;
        ``"jit"`` additionally requires numba and fails with an
        actionable message without it).  Vector and jit results are
        byte-identical.
    chunk_slices:
        Pinned chunk length for the grouped batches (default
        :data:`FLEET_CHUNK_SLICES`).  Devices stepped under *the same
        pin* are bitwise reproducible regardless of grouping; changing
        the pin regroups each lane's float partial sums, so totals are
        only guaranteed to match across runs that share the value.
    uniform_source:
        How grouped batches produce their per-lane uniform blocks:
        ``"auto"`` (default — the vectorized
        :class:`~repro.sim.rng_batched.BatchedPCG64Source` for lane
        blocks whose streams are all clean PCG64, serial
        :class:`~repro.sim.rng.FanInSource` otherwise), ``"fanin"``
        (always serial), or ``"batched"`` (require the vectorized
        producer; fails with an actionable message when a stream or
        this numpy build cannot support it).  Byte-identical by
        construction — the knob affects speed only — and recorded in
        telemetry snapshots and checkpoints.
    record_timing:
        Stamp each emitted telemetry record with per-tick wall-clock
        (``timing``: tick/step/solve seconds).  Opt-in because wall
        times are *not* a pure function of fleet state — enabling it
        forfeits byte-identical telemetry across machines and resumed
        runs (the determinism suite's contract).
    policy_cache:
        The :class:`~repro.runtime.policy_cache.PolicyCache` adaptive
        devices solve through, if any — lets ``record_timing``
        attribute a tick's wall-clock to stepping vs LP solving.
    telemetry:
        Optional sink with a ``record(dict)`` method
        (:class:`~repro.runtime.telemetry.MemoryTelemetry` /
        :class:`~repro.runtime.telemetry.JsonLinesTelemetry`).
    telemetry_every:
        Ticks between snapshots.
    telemetry_per_device:
        Include per-device sub-records in each snapshot.
    initial_tick:
        Tick counter to start from (default 0).  :meth:`resume` and the
        service shard workers use it so a rebuilt controller's tick —
        and therefore its telemetry cadence — continues seamlessly.

    Examples
    --------
    >>> from repro.policies import StationaryPolicyAgent, eager_markov_policy
    >>> from repro.runtime import Fleet, FleetController, device_rng
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> policy = eager_markov_policy(bundle.system, "s_on", "s_off")
    >>> fleet = Fleet()
    >>> for i in range(4):
    ...     _ = fleet.add_device(
    ...         f"dev-{i}", bundle.system, bundle.costs,
    ...         StationaryPolicyAgent(bundle.system, policy),
    ...         rng=device_rng(0, i),
    ...     )
    >>> controller = FleetController(fleet, slices_per_tick=100)
    >>> controller.run(3)
    >>> controller.tick, fleet.total_slices
    (3, 1200)
    """

    def __init__(
        self,
        fleet: Fleet,
        slices_per_tick: int = 1000,
        backend: str = "auto",
        telemetry=None,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
        chunk_slices: int | None = None,
        uniform_source: str = "auto",
        record_timing: bool = False,
        policy_cache=None,
        initial_tick: int = 0,
    ):
        slices_per_tick = int(slices_per_tick)
        if slices_per_tick <= 0:
            raise ValidationError(
                f"slices_per_tick must be > 0, got {slices_per_tick}"
            )
        if backend not in CONTROLLER_BACKENDS:
            raise ValidationError(
                f"unknown controller backend {backend!r}; "
                f"choose from {CONTROLLER_BACKENDS}"
            )
        telemetry_every = int(telemetry_every)
        if telemetry_every <= 0:
            raise ValidationError(
                f"telemetry_every must be > 0, got {telemetry_every}"
            )
        if chunk_slices is None:
            chunk_slices = FLEET_CHUNK_SLICES
        chunk_slices = int(chunk_slices)
        if chunk_slices <= 0:
            raise ValidationError(
                f"chunk_slices must be > 0, got {chunk_slices}"
            )
        if uniform_source not in UNIFORM_SOURCES:
            raise ValidationError(
                f"unknown uniform_source {uniform_source!r}; "
                f"choose from {UNIFORM_SOURCES}"
            )
        if uniform_source == "batched":
            # Fail at construction, not on the first tick: an explicit
            # "batched" on an unsupported numpy build is a config error.
            from repro.sim import rng_batched

            if not rng_batched.batched_available():
                raise ValidationError(
                    f"uniform_source 'batched' unavailable: "
                    f"{rng_batched.batched_unavailable_reason()}"
                )
        initial_tick = int(initial_tick)
        if initial_tick < 0:
            raise ValidationError(
                f"initial_tick must be >= 0, got {initial_tick}"
            )
        self._fleet = fleet
        self._slices_per_tick = slices_per_tick
        self._backend = backend
        # Resolve the batch tier up front: a "jit" request on a machine
        # without numba should fail at construction with the actionable
        # registry message, not on the first tick.
        if backend == "loop":
            self._batch_backend = None
        elif backend == "auto":
            self._batch_backend = preferred_batch_backend()
        else:
            self._batch_backend = get_backend(backend)
        self._chunk_slices = chunk_slices
        self._uniform_source = uniform_source
        self._record_timing = bool(record_timing)
        self._policy_cache = policy_cache
        self._last_timing: dict | None = None
        self._telemetry = telemetry
        self._telemetry_every = telemetry_every
        self._telemetry_per_device = bool(telemetry_per_device)
        self._tick = initial_tick
        # Compiled-group caches, invalidated on fleet membership changes.
        self._groups_version = -1
        self._vector_groups: list[_VectorGroup] = []
        self._loop_devices: list[Device] = []
        self._loop_tables: dict[str, SimulationTables] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        """The managed fleet."""
        return self._fleet

    @property
    def tick(self) -> int:
        """Ticks completed so far."""
        return self._tick

    @property
    def slices_per_tick(self) -> int:
        """Slices every device advances per tick."""
        return self._slices_per_tick

    @property
    def backend(self) -> str:
        """The requested stepping mode (``auto``/``loop``/``vector``/``jit``)."""
        return self._backend

    @property
    def resolved_backend(self) -> str:
        """The batch tier the grouped hot path actually runs on.

        ``"loop"`` when the controller loops everything, else the
        resolved batch backend's registry name (``"vector"`` or
        ``"jit"`` — what ``"auto"`` picked).  Stamped on every
        telemetry snapshot so regressions can be attributed.
        """
        if self._batch_backend is None:
            return "loop"
        return self._batch_backend.name

    @property
    def chunk_slices(self) -> int:
        """The pinned chunk length grouped batches step with."""
        return self._chunk_slices

    @property
    def uniform_source(self) -> str:
        """The requested uniform producer (``auto``/``fanin``/``batched``).

        The *requested* knob, not a per-block resolution — ``"auto"``
        can pick differently per lane block (a mixed fleet may batch
        one group and fan in another), so the stamp records the
        configuration, which is a pure function of the run's inputs
        and therefore safe for byte-identical telemetry.
        """
        return self._uniform_source

    @property
    def last_timing(self) -> dict | None:
        """Wall-clock of the most recent tick (None before any tick or
        when ``record_timing`` is off): ``tick_seconds`` total,
        ``step_seconds`` stepping, ``solve_seconds`` LP time the policy
        cache attributed during the tick."""
        return self._last_timing

    def grouping(self) -> dict:
        """How the current fleet splits into batches (for reporting)."""
        self._refresh_groups()
        return {
            "vector_groups": [
                {
                    "devices": len(group.devices),
                    "distinct_policies": group.n_policies,
                }
                for group in self._vector_groups
            ],
            "loop_devices": len(self._loop_devices),
        }

    def snapshot(  # repro-lint: schema=repro.runtime.telemetry:SNAPSHOT_FIELDS
        self, per_device: bool | None = None
    ) -> dict:
        """A telemetry snapshot of the current fleet state.

        Stamped with :attr:`resolved_backend` — a pure function of the
        controller's configuration and environment, so the snapshot
        stays byte-identical across checkpoint/resume on one machine.
        """
        if per_device is None:
            per_device = self._telemetry_per_device
        record = snapshot(self._fleet, self._tick, per_device=per_device)
        record["backend"] = self.resolved_backend
        record["uniform_source"] = self._uniform_source
        return record

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def _refresh_groups(self) -> None:
        if self._groups_version == self._fleet.version:
            return
        from repro.runtime.policy_cache import (
            costs_signature,
            system_signature,
        )

        grouped: dict[tuple, list[Device]] = {}
        loop_devices: list[Device] = []
        for device in self._fleet:
            eligible = device.vector_eligible and self._backend != "loop"
            if self._backend == "vector" and not device.vector_eligible:
                raise ValidationError(
                    f"backend 'vector' requires every device to be "
                    f"vector-eligible; {device.device_id!r} "
                    f"({device.agent.describe()}, "
                    f"{'stream' if device.stream else 'model'}-driven) is not"
                )
            if eligible:
                grouped.setdefault(device.group_key(), []).append(device)
            else:
                loop_devices.append(device)
        self._vector_groups = [
            _VectorGroup(
                devices,
                self._batch_backend.step_lanes,
                self._chunk_slices,
                self._uniform_source,
            )
            for devices in grouped.values()
        ]
        self._loop_devices = loop_devices
        # Tables are cached per (system, costs) content and mapped by
        # device id — never stashed on the Device record, which must
        # stay free of incidental attributes so checkpoints pickle the
        # same bytes however the fleet was stepped (or sharded).
        compiled: dict[tuple, SimulationTables] = {}
        self._loop_tables = {}
        for device in loop_devices:
            key = (
                system_signature(device.system),
                costs_signature(device.costs),
            )
            if key not in compiled:
                compiled[key] = device.compile_tables()
            self._loop_tables[device.device_id] = compiled[key]
        self._groups_version = self._fleet.version

    def step_tick(  # repro-lint: schema=repro.runtime.telemetry:SNAPSHOT_FIELDS
        self,
    ) -> dict | None:
        """Advance every device by one tick; maybe emit telemetry.

        Returns the telemetry record when this tick emitted one (the
        sink, if any, receives it too), else ``None``.
        """
        if len(self._fleet) == 0:
            raise ValidationError("cannot step an empty fleet")
        self._refresh_groups()
        timing = self._record_timing
        if timing:
            solve_before = (
                self._policy_cache.stats.solve_seconds
                if self._policy_cache is not None
                else 0.0
            )
            tick_start = time.perf_counter()
        for group in self._vector_groups:
            group.step(self._slices_per_tick)
        for device in self._loop_devices:
            tables = self._loop_tables[device.device_id]
            _step_device_loop(device, tables, self._slices_per_tick)
        if timing:
            tick_seconds = time.perf_counter() - tick_start
            solve_seconds = (
                self._policy_cache.stats.solve_seconds - solve_before
                if self._policy_cache is not None
                else 0.0
            )
            # Adaptive-device solves run *inside* the stepping loop, so
            # the split subtracts them back out of the step share.
            self._last_timing = {
                "tick_seconds": tick_seconds,
                "step_seconds": max(tick_seconds - solve_seconds, 0.0),
                "solve_seconds": solve_seconds,
            }
        self._tick += 1
        if self._tick % self._telemetry_every == 0:
            record = self.snapshot()
            if timing:
                record["timing"] = dict(self._last_timing)
            if self._telemetry is not None:
                self._telemetry.record(record)
            return record
        return None

    def run(self, n_ticks: int) -> None:
        """Run ``n_ticks`` ticks back to back."""
        n_ticks = int(n_ticks)
        if n_ticks < 0:
            raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
        for _ in range(n_ticks):
            self.step_tick()

    # ------------------------------------------------------------------
    # checkpointing (delegates to repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def save_checkpoint(self, path) -> None:
        """Persist the full fleet state (RNG streams included)."""
        from repro.runtime.checkpoint import save_checkpoint

        save_checkpoint(path, self)

    @classmethod
    def resume(
        cls,
        path,
        telemetry=None,
        telemetry_every: int | None = None,
        telemetry_per_device: bool | None = None,
        backend: str | None = None,
        uniform_source: str | None = None,
        record_timing: bool = False,
        policy_cache=None,
    ) -> "FleetController":
        """Rebuild a controller from a checkpoint and continue.

        Telemetry sinks are not part of the checkpoint (they hold open
        file handles); pass a fresh one.  ``backend`` and
        ``uniform_source`` override the saved stepping mode / uniform
        producer when given — safe, because per-device streams make
        results grouping-invariant and the uniform producers are
        byte-identical.  The saved ``chunk_slices`` pin is always
        restored (overriding it would silently regroup the resumed
        run's float partial sums and break the byte-identity contract
        with the uninterrupted run).  Checkpoints written before the
        ``uniform_source`` field resume as ``"auto"``.
        """
        from repro.runtime.checkpoint import load_checkpoint

        payload = load_checkpoint(path)
        controller = cls(
            payload["fleet"],
            slices_per_tick=payload["slices_per_tick"],
            backend=backend or payload["backend"],
            telemetry=telemetry,
            telemetry_every=(
                payload["telemetry_every"]
                if telemetry_every is None
                else telemetry_every
            ),
            telemetry_per_device=(
                payload["telemetry_per_device"]
                if telemetry_per_device is None
                else telemetry_per_device
            ),
            chunk_slices=payload.get("chunk_slices"),
            uniform_source=(
                uniform_source or payload.get("uniform_source", "auto")
            ),
            record_timing=record_timing,
            policy_cache=policy_cache,
            initial_tick=payload["tick"],
        )
        return controller
