"""Fleet telemetry: periodic snapshots of device and fleet metrics.

Every ``telemetry_every`` ticks the controller folds the fleet's
per-device accumulators into one :func:`snapshot` record — fleet-level
aggregates (mean/min/max of every per-slice metric average, summed
request counters) plus, optionally, one sub-record per device — and
hands it to a sink.

Records are **pure functions of fleet state**: no wall-clock
timestamps, no environment probes, insertion-ordered device traversal.
That is what makes the checkpoint/resume contract testable — a resumed
campaign's telemetry must be byte-identical to an uninterrupted run's
(see ``tests/test_runtime_fleet.py``).

Sinks:

* :class:`MemoryTelemetry` — keeps records in a list (tests, notebooks);
* :class:`JsonLinesTelemetry` — appends one compact JSON object per
  line to a file (the ``repro-dpm fleet --telemetry`` artifact).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import faults
from repro.runtime.fleet import Device, Fleet
from repro.util.validation import ValidationError

__all__ = [
    "DEVICE_RECORD_FIELDS",
    "JsonLinesTelemetry",
    "MemoryTelemetry",
    "SNAPSHOT_FIELDS",
    "device_record",
    "snapshot",
    "snapshot_from_records",
]

#: The complete field set of a device sub-record.  Declared once here;
#: ``repro.lint`` rule SCH001 statically checks every marked writer
#: against it, so a writer cannot silently grow or rename a field.
DEVICE_RECORD_FIELDS = frozenset(
    {
        "id",
        "slices",
        "state",
        "averages",
        "arrivals",
        "serviced",
        "lost",
        "loss_event_slices",
        "agent",
        "workload",
    }
)

#: The complete field set of a fleet snapshot record, including the
#: optional fields stamped by the controller (``devices`` under
#: ``per_device=True``, ``backend`` and ``uniform_source`` always,
#: ``timing`` under ``record_timing=True``) and by the fleet daemon
#: (``quarantined`` — shard indices parked by the supervisor's
#: crash-loop breaker, only present when non-empty so fault-free
#: snapshots stay byte-identical to single-process ones).
#: Machine-checked like :data:`DEVICE_RECORD_FIELDS` — the
#: controller's writers carry cross-module
#: ``schema=repro.runtime.telemetry:SNAPSHOT_FIELDS`` markers.
SNAPSHOT_FIELDS = frozenset(
    {
        "tick",
        "n_devices",
        "fleet_slices",
        "metrics",
        "counters",
        "devices",
        "backend",
        "uniform_source",
        "timing",
        "quarantined",
    }
)


def device_record(device: Device) -> dict:  # repro-lint: schema=DEVICE_RECORD_FIELDS
    """One device's telemetry sub-record."""
    return {
        "id": device.device_id,
        "slices": device.slices,
        "state": list(device.state),
        "averages": device.averages,
        "arrivals": device.arrivals,
        "serviced": device.serviced,
        "lost": device.lost,
        "loss_event_slices": device.loss_event_slices,
        "agent": device.agent.describe(),
        "workload": device.stream.describe() if device.stream else "model",
    }


#: Counter fields summed fleet-wide in every snapshot.
_COUNTER_FIELDS = ("arrivals", "serviced", "lost", "loss_event_slices")


def _aggregate(stats) -> tuple[dict, dict]:
    """Fold per-device ``(averages, counter-tuple)`` pairs into fleet
    aggregates.

    One shared reduction for both snapshot producers — the in-process
    :func:`snapshot` and the daemon-side :func:`snapshot_from_records`
    — so a sharded run's fleet-level floats associate *exactly* like a
    single-process run's (part of the service byte-identity contract).
    """
    values: dict[str, list[float]] = {}
    counters = {name: 0 for name in _COUNTER_FIELDS}
    for averages, device_counters in stats:
        for name, value in averages.items():
            values.setdefault(name, []).append(value)
        for name, value in zip(_COUNTER_FIELDS, device_counters):
            counters[name] += value
    metrics = {
        name: {
            "mean": sum(series) / len(series),
            "min": min(series),
            "max": max(series),
        }
        for name, series in values.items()
    }
    return metrics, counters


def snapshot(  # repro-lint: schema=SNAPSHOT_FIELDS
    fleet: Fleet, tick: int, per_device: bool = False
) -> dict:
    """Aggregate the fleet's accumulators into one snapshot record.

    Per-metric aggregates are computed over the devices that register
    the metric (heterogeneous fleets may not share cost models), in
    insertion order; counters are fleet-wide sums.
    """
    metrics, counters = _aggregate(
        (
            device.averages,
            (
                device.arrivals,
                device.serviced,
                device.lost,
                device.loss_event_slices,
            ),
        )
        for device in fleet
    )
    record = {
        "tick": int(tick),
        "n_devices": len(fleet),
        "fleet_slices": fleet.total_slices,
        "metrics": metrics,
        "counters": counters,
    }
    if per_device:
        record["devices"] = [device_record(device) for device in fleet]
    return record


def snapshot_from_records(  # repro-lint: schema=SNAPSHOT_FIELDS
    tick: int, records: list, per_device: bool = False
) -> dict:
    """Assemble a fleet snapshot from per-device :func:`device_record`\\ s.

    The service daemon's aggregation path: shard workers report their
    devices' records, the daemon orders them canonically (global
    registration order) and folds them here through the *same*
    reduction as :func:`snapshot` — so for equal device states the two
    producers emit byte-identical records.
    """
    metrics, counters = _aggregate(
        (
            record["averages"],
            tuple(record[name] for name in _COUNTER_FIELDS),
        )
        for record in records
    )
    record = {
        "tick": int(tick),
        "n_devices": len(records),
        "fleet_slices": sum(int(r["slices"]) for r in records),
        "metrics": metrics,
        "counters": counters,
    }
    if per_device:
        record["devices"] = list(records)
    return record


class MemoryTelemetry:
    """In-memory sink: appends every record to :attr:`records`."""

    def __init__(self):
        self.records: list[dict] = []

    def record(self, record: dict) -> None:
        """Store one snapshot record."""
        self.records.append(record)

    def close(self) -> None:
        """No-op (symmetry with file-backed sinks)."""


class JsonLinesTelemetry:
    """JSON-lines sink: one ``json.dumps(record, sort_keys=True)`` per line.

    Parameters
    ----------
    path:
        Output file.  Opened lazily on the first record, so constructing
        a sink for a run that fails before producing telemetry never
        truncates an existing file.
    append:
        Open in append mode — what a resumed campaign uses so its
        telemetry continues the original file.
    flush_every:
        Records between flushes (default 1: every record reaches the
        OS before the next tick starts).  Raising it trades crash
        durability for throughput on very large fleets.
    fsync:
        When True, every flush is followed by ``os.fsync`` so the
        record survives not just a process crash but a machine one —
        the fleet daemon's telemetry mode, where a killed worker or a
        crashed daemon must never lose an emitted tick.

    Crash-safety semantics: each record is emitted as a *single*
    ``write()`` of the full line (json + newline), so a concurrent
    reader never sees an interleaved record, and a crash can only tear
    the final line.  Opening in append mode repairs such a torn tail —
    the file is truncated back to its last complete (newline-ended)
    line before new records continue it, so a resumed campaign's file
    stays valid JSON-lines end to end.  A failing ``os.fsync`` is
    tolerated rather than fatal: the sync is retried on the next flush
    (and once more at :meth:`close`) and counted in
    :attr:`fsync_failures` — telemetry durability degrades before the
    fleet does.
    """

    def __init__(
        self,
        path,
        append: bool = False,
        flush_every: int = 1,
        fsync: bool = False,
    ):
        flush_every = int(flush_every)
        if flush_every <= 0:
            raise ValidationError(
                f"flush_every must be > 0, got {flush_every}"
            )
        self._path = Path(path)
        self._append = bool(append)
        self._flush_every = flush_every
        self._fsync = bool(fsync)
        self._pending = 0
        self._fsync_pending = False
        self._file = None
        #: fsync failures tolerated so far (degraded durability).
        self.fsync_failures = 0

    @property
    def path(self) -> Path:
        """The output path."""
        return self._path

    def _repair_tail(self) -> None:
        """Truncate a torn final line before appending to the file.

        A writer killed mid-``write`` can leave a last line without a
        terminating newline; everything up to the previous newline is
        complete records.  Dropping the torn tail keeps the file valid
        JSON-lines and lets the resumed run re-emit the lost record.
        """
        try:
            raw = self._path.read_bytes()
        except OSError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1
        with open(self._path, "r+b") as fh:
            fh.truncate(keep)

    def _flush(self) -> None:
        self._file.flush()
        if self._fsync:
            try:
                faults.TELEMETRY_FSYNC.fire(path=str(self._path))
                os.fsync(self._file.fileno())
                self._fsync_pending = False
            except OSError:
                # Data reached the OS (flush succeeded); durability is
                # degraded, not lost.  Retry on the next flush.
                self.fsync_failures += 1
                self._fsync_pending = True
        self._pending = 0

    def record(self, record: dict) -> None:
        """Serialize one snapshot record; flush per ``flush_every``."""
        if self._file is None:
            if self._append:
                self._repair_tail()
            self._file = open(self._path, "a" if self._append else "w")
        # One write per record: a crash tears at most the final line
        # and concurrent readers never see a partial interleave.
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._pending += 1
        if self._pending >= self._flush_every:
            self._flush()

    def close(self) -> None:
        """Flush and close the underlying file (no-op when nothing was
        recorded)."""
        if self._file is not None and not self._file.closed:
            if self._pending or self._fsync_pending:
                self._flush()
            self._file.close()

    def __enter__(self) -> "JsonLinesTelemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
