"""Content-addressed caching of policy-optimization solves.

A fleet of a thousand identical devices does not need a thousand LP
solves: the optimal policy is a pure function of the LP content
(objective row, balance matrix, bound rows, backend).  The
:class:`PolicyCache` addresses solves by a SHA-256 digest of exactly
that content, so

* devices with *identical* specs share one solve (exact hits), and
* devices (or adaptive refits) with *near-identical* specs — same
  shapes and constraint structure, slightly different coefficients —
  reuse the previous optimal simplex basis through
  :attr:`~repro.lp.result.LPResult.warm_start` (the PR-2 dual-simplex
  restart path; backends without warm-start support accept and ignore
  the hint).

The module also owns the content-signature helpers
(:func:`system_signature`, :func:`costs_signature`,
:func:`policy_signature`) that the fleet runtime uses to group devices
for batched stepping.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.costs import LOSS, PENALTY, POWER
from repro.lp.solve import solve_lp
from repro.util.validation import ValidationError

__all__ = [
    "CacheStats",
    "CachedOptimizer",
    "PolicyCache",
    "costs_signature",
    "policy_signature",
    "system_signature",
]


def _hash_arrays(parts) -> str:
    """SHA-256 over a sequence of arrays/strings (shape-delimited)."""
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            digest.update(part.encode())
        else:
            arr = np.ascontiguousarray(part)
            digest.update(str(arr.shape).encode())
            digest.update(str(arr.dtype).encode())
            digest.update(arr.tobytes())
        digest.update(b"|")
    return digest.hexdigest()


def system_signature(system) -> str:
    """Content digest of a composed system's stochastic tables.

    Two systems with equal provider tensors, service rates, power
    tables, requester chains, arrival counts and queue capacity hash
    identically regardless of object identity — the grouping key the
    fleet controller batches on.
    """
    return _hash_arrays(
        [
            system.provider.chain.tensor,
            system.provider.service_rate_matrix,
            system.provider.power_matrix,
            system.requester.chain.matrix,
            system.requester.arrival_counts,
            str(system.queue.capacity),
        ]
    )


def costs_signature(costs) -> str:
    """Content digest of a cost model's metric matrices (name order)."""
    parts: list = []
    for name in costs.metric_names:
        parts.append(name)
        parts.append(costs.metric(name))
    return _hash_arrays(parts)


def policy_signature(policy) -> str:
    """Content digest of a Markov policy matrix."""
    return _hash_arrays([policy.matrix])


def _lp_signature(lp, backend: str) -> str:
    """Exact content address of one LP instance on one backend.

    Sparse problems are hashed through their CSR triplet
    (``data``/``indices``/``indptr``) — the (n_states*n_commands x
    n_states) balance block is never densified just to fingerprint it.
    Dense and sparse assemblies of the same system therefore hash to
    *different* keys, which is correct: they run different solve paths
    and may return different (equally optimal) vertex policies.
    """
    if lp.is_sparse:
        eq = lp.A_eq_sparse
        return _hash_arrays(
            [
                backend,
                "csr",
                lp.c,
                str(eq.shape),
                eq.data,
                eq.indices,
                eq.indptr,
                lp.b_eq,
                lp.A_ub,
                lp.b_ub,
            ]
        )
    return _hash_arrays(
        [backend, lp.c, lp.A_eq, lp.b_eq, lp.A_ub, lp.b_ub]
    )


def _family_signature(lp, backend: str, objective: str, sense: str) -> str:
    """Structural address: problems that can share a warm-start basis.

    Warm starts only require matching dimensions and constraint
    structure — coefficients may drift (an adaptive refit's requester
    rows move a little every window), which is exactly the case the
    dual-simplex restart path handles, falling back to a cold solve
    when the old basis is unusable.
    """
    return _hash_arrays(
        [
            backend,
            objective,
            sense,
            "sparse" if lp.is_sparse else "dense",
            str((lp.n_variables,)),
            str((lp.n_equalities, lp.n_variables)),
            str((lp.n_inequalities, lp.n_variables)),
        ]
    )


@dataclass
class CacheStats:
    """Counters describing how a :class:`PolicyCache` has been used.

    Attributes
    ----------
    hits:
        Solves answered from the cache without touching a backend.
    misses:
        Solves that went to the LP backend.
    warm_hinted:
        Misses that carried a warm-start basis from the same family.
    evictions:
        Entries dropped by the LRU bound.
    solve_seconds:
        Wall-clock spent inside the LP backend (misses only; hits are
        free).  The fleet controller reads deltas of this to attribute
        a tick's time to stepping vs solving.
    """

    hits: int = 0
    misses: int = 0
    warm_hinted: int = 0
    evictions: int = 0
    solve_seconds: float = 0.0

    def as_dict(self) -> dict:
        """Plain-dict view for telemetry/JSON reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "warm_hinted": self.warm_hinted,
            "evictions": self.evictions,
            "solve_seconds": self.solve_seconds,
        }


class PolicyCache:
    """LRU cache of :class:`~repro.core.optimizer.OptimizationResult`.

    Parameters
    ----------
    max_entries:
        LRU bound on cached results (``None`` means unbounded).  The
        per-family warm-start hints are tiny (one simplex basis each)
        and are not counted.

    Notes
    -----
    Cached results are returned *shared*, not copied — policies and
    evaluations are treated as immutable, which every consumer in this
    package honours.

    *Determinism.*  Exact hits are order-independent: the same LP on
    the same backend always yields the same result, so it does not
    matter which device solved it first.  Warm-started *misses* are
    weaker: on a vertex-degenerate LP, a dual-simplex restart from
    another solve's basis may terminate at a different (equally
    optimal) vertex than a cold solve would, so the extracted policy
    can depend on what the cache saw earlier.  Every such policy is
    optimal — but a fleet that needs adaptive devices to be bitwise
    reproducible in isolation should give each its own cache or use a
    backend that ignores warm starts (the default ``scipy`` does).

    Examples
    --------
    >>> from repro.core.average_cost import AverageCostOptimizer
    >>> from repro.runtime.policy_cache import PolicyCache
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> cache = PolicyCache()
    >>> opt = AverageCostOptimizer(bundle.system, bundle.costs)
    >>> a = cache.optimize(opt, "power", upper_bounds={"penalty": 0.5})
    >>> b = cache.optimize(opt, "power", upper_bounds={"penalty": 0.5})
    >>> a is b, cache.stats.hits, cache.stats.misses
    (True, 1, 1)
    """

    def __init__(self, max_entries: int | None = 256):
        if max_entries is not None and int(max_entries) <= 0:
            raise ValidationError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        self._max_entries = None if max_entries is None else int(max_entries)
        self._results: OrderedDict[str, object] = OrderedDict()
        self._warm: dict[str, object] = {}
        self._stats = CacheStats()

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Usage counters (live object, not a copy)."""
        return self._stats

    def __len__(self) -> int:
        return len(self._results)

    def clear(self) -> None:
        """Drop every cached result and warm-start hint."""
        self._results.clear()
        self._warm.clear()

    # ------------------------------------------------------------------
    # the cached solve
    # ------------------------------------------------------------------
    def optimize(
        self,
        optimizer,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ):
        """Solve through ``optimizer``, deduped by LP content.

        ``optimizer`` is either a
        :class:`~repro.core.optimizer.PolicyOptimizer` or an
        :class:`~repro.core.average_cost.AverageCostOptimizer` — both
        expose the ``build_lp``/``result_from_lp`` split this cache
        needs to address and warm-start the raw LP solve.
        """
        lp, recorded = optimizer.build_lp(
            objective, sense, upper_bounds, lower_bounds
        )
        backend = optimizer.backend
        key = _lp_signature(lp, backend)
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
            self._stats.hits += 1
            return cached

        family = _family_signature(lp, backend, objective, sense)
        warm = self._warm.get(family)
        if warm is not None:
            self._stats.warm_hinted += 1
        solve_start = time.perf_counter()
        lp_result = solve_lp(
            lp,
            backend=backend,
            cross_check=optimizer.cross_check,
            warm_start=warm,
        )
        self._stats.solve_seconds += time.perf_counter() - solve_start
        self._stats.misses += 1
        if lp_result.warm_start is not None:
            self._warm[family] = lp_result.warm_start
        result = optimizer.result_from_lp(lp_result, objective, recorded)
        self._results[key] = result
        if (
            self._max_entries is not None
            and len(self._results) > self._max_entries
        ):
            self._results.popitem(last=False)
            self._stats.evictions += 1
        return result

    def wrap(self, optimizer) -> "CachedOptimizer":
        """An optimizer proxy whose solves all route through this cache."""
        return CachedOptimizer(optimizer, self)


class CachedOptimizer:
    """Duck-typed optimizer facade backed by a :class:`PolicyCache`.

    Exposes the solve entry points (``optimize`` plus the paper-named
    ``minimize_*`` wrappers) routed through the cache and delegates
    everything else to the wrapped optimizer.  The ``minimize_*``
    helpers are re-implemented here rather than delegated: a bound
    method fetched from the wrapped optimizer would call *its own*
    ``optimize`` and silently bypass the cache.
    """

    def __init__(self, optimizer, cache: PolicyCache):
        self._optimizer = optimizer
        self._cache = cache

    @property
    def cache(self) -> PolicyCache:
        """The backing cache."""
        return self._cache

    def optimize(
        self,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ):
        return self._cache.optimize(
            self._optimizer, objective, sense, upper_bounds, lower_bounds
        )

    def minimize_power(
        self,
        penalty_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ):
        upper = dict(extra_upper_bounds or {})
        if penalty_bound is not None:
            upper[PENALTY] = float(penalty_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(POWER, "min", upper_bounds=upper)

    def minimize_penalty(
        self,
        power_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ):
        upper = dict(extra_upper_bounds or {})
        if power_bound is not None:
            upper[POWER] = float(power_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(PENALTY, "min", upper_bounds=upper)

    def minimize_unconstrained(self, objective: str = PENALTY):
        return self.optimize(objective, "min")

    def __getattr__(self, name: str):
        return getattr(self._optimizer, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachedOptimizer({self._optimizer!r})"
