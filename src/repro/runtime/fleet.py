"""Device registry for the online fleet runtime.

A :class:`Device` is one managed unit: a composed system, a cost
model, a policy agent, its *own* random stream, its current joint
state and its running accumulators.  A :class:`Fleet` is an ordered
registry of devices — heterogeneous by construction: different
hardware models, different workloads, different agents, all stepped
together by the :class:`~repro.runtime.controller.FleetController`.

Device randomness is per-device by design: ``device_rng(seed, index)``
derives statistically independent PCG64 streams from a base seed with
:class:`numpy.random.SeedSequence` spawn keys, so device ``i`` of a
group consumes exactly the same uniforms whether it is stepped alone,
inside a 1000-lane batch, or after a checkpoint/resume — the property
the fleet determinism suite pins down.  Being PCG64, these streams are
exactly what the vectorized fan-in
(:class:`~repro.sim.rng_batched.BatchedPCG64Source`) can stack and
advance as array math; a device carrying any other clean generator
still works through the serial :class:`~repro.sim.rng.FanInSource`.

``build_fleet`` turns a JSON fleet spec (device groups x workloads x
agents, see :func:`parse_fleet_spec`) into a registered fleet, solving
optimal policies through a shared
:class:`~repro.runtime.policy_cache.PolicyCache` so identical device
groups cost one LP solve, not one per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.policies.base import PolicyAgent, StationaryAgent
from repro.runtime.policy_cache import (
    PolicyCache,
    costs_signature,
    system_signature,
)
from repro.runtime.streams import ArrivalStream, stream_from_spec
from repro.sim.backends.base import SimulationTables, resolve_initial_state
from repro.sim.trace_sim import ArrivalTracker, NearestArrivalTracker
from repro.util.validation import ValidationError

__all__ = [
    "Device",
    "Fleet",
    "OptimizeDirective",
    "build_agent_from_spec",
    "build_fleet",
    "build_group_devices",
    "device_rng",
    "parse_fleet_spec",
]

#: Policy rows with a single command above this mass are deterministic
#: (same tolerance the vector backend compiles with).
_DETERMINISTIC_TOL = 1e-12


def device_rng(seed: int, index: int) -> np.random.Generator:
    """The canonical per-device generator: ``(seed, device index)``.

    Spawn keys make the streams statistically independent and — more
    importantly for the fleet — *addressable*: any device can be
    re-created in isolation with the exact stream it had inside the
    fleet.
    """
    sequence = np.random.SeedSequence(int(seed), spawn_key=(int(index),))
    return np.random.default_rng(sequence)


@dataclass
class Device:
    """One managed device: model, agent, stream, state, accumulators.

    Attributes
    ----------
    device_id:
        Unique fleet-wide identifier.
    system / costs:
        The composed system and its metrics (sharable across devices).
    agent:
        The policy agent; stateful agents must not be shared between
        devices.
    rng:
        This device's own generator — every stochastic choice the
        device makes (policy draws, transitions, service, stochastic
        workload streams) consumes from it and nothing else does.
    stream:
        Exogenous workload (``None`` means arrivals come from the SR
        chain — the vectorizable model-driven mode).
    tracker:
        SR-state inference for stream-driven devices (defaults to
        :class:`~repro.sim.trace_sim.NearestArrivalTracker`).
    state:
        Current ``(provider, requester, queue)`` indices.
    """

    device_id: str
    system: PowerManagedSystem
    costs: CostModel
    agent: PolicyAgent
    rng: np.random.Generator
    stream: ArrivalStream | None = None
    tracker: ArrivalTracker | None = None
    state: tuple[int, int, int] = (0, 0, 0)
    prev_arrivals: int = 0
    slices: int = 0
    metric_names: tuple[str, ...] = ()
    totals: np.ndarray = field(default=None, repr=False)
    arrivals: int = 0
    serviced: int = 0
    lost: int = 0
    loss_event_slices: int = 0
    command_counts: np.ndarray = field(default=None, repr=False)
    provider_occupancy: np.ndarray = field(default=None, repr=False)

    def __post_init__(self):
        if self.metric_names == ():
            self.metric_names = tuple(self.costs.metric_names)
        if self.totals is None:
            self.totals = np.zeros(len(self.metric_names))
        if self.command_counts is None:
            self.command_counts = np.zeros(
                self.system.n_commands, dtype=np.int64
            )
        if self.provider_occupancy is None:
            self.provider_occupancy = np.zeros(
                self.system.provider.n_states, dtype=np.int64
            )
        if self.stream is not None:
            if self.tracker is None:
                self.tracker = NearestArrivalTracker(self.system.requester)
            # Stream-driven devices observe an *inferred* SR state; the
            # tracker defines the initial one.
            self.state = (self.state[0], self.tracker.reset(), self.state[2])

    # ------------------------------------------------------------------
    # dispatch properties
    # ------------------------------------------------------------------
    @property
    def vector_eligible(self) -> bool:
        """True when the joint-state batch kernel can step this device.

        Requires a provably stationary agent *and* model-driven
        arrivals — a stream-driven device's workload is exogenous, so
        it falls back to the per-device loop.
        """
        return isinstance(self.agent, StationaryAgent) and self.stream is None

    def group_key(self) -> tuple:
        """Batching signature: devices sharing it step in one batch.

        ``(system content, costs content, policy-determinism flag)`` —
        the determinism flag is part of the key because the batch
        kernel draws 3 uniform kinds per slice for fully-deterministic
        policy batches and 4 otherwise; mixing the two in one batch
        would make a device's stream consumption depend on its
        neighbours.
        """
        if not self.vector_eligible:
            raise ValidationError(
                f"device {self.device_id!r} is not vector-eligible"
            )
        policy = self.agent.stationary_policy(self.system)
        deterministic = bool(
            (policy.matrix.max(axis=1) > 1.0 - _DETERMINISTIC_TOL).all()
        )
        return (
            system_signature(self.system),
            costs_signature(self.costs),
            deterministic,
        )

    # ------------------------------------------------------------------
    # metric views
    # ------------------------------------------------------------------
    @property
    def averages(self) -> dict[str, float]:
        """Per-slice metric averages accumulated so far."""
        if self.slices == 0:
            return {name: 0.0 for name in self.metric_names}
        return {
            name: float(self.totals[i]) / self.slices
            for i, name in enumerate(self.metric_names)
        }

    def compile_tables(self) -> SimulationTables:
        """Compile the simulation tables for this device's model."""
        return SimulationTables.compile(self.system, self.costs)


class Fleet:
    """An ordered registry of :class:`Device` records.

    Insertion order is the canonical device order — telemetry
    aggregation, batching and checkpoints all preserve it, which keeps
    every downstream artifact deterministic.
    """

    def __init__(self):
        self._devices: dict[str, Device] = {}
        #: Bumped on membership changes so the controller can invalidate
        #: its compiled group caches.
        self.version = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_device(
        self,
        device_id: str,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        *,
        rng: np.random.Generator | int | None = None,
        stream: ArrivalStream | None = None,
        tracker: ArrivalTracker | None = None,
        initial_state=None,
    ) -> Device:
        """Register one device and return its record.

        ``rng`` accepts a generator, a seed, or ``None`` (fresh
        entropy); pass :func:`device_rng` streams for addressable
        reproducibility.
        """
        device_id = str(device_id)
        if device_id in self._devices:
            raise ValidationError(f"duplicate device id {device_id!r}")
        if not isinstance(agent, PolicyAgent):
            raise ValidationError(
                f"agent must be a PolicyAgent, got {type(agent).__name__}"
            )
        if costs.system is not system:
            raise ValidationError(
                f"device {device_id!r}: costs were built for a different system"
            )
        if rng is None or isinstance(rng, (int, np.integer)):
            rng = np.random.default_rng(rng)
        state = resolve_initial_state(system, initial_state)
        device = Device(
            device_id=device_id,
            system=system,
            costs=costs,
            agent=agent,
            rng=rng,
            stream=stream,
            tracker=tracker,
            state=state,
        )
        agent.reset()
        self._devices[device_id] = device
        self.version += 1
        return device

    def adopt_device(self, device: Device) -> Device:
        """Insert an already-constructed :class:`Device` record as-is.

        Unlike :meth:`add_device` this neither rebuilds the record nor
        resets its agent — the device keeps its accumulated state,
        stream cursor and RNG stream exactly.  It is how fleet state
        moves between processes: shard workers adopt their partition,
        and gathered daemon fleets are reassembled device by device.
        """
        if not isinstance(device, Device):
            raise ValidationError(
                f"adopt_device takes a Device, got {type(device).__name__}"
            )
        if device.device_id in self._devices:
            raise ValidationError(f"duplicate device id {device.device_id!r}")
        self._devices[device.device_id] = device
        self.version += 1
        return device

    def remove_device(self, device_id: str) -> Device:
        """Deregister and return a device (e.g. decommissioned hardware)."""
        try:
            device = self._devices.pop(str(device_id))
        except KeyError:
            raise ValidationError(f"unknown device id {device_id!r}") from None
        self.version += 1
        return device

    def replace_agent(self, device_id: str, agent: PolicyAgent) -> Device:
        """Swap one device's policy agent in place (live policy push).

        The new agent is reset and the fleet version bumped so
        controllers regroup and recompile on the next tick.  Works
        identically through the single-process controller and the
        sharded daemon — both route policy updates here.
        """
        device = self.device(device_id)
        if not isinstance(agent, PolicyAgent):
            raise ValidationError(
                f"agent must be a PolicyAgent, got {type(agent).__name__}"
            )
        device.agent = agent
        agent.reset()
        self.version += 1
        return device

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def device(self, device_id: str) -> Device:
        """Look up one device by id."""
        try:
            return self._devices[str(device_id)]
        except KeyError:
            raise ValidationError(f"unknown device id {device_id!r}") from None

    @property
    def device_ids(self) -> tuple[str, ...]:
        """All registered ids, insertion order."""
        return tuple(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self):
        return iter(self._devices.values())

    def __contains__(self, device_id) -> bool:
        return str(device_id) in self._devices

    @property
    def total_slices(self) -> int:
        """Device-slices accumulated across the whole fleet."""
        return sum(device.slices for device in self._devices.values())


# ----------------------------------------------------------------------
# fleet specs: JSON device groups -> a registered fleet
# ----------------------------------------------------------------------
#: Named case-study systems accepted by fleet specs.
_NAMED_SYSTEMS = {
    "example": "repro.systems.example_system",
    "disk_drive": "repro.systems.disk_drive",
    "web_server": "repro.systems.web_server",
    "cpu": "repro.systems.cpu",
    "baseline": "repro.systems.baseline",
}


def parse_fleet_spec(raw: dict) -> dict:
    """Validate the raw structure of a fleet spec.

    A fleet spec is a mapping::

        {
          "name": "campaign",
          "slices_per_tick": 500,            # optional controller default
          "groups": [
            {
              "id": "disks",                 # optional (default g<i>)
              "count": 512,
              "system": "disk_drive",        # name or inline system spec
              "agent": {"type": "optimal", "penalty_bound": 0.05},
              "workload": {"type": "mmpp2", "p_stay_idle": 0.95},  # optional
              "seed": 7,                     # optional group seed
              "initial_state": ["active", "0", 0]                  # optional
            },
            ...
          ]
        }

    Agent types: ``optimal`` (LP solve through the shared
    :class:`PolicyCache`; keys ``objective``, ``penalty_bound``,
    ``loss_bound``, ``bounds``, ``formulation``), ``eager``/``timeout``
    (keys ``active``/``sleep`` command names, ``timeout`` slices),
    ``constant`` (key ``command``), and ``adaptive``
    (:class:`~repro.policies.adaptive.AdaptivePolicyAgent` keys
    ``window``, ``refit_every``, ``memory``, ``penalty_bound``, ...;
    ``"auto_memory": true`` or an explicit ``"memories": [1, 2, 3]``
    refit through the BIC structure search of
    :class:`~repro.estimation.chain_fit.ArrivalChainEstimator` instead
    of the fixed-memory window heuristic).
    """
    if not isinstance(raw, dict):
        raise ValidationError(
            f"fleet spec must be a mapping, got {type(raw).__name__}"
        )
    groups = raw.get("groups")
    if not isinstance(groups, list) or not groups:
        raise ValidationError("fleet spec needs a non-empty 'groups' list")
    for i, group in enumerate(groups):
        if not isinstance(group, dict):
            raise ValidationError(f"groups[{i}] must be a mapping")
        if "system" not in group:
            raise ValidationError(f"groups[{i}]: missing 'system'")
        if "agent" not in group or not isinstance(group["agent"], dict):
            raise ValidationError(f"groups[{i}]: missing 'agent' mapping")
        count = int(group.get("count", 1))
        if count <= 0:
            raise ValidationError(f"groups[{i}]: count must be > 0, got {count}")
    return raw


def _compose_group_system(source, lp_backend: str):
    """Resolve a group's ``system`` field to (system, costs, gamma, p0)."""
    if isinstance(source, str):
        if source not in _NAMED_SYSTEMS:
            raise ValidationError(
                f"unknown system {source!r}; named systems: "
                f"{sorted(_NAMED_SYSTEMS)} (or pass an inline spec mapping)"
            )
        import importlib

        bundle = importlib.import_module(_NAMED_SYSTEMS[source]).build()
        return (
            bundle.system,
            bundle.costs,
            bundle.gamma,
            bundle.initial_distribution,
        )
    if isinstance(source, dict):
        from repro.tool.spec import parse_spec

        spec = parse_spec(source)
        system, costs, p0 = spec.compose()
        return system, costs, spec.gamma, p0
    raise ValidationError(
        f"group 'system' must be a name or an inline spec mapping, "
        f"got {type(source).__name__}"
    )


@dataclass
class OptimizeDirective:
    """A picklable ``optimizer -> OptimizationResult`` solve request.

    The adaptive agent's refit loop carries its optimization target as
    a callable; fleet specs build it as this dataclass (rather than a
    lambda) so checkpointing a fleet of adaptive devices works.
    """

    objective: str = "power"
    upper_bounds: dict | None = None
    lower_bounds: dict | None = None

    def __call__(self, optimizer):
        return optimizer.optimize(
            self.objective,
            "min",
            upper_bounds=self.upper_bounds,
            lower_bounds=self.lower_bounds,
        )


def _optimal_bounds(agent_spec: dict) -> tuple[dict, dict]:
    upper = {
        str(k): float(v) for k, v in dict(agent_spec.get("bounds", {})).items()
    }
    if agent_spec.get("penalty_bound") is not None:
        upper["penalty"] = float(agent_spec["penalty_bound"])
    if agent_spec.get("loss_bound") is not None:
        upper["loss"] = float(agent_spec["loss_bound"])
    lower = {
        str(k): float(v)
        for k, v in dict(agent_spec.get("lower_bounds", {})).items()
    }
    return upper, lower


def _group_policy(
    agent_spec: dict,
    system: PowerManagedSystem,
    costs: CostModel,
    gamma: float,
    p0,
    cache: PolicyCache,
    lp_backend: str,
):
    """Solve (through the cache) the optimal policy for one group."""
    formulation = str(agent_spec.get("formulation", "average"))
    if formulation == "average":
        from repro.core.average_cost import AverageCostOptimizer

        optimizer = AverageCostOptimizer(system, costs, backend=lp_backend)
    elif formulation == "discounted":
        from repro.core.optimizer import PolicyOptimizer

        optimizer = PolicyOptimizer(
            system,
            costs,
            gamma=gamma,
            initial_distribution=p0,
            backend=lp_backend,
        )
    else:
        raise ValidationError(
            f"unknown formulation {formulation!r}; use 'average' or 'discounted'"
        )
    upper, lower = _optimal_bounds(agent_spec)
    objective = str(agent_spec.get("objective", "power"))
    result = cache.optimize(
        optimizer, objective, "min", upper_bounds=upper or None,
        lower_bounds=lower or None,
    )
    if not result.feasible:
        raise ValidationError(
            f"optimal-agent solve infeasible (objective={objective!r}, "
            f"bounds={upper!r})"
        )
    return result.policy


def _build_agent(
    agent_spec: dict,
    system: PowerManagedSystem,
    costs: CostModel,
    gamma: float,
    p0,
    cache: PolicyCache,
    lp_backend: str,
    group_policy,
) -> PolicyAgent:
    """Instantiate one device's agent from a group agent spec."""
    from repro.policies import (
        AdaptivePolicyAgent,
        ConstantAgent,
        StationaryPolicyAgent,
        TimeoutAgent,
        eager_markov_policy,
    )

    kind = str(agent_spec.get("type", "optimal"))
    if kind == "optimal":
        return StationaryPolicyAgent(system, group_policy)
    if kind == "eager":
        policy = eager_markov_policy(
            system, agent_spec["active"], agent_spec["sleep"]
        )
        return StationaryPolicyAgent(system, policy)
    if kind == "constant":
        return ConstantAgent(
            system.chain.command_index(agent_spec.get("command", 0))
        )
    if kind == "timeout":
        return TimeoutAgent(
            int(agent_spec.get("timeout", 100)),
            system.chain.command_index(agent_spec["active"]),
            system.chain.command_index(agent_spec["sleep"]),
        )
    if kind == "adaptive":
        upper, lower = _optimal_bounds(agent_spec)
        estimator = None
        if agent_spec.get("auto_memory") or agent_spec.get("memories"):
            from repro.estimation.chain_fit import ArrivalChainEstimator

            estimator = ArrivalChainEstimator(
                memories=tuple(
                    int(m) for m in agent_spec.get("memories", (1, 2, 3))
                ),
                smoothing=float(agent_spec.get("smoothing", 0.5)),
            )
        return AdaptivePolicyAgent(
            system.provider,
            system.queue.capacity,
            OptimizeDirective(
                str(agent_spec.get("objective", "power")),
                upper or None,
                lower or None,
            ),
            window=int(agent_spec.get("window", 5000)),
            refit_every=int(agent_spec.get("refit_every", 1000)),
            memory=int(agent_spec.get("memory", 1)),
            fallback_command=system.chain.command_index(
                agent_spec.get("fallback_command", 0)
            ),
            backend=lp_backend,
            policy_cache=cache,
            estimator=estimator,
        )
    raise ValidationError(
        f"unknown agent type {kind!r}; use "
        f"optimal/eager/constant/timeout/adaptive"
    )


def build_agent_from_spec(
    agent_spec: dict,
    system: PowerManagedSystem,
    costs: CostModel,
    *,
    gamma: float = 0.99999,
    initial_distribution=None,
    cache: PolicyCache | None = None,
    lp_backend: str = "scipy",
) -> PolicyAgent:
    """Build one agent from a group-style agent spec mapping.

    The standalone entry the service layer uses for live policy pushes
    (``fleet-ctl update-policy``): the same spec vocabulary as
    :func:`build_fleet` groups, solved through the same
    :class:`PolicyCache` machinery, for a system/costs pair that
    already exists.
    """
    agent_spec = dict(agent_spec)
    if not isinstance(agent_spec.get("type", "optimal"), str):
        raise ValidationError("agent spec 'type' must be a string")
    cache = cache or PolicyCache()
    group_policy = None
    if str(agent_spec.get("type", "optimal")) == "optimal":
        group_policy = _group_policy(
            agent_spec, system, costs, gamma, initial_distribution, cache,
            lp_backend,
        )
    return _build_agent(
        agent_spec, system, costs, gamma, initial_distribution, cache,
        lp_backend, group_policy,
    )


def _build_group(
    fleet: Fleet,
    group: dict,
    gi: int,
    base_seed: int,
    cache: PolicyCache,
    lp_backend: str,
) -> None:
    """Register one spec group's devices into ``fleet``."""
    prefix = str(group.get("id", f"g{gi}"))
    count = int(group.get("count", 1))
    seed = int(group.get("seed", base_seed * 7919 + gi))
    system, costs, gamma, p0 = _compose_group_system(
        group["system"], lp_backend
    )
    agent_spec = dict(group["agent"])
    group_policy = None
    if str(agent_spec.get("type", "optimal")) == "optimal":
        group_policy = _group_policy(
            agent_spec, system, costs, gamma, p0, cache, lp_backend
        )
    initial_state = group.get("initial_state")
    if initial_state is not None:
        initial_state = (
            str(initial_state[0]),
            str(initial_state[1]),
            int(initial_state[2]),
        )
    workload = (
        dict(group["workload"])
        if group.get("workload") is not None
        else None
    )
    # Trace workloads are read and discretized once per group; each
    # device gets its own cursor over the shared count array.
    trace_counts = None
    if workload is not None and workload.get("type") == "trace":
        from repro.runtime.streams import TraceStream

        trace_counts = stream_from_spec(workload, device_rng(seed, 0))
    for i in range(count):
        rng = device_rng(seed, i)
        stream = None
        if trace_counts is not None:
            stream = TraceStream(
                trace_counts.counts,
                cycle=bool(workload.get("cycle", True)),
            )
        elif workload is not None:
            stream = stream_from_spec(workload, rng)
        agent = _build_agent(
            agent_spec, system, costs, gamma, p0, cache, lp_backend,
            group_policy,
        )
        fleet.add_device(
            f"{prefix}-{i:04d}",
            system,
            costs,
            agent,
            rng=rng,
            stream=stream,
            initial_state=initial_state,
        )


def build_group_devices(
    group: dict,
    *,
    group_index: int = 0,
    base_seed: int = 0,
    lp_backend: str = "scipy",
    cache: PolicyCache | None = None,
) -> list[Device]:
    """Build one spec group's devices without a surrounding fleet.

    The live-registration entry: the service daemon turns a
    ``register_group`` request into devices with exactly the same
    construction path (seeding, shared trace counts, shared policy
    solves) as :func:`build_fleet`, then distributes them to shards.
    """
    if not isinstance(group, dict):
        raise ValidationError(
            f"group spec must be a mapping, got {type(group).__name__}"
        )
    if "system" not in group:
        raise ValidationError("group spec: missing 'system'")
    if "agent" not in group or not isinstance(group["agent"], dict):
        raise ValidationError("group spec: missing 'agent' mapping")
    if int(group.get("count", 1)) <= 0:
        raise ValidationError(
            f"group spec: count must be > 0, got {group.get('count')}"
        )
    cache = cache or PolicyCache()
    staging = Fleet()
    _build_group(
        staging, group, int(group_index), int(base_seed), cache, lp_backend
    )
    return list(staging)


def build_fleet(
    raw: dict,
    *,
    base_seed: int = 0,
    lp_backend: str = "scipy",
    cache: PolicyCache | None = None,
) -> tuple[Fleet, PolicyCache]:
    """Register every device a fleet spec describes.

    Returns the fleet and the policy cache used for the optimal-agent
    solves (freshly created unless one was passed in) so callers can
    report dedupe statistics.
    """
    raw = parse_fleet_spec(raw)
    cache = cache or PolicyCache()
    fleet = Fleet()
    for gi, group in enumerate(raw["groups"]):
        _build_group(fleet, group, gi, base_seed, cache, lp_backend)
    return fleet, cache
