"""Kernel-purity rules for ``@njit``-compiled simulation kernels.

The jit tier's whole contract (:mod:`repro.sim.backends.jit`) is that
a kernel is a *pure function of its arrays*: the host draws every
uniform, owns every generator, and the same Python source runs both
compiled (numba) and interpreted (the ``@njit`` fallback decorator
degrades to identity), byte-identically.  Three things break that
structurally, before any test runs:

* :class:`KernelRngRule` (KRN001) — a generator constructed or
  consumed *inside* the kernel forks the RNG stream contract between
  host and kernel (and numba's own RNG state is thread-local and
  unseedable from the host);
* :class:`KernelGlobalMutationRule` (KRN002) — ``global``/``nonlocal``
  mutation makes kernel output depend on call order;
* :class:`KernelUnsupportedOpRule` (KRN003) — numpy ops off the
  support whitelist and Python-object constructs (dict/set literals,
  f-strings, try/with, ...) either fail to compile or — worse —
  compile to semantics that diverge from the interpreted fallback.

Rules walk the intra-module call graph: a helper reachable from a
kernel body is held to kernel discipline too (this is how the rules
follow ``_step_fold_chunk`` into ``_searchsorted_right``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_rng import DRAW_METHODS, GENERATOR_CONSTRUCTOR_TAILS

#: numpy attributes a kernel may call (numba-supported, and with
#: NumPy-identical semantics in the interpreted fallback).
KERNEL_NP_WHITELIST = frozenset(
    {
        "abs",
        "arange",
        "bool_",
        "ceil",
        "clip",
        "dot",
        "empty",
        "empty_like",
        "exp",
        "fabs",
        "float32",
        "float64",
        "floor",
        "full",
        "int8",
        "int16",
        "int32",
        "int64",
        "intp",
        "isfinite",
        "isinf",
        "isnan",
        "log",
        "log2",
        "log10",
        "maximum",
        "minimum",
        "ones",
        "ones_like",
        "searchsorted",
        "sign",
        "sqrt",
        "uint8",
        "uint16",
        "uint32",
        "uint64",
        "zeros",
        "zeros_like",
        # constants, not calls, but harmless either way
        "e",
        "inf",
        "nan",
        "pi",
    }
)

#: Builtin calls that force object mode or depend on process state.
_FORBIDDEN_BUILTINS = frozenset(
    {"print", "open", "input", "vars", "locals", "globals", "eval", "exec"}
)

#: Python-object constructs whose compiled semantics can diverge from
#: the interpreted fallback (or fail to compile at all).
_OBJECT_CONSTRUCTS: tuple[tuple[type[ast.AST], str], ...] = (
    (ast.Dict, "dict literal"),
    (ast.DictComp, "dict comprehension"),
    (ast.Set, "set literal"),
    (ast.SetComp, "set comprehension"),
    (ast.Lambda, "lambda"),
    (ast.Try, "try/except"),
    (ast.With, "with block"),
    (ast.Yield, "yield"),
    (ast.YieldFrom, "yield from"),
    (ast.Await, "await"),
    (ast.JoinedStr, "f-string"),
    (ast.ClassDef, "class definition"),
)


def _is_njit_decorator(context: FileContext, node: ast.AST) -> bool:
    """True when a decorator expression applies numba's njit/jit."""
    if isinstance(node, ast.Call):
        node = node.func
    resolved = context.resolve(node)
    if resolved in ("numba.njit", "numba.jit"):
        return True
    raw = context.dotted(node)
    if raw is None:
        return False
    tail = raw.rsplit(".", 1)[-1].lstrip("_")
    # Covers the local ``_numba_njit`` interpreted-fallback shim.
    return tail.endswith("njit")


def kernel_functions(
    context: FileContext,
) -> dict[str, tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]]:
    """Kernels plus module helpers reachable from them, by name.

    Returns ``{name: (node, root_kernel_name)}`` — the call graph is
    walked from every ``@njit`` function through module-level callees.
    """
    module_funcs = context.module_functions()
    kernels = {
        name: node
        for name, node in module_funcs.items()
        if any(_is_njit_decorator(context, dec) for dec in node.decorator_list)
    }
    reached: dict[str, tuple[ast.FunctionDef | ast.AsyncFunctionDef, str]] = {}
    for root, node in sorted(kernels.items()):
        stack = [node]
        while stack:
            current = stack.pop()
            if current.name in reached:
                continue
            reached[current.name] = (current, root)
            for sub in ast.walk(current):
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
                    callee = module_funcs.get(sub.func.id)
                    if callee is not None and callee.name not in reached:
                        stack.append(callee)
    return reached


class _KernelRule(Rule):
    """Shared driver: apply :meth:`check_kernel` to each reached kernel."""

    def check(self, context: FileContext) -> Iterator[Finding]:
        for name, (node, root) in sorted(kernel_functions(context).items()):
            origin = (
                f"@njit kernel {name}()"
                if name == root
                else f"{name}(), reached from @njit kernel {root}()"
            )
            yield from self.check_kernel(context, node, origin)

    def check_kernel(
        self,
        context: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        origin: str,
    ) -> Iterator[Finding]:
        raise NotImplementedError


@register
class KernelRngRule(_KernelRule):
    """KRN001: kernels never construct or consume generators."""

    rule_id = "KRN001"
    name = "kernel-rng"
    description = (
        "@njit kernel constructs a Generator or draws randomness "
        "(uniforms must be host-drawn)"
    )
    contract = (
        "loop/vector/jit byte-parity: the host draws all uniforms from "
        "the caller's generator; kernels are pure functions of arrays"
    )

    def check_kernel(
        self,
        context: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        origin: str,
    ) -> Iterator[Finding]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                resolved = context.resolve(sub)
                if resolved is not None and resolved.startswith("numpy.random."):
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} touches {resolved} — kernels must not "
                        f"own random state",
                        "draw the uniform block on the host and pass it "
                        "in as an array argument",
                    )
            elif isinstance(sub, ast.Call):
                raw = context.dotted(sub.func)
                if raw is not None and raw in GENERATOR_CONSTRUCTOR_TAILS:
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} constructs a generator via {raw}()",
                        "generators belong to the host/caller; pass "
                        "host-drawn uniforms instead",
                    )
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in DRAW_METHODS
                    and isinstance(sub.func.value, ast.Name)
                    and context.resolve(sub.func.value) is None
                ):
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} draws randomness via "
                        f"{sub.func.value.id}.{sub.func.attr}()",
                        "draw on the host; the kernel consumes a "
                        "pre-drawn uniform array",
                    )


@register
class KernelGlobalMutationRule(_KernelRule):
    """KRN002: kernels must not mutate enclosing scopes."""

    rule_id = "KRN002"
    name = "kernel-global-mutation"
    description = "@njit kernel declares global/nonlocal state"
    contract = (
        "loop/vector/jit byte-parity: kernel output depends only on "
        "kernel arguments, never on call order or module state"
    )

    def check_kernel(
        self,
        context: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        origin: str,
    ) -> Iterator[Finding]:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(sub, ast.Global) else "nonlocal"
                names = ", ".join(sub.names)
                yield self.finding(
                    context,
                    sub.lineno,
                    sub.col_offset,
                    f"{origin} declares `{kind} {names}` — kernel output "
                    f"would depend on call order",
                    "pass the state in as an argument and return (or "
                    "write into) an output array",
                )


@register
class KernelUnsupportedOpRule(_KernelRule):
    """KRN003: whitelisted numpy ops and scalar Python only."""

    rule_id = "KRN003"
    name = "kernel-unsupported-op"
    description = (
        "@njit kernel calls a non-whitelisted numpy op or uses a "
        "Python-object construct"
    )
    contract = (
        "loop/vector/jit byte-parity: kernels use only constructs whose "
        "compiled and interpreted semantics are identical"
    )

    def check_kernel(
        self,
        context: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        origin: str,
    ) -> Iterator[Finding]:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                resolved = context.call_name(sub)
                if (
                    resolved is not None
                    and resolved.startswith("numpy.")
                    and resolved.split(".")[1] not in KERNEL_NP_WHITELIST
                ):
                    member = resolved.split(".", 1)[1]
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} calls np.{member}, which is not on the "
                        f"kernel whitelist",
                        "hoist it to the host, or extend "
                        "repro.lint.rules_kernel.KERNEL_NP_WHITELIST "
                        "after proving compiled==interpreted equivalence",
                    )
                elif (
                    isinstance(sub.func, ast.Name)
                    and sub.func.id in _FORBIDDEN_BUILTINS
                ):
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} calls {sub.func.id}() — object mode / "
                        f"process state inside a kernel",
                        "keep I/O and reflection on the host side",
                    )
                continue
            for node_type, label in _OBJECT_CONSTRUCTS:
                if isinstance(sub, node_type):
                    yield self.finding(
                        context,
                        sub.lineno,
                        sub.col_offset,
                        f"{origin} contains a {label} — compiled and "
                        f"interpreted semantics can diverge",
                        "restructure with arrays/scalars, or split the "
                        "object-mode part onto the host",
                    )
                    break
