"""The unit of lint output: one :class:`Finding` per violation.

A finding pins a rule violation to an exact ``file:line:col`` location
and carries the machine-readable rule id (what CI gates and inline
``# repro-lint: disable=...`` comments match on), a human message, and
a fix hint explaining how to restore the contract the rule protects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Severity levels, mirrored in the JSON output schema.
ERROR = "error"
WARNING = "warning"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        File the finding is in (as given to the driver).
    line / col:
        1-indexed line and 0-indexed column of the offending node.
    rule_id:
        Stable machine id (``RNG001``, ``KRN002``, ...) — the key that
        suppression comments and the JSON output match on.
    severity:
        ``"error"`` findings fail the lint run; ``"warning"`` findings
        are reported but do not (none of the initial battery warns —
        every reproducibility contract here is load-bearing).
    message:
        What is wrong, in terms of the violated contract.
    fix_hint:
        How to fix it (or how to suppress it when it is a justified
        false positive).
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    fix_hint: str = field(default="")

    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report ordering: path, line, col, rule."""
        return (self.path, self.line, self.col, self.rule_id)

    def severity_rank(self) -> int:
        """0 for errors, 1 for warnings (for summaries)."""
        return _SEVERITY_ORDER.get(self.severity, 1)

    def render(self) -> str:
        """One-line text rendering (``path:line:col: ID message [hint]``)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.fix_hint:
            text += f" [{self.fix_hint}]"
        return text

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping (pinned by ``tests/test_lint_cli.py``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }
