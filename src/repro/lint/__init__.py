"""``repro.lint`` — determinism & backend-parity static analysis.

This repo's reproducibility guarantees — bitwise-identical
loop/vector/jit stepping, explicit RNG threading, content-addressed
policy caching, byte-exact checkpoint/resume — are promised in module
docstrings and enforced by runtime tests.  This package checks them
*structurally*, before anything executes: an AST-based rule battery
(:mod:`~repro.lint.registry`) walks every source file and fails on the
bug classes that silently break reproduction.

Rule families (``python -m repro.lint --list-rules`` for details):

=========  ==========================================================
``RNG00x``  explicit RNG threading (no legacy ``np.random``, no
            ambient/time-based seeding, generators passed in)
``KRN00x``  ``@njit`` kernel purity (host-drawn uniforms, no global
            state, whitelisted ops only) along the kernel call graph
``HSH00x``  hash stability (no unordered iteration or unsorted JSON
            feeding content digests)
``FLT001``  float-determinism (no reductions over unordered iterables
            in files declaring the bitwise contract)
``SCH001``  telemetry/checkpoint schema drift (writers checked
            against single-point field declarations)
``SUP001``  unused ``# repro-lint: disable=`` suppressions
=========  ==========================================================

Findings are suppressed inline with ``# repro-lint: disable=RULEID``
on the offending line; every suppression must actually suppress
something.  ``tests/test_lint_self.py`` keeps ``src/`` lint-clean.
"""

from __future__ import annotations

# Importing the rule modules registers the battery.
from repro.lint import (  # noqa: F401  (registration side effect)
    rules_float,
    rules_hash,
    rules_kernel,
    rules_rng,
    rules_schema,
)
from repro.lint.context import FileContext
from repro.lint.driver import (
    JSON_SCHEMA_VERSION,
    PARSE_ERROR_ID,
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.finding import ERROR, WARNING, Finding
from repro.lint.registry import Rule, get_rules, register, registered_rules
from repro.lint.suppress import UNUSED_SUPPRESSION_ID

__all__ = [
    "ERROR",
    "JSON_SCHEMA_VERSION",
    "PARSE_ERROR_ID",
    "UNUSED_SUPPRESSION_ID",
    "WARNING",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "registered_rules",
]
