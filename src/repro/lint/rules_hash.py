"""Hash-stability rules: content digests must not see unordered data.

:class:`~repro.runtime.policy_cache.PolicyCache` addresses LP solves —
and the fleet controller groups devices — by SHA-256 content digests;
checkpoints promise byte-exact resume.  Feeding a digest from an
unordered iterable (a ``set``, an unsorted directory listing) or from
``json.dumps`` without ``sort_keys=True`` makes the "same" content
hash differently across runs, silently defeating the cache and the
byte-exact contracts.

A function is a **hash context** when it calls into :mod:`hashlib` or
calls a function whose name says it digests (``*_hash*`` /
``*signature*``); the rules apply only there, so ordinary set algebra
elsewhere stays untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register

#: Callee name fragments that mark a function as digest-feeding.
_HASH_NAME_FRAGMENTS = ("hash", "signature", "digest", "fingerprint")

#: Calls returning filesystem listings in OS-dependent order.
_UNORDERED_LISTING_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_UNORDERED_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})


def _callee_is_hashy(context: FileContext, node: ast.Call) -> bool:
    resolved = context.call_name(node)
    if resolved is not None and resolved.startswith("hashlib."):
        return True
    raw = context.dotted(node.func)
    if raw is None:
        return False
    tail = raw.rsplit(".", 1)[-1].lower()
    return any(fragment in tail for fragment in _HASH_NAME_FRAGMENTS)


def hash_context_functions(
    context: FileContext,
) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions that (transitively spelled) feed a content digest."""
    return [
        func
        for func in context.function_defs()
        if any(
            isinstance(node, ast.Call) and _callee_is_hashy(context, node)
            for node in ast.walk(func)
        )
    ]


def _unordered_reason(context: FileContext, node: ast.AST) -> str | None:
    """Why ``node`` is statically known to iterate in unstable order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return f"a {node.func.id}() call"
        resolved = context.call_name(node)
        if resolved in _UNORDERED_LISTING_CALLS:
            return f"{resolved}() (filesystem order)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_LISTING_METHODS
        ):
            return f".{node.func.attr}() (filesystem order)"
    return None


def _set_assigned_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef, context: FileContext
) -> set[str]:
    """Local names assigned from a statically-unordered expression."""
    names: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _unordered_reason(
            context, node.value
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


@register
class UnorderedHashIterationRule(Rule):
    """HSH001: never iterate unordered collections into a digest."""

    rule_id = "HSH001"
    name = "unordered-hash-iteration"
    description = (
        "hash-feeding function iterates a set or a filesystem listing "
        "without sorting"
    )
    contract = (
        "content-addressed caching / byte-exact checkpoints: equal "
        "content must produce equal digests on every run"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for func in hash_context_functions(context):
            set_names = _set_assigned_names(func, context)
            iter_exprs: list[ast.AST] = []
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iter_exprs.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iter_exprs.extend(gen.iter for gen in node.generators)
            for expr in iter_exprs:
                reason = _unordered_reason(context, expr)
                if reason is None and isinstance(expr, ast.Name):
                    if expr.id in set_names:
                        reason = f"{expr.id!r}, assigned from a set"
                if reason is None:
                    continue
                yield self.finding(
                    context,
                    expr.lineno,
                    expr.col_offset,
                    f"hash-feeding function {func.name}() iterates "
                    f"{reason} — element order is not stable",
                    "wrap the iterable in sorted(...) so the digest "
                    "sees a pinned order",
                )


@register
class UnsortedJsonHashRule(Rule):
    """HSH002: ``json.dumps`` feeding a digest needs ``sort_keys=True``."""

    rule_id = "HSH002"
    name = "unsorted-json-hash"
    description = (
        "hash-feeding function serializes JSON without sort_keys=True"
    )
    contract = (
        "content-addressed caching: dict construction order must not "
        "leak into content digests"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for func in hash_context_functions(context):
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                if context.call_name(node) != "json.dumps":
                    continue
                sorted_keys = any(
                    keyword.arg == "sort_keys"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                if sorted_keys:
                    continue
                yield self.finding(
                    context,
                    node.lineno,
                    node.col_offset,
                    f"json.dumps in hash-feeding function {func.name}() "
                    f"without sort_keys=True — key order leaks into the "
                    f"digest",
                    "pass sort_keys=True (and a pinned separators=) so "
                    "equal mappings serialize identically",
                )
