"""CLI front end for the linter (``repro-dpm lint`` / ``python -m repro.lint``).

Exit codes follow the usual analyzer convention:

* ``0`` — every linted file is clean;
* ``1`` — findings were reported;
* ``2`` — the run itself failed (missing path, unknown rule id).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.lint.driver import lint_paths
from repro.lint.registry import registered_rules


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the ``lint`` arguments on ``parser`` (shared with repro-dpm)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files/directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a lint run for parsed CLI arguments."""
    if args.list_rules:
        for rule_id, cls in registered_rules().items():
            print(f"{rule_id}  {cls.name}: {cls.description}")
            print(f"        contract: {cls.contract}")
        return 0
    select = None
    if args.select:
        select = [
            rule_id.strip()
            for rule_id in str(args.select).split(",")
            if rule_id.strip()
        ]
    try:
        report = lint_paths(args.paths, select=select)
    except (FileNotFoundError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & backend-parity static analyzer for the "
            "repro package"
        ),
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))
