"""Per-file and whole-package lint drivers.

:func:`lint_file` runs the rule battery over one source file;
:func:`lint_paths` walks files and directories (in sorted order — the
linter practices the determinism it preaches) and folds everything
into a :class:`LintReport` with text and JSON renderings.

Unparseable files produce a single :data:`PARSE_ERROR_ID` finding
instead of crashing the run: a syntax error in one file must not hide
findings in the other hundred.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.context import FileContext
from repro.lint.finding import ERROR, Finding
from repro.lint.registry import Rule, get_rules
from repro.lint.suppress import apply_suppressions

#: Synthetic rule id for files the parser rejects.
PARSE_ERROR_ID = "LNT000"

#: JSON output schema version (bump on incompatible changes; pinned by
#: ``tests/test_lint_cli.py``).
JSON_SCHEMA_VERSION = 1

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache"}


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        """True when no error-severity findings survived."""
        return not any(f.severity == ERROR for f in self.findings)

    def counts_by_rule(self) -> dict[str, int]:
        """``{rule_id: finding count}``, id-sorted."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule_id] = counts.get(finding.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def render_text(self) -> str:
        """Human-readable report (one line per finding + summary)."""
        lines = [finding.render() for finding in self.findings]
        if self.findings:
            summary = ", ".join(
                f"{rule_id} x{count}"
                for rule_id, count in self.counts_by_rule().items()
            )
            lines.append(
                f"{len(self.findings)} finding(s) in "
                f"{self.files_checked} file(s): {summary}"
            )
        else:
            lines.append(f"{self.files_checked} file(s) lint clean")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON document (schema pinned by ``tests/test_lint_cli.py``)."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "clean": self.clean,
            "counts": self.counts_by_rule(),
            "findings": [finding.as_dict() for finding in self.findings],
        }


def lint_source(
    path: str, source: str, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one in-memory source blob (the fixture-test entry point)."""
    if rules is None:
        rules = get_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=PARSE_ERROR_ID,
                severity=ERROR,
                message=f"file does not parse: {exc.msg}",
                fix_hint="fix the syntax error so the file can be analyzed",
            )
        ]
    context = FileContext(path, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    return apply_suppressions(context, findings)


def lint_file(path: str | Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(str(path), source, rules)


def _iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py" or path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    missing = [str(path) for path in sorted(files) if not path.is_file()]
    if missing:
        raise FileNotFoundError(f"no such file: {', '.join(missing)}")
    return sorted(files)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
) -> LintReport:
    """Lint files and directory trees into one :class:`LintReport`."""
    if rules is None:
        rules = get_rules(None if select is None else list(select))
    report = LintReport()
    for file_path in _iter_python_files(paths):
        report.findings.extend(lint_file(file_path, rules))
        report.files_checked += 1
    report.findings.sort(key=Finding.sort_key)
    return report
