"""Float-determinism rules for files declaring the bitwise contract.

Floating-point addition is not associative: summing the same values in
a different order produces different last-bit results.  Files whose
module docstring promises bitwise / byte-identical behaviour (the
loop/vector/jit backends, telemetry, checkpointing) therefore must not
accumulate floats over iterables whose order is not pinned.  Scoping
to contract-declaring files keeps ordinary statistics code (where
last-bit drift is irrelevant) out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register
from repro.lint.rules_hash import _unordered_reason

#: Order-sensitive reduction callables (builtin + numpy spellings).
_REDUCTIONS = frozenset({"sum"})
_REDUCTION_DOTTED = frozenset(
    {"math.fsum", "numpy.sum", "numpy.nansum", "numpy.cumsum", "numpy.prod"}
)


@register
class UnorderedFloatReductionRule(Rule):
    """FLT001: no float reductions over unordered iterables."""

    rule_id = "FLT001"
    name = "unordered-float-reduction"
    description = (
        "sum()/np.sum() over a set or other unordered iterable in a "
        "file declaring the bitwise contract"
    )
    contract = (
        "loop/vector/jit byte-parity: float accumulation order is "
        "pinned, so totals are bitwise-reproducible"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.declares_bitwise_contract:
            return
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            name: str | None = None
            if isinstance(node.func, ast.Name) and node.func.id in _REDUCTIONS:
                name = node.func.id
            else:
                resolved = context.call_name(node)
                if resolved in _REDUCTION_DOTTED:
                    name = resolved
            if name is None:
                continue
            target = node.args[0]
            reason = _unordered_reason(context, target)
            if reason is None and isinstance(target, ast.GeneratorExp):
                # sum(f(x) for x in {...}) — look through the genexp.
                reason = _unordered_reason(
                    context, target.generators[0].iter
                )
            if reason is None:
                continue
            yield self.finding(
                context,
                node.lineno,
                node.col_offset,
                f"{name}() reduces over {reason} in a file declaring "
                f"the bitwise contract — float addition order is "
                f"unpinned",
                "reduce over sorted(...) or an explicitly-ordered "
                "array so the summation tree is reproducible",
            )
