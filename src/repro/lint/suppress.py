"""Inline suppressions: ``# repro-lint: disable=RULE`` with usage audit.

A finding is suppressed when its line carries a disable directive
naming its rule id.  Suppressions are deliberately line-scoped and
id-explicit — no file-wide or bare ``disable`` — so every accepted
exception is visible exactly where it applies and says exactly what it
excuses.  A directive that silences nothing is itself a finding
(:data:`UNUSED_SUPPRESSION_ID`): stale suppressions rot into blind
spots, which is how "checked" code quietly stops being checked.
"""

from __future__ import annotations

from repro.lint.context import FileContext
from repro.lint.finding import ERROR, Finding

#: Rule id of the unused-suppression audit findings.
UNUSED_SUPPRESSION_ID = "SUP001"


def apply_suppressions(
    context: FileContext, findings: list[Finding]
) -> list[Finding]:
    """Filter suppressed findings; append unused-suppression findings.

    Returns the surviving findings (sorted by location).  Each disable
    directive must suppress at least one finding per rule id it names;
    ids that match nothing produce one SUP001 finding each.  SUP001
    itself cannot be suppressed — deleting the stale directive *is*
    the fix.
    """
    kept: list[Finding] = []
    for finding in findings:
        suppression = context.suppressions.get(finding.line)
        if suppression is not None and finding.rule_id in suppression.rule_ids:
            suppression.used.add(finding.rule_id)
            continue
        kept.append(finding)
    for line in sorted(context.suppressions):
        suppression = context.suppressions[line]
        for rule_id in suppression.rule_ids:
            if rule_id in suppression.used:
                continue
            kept.append(
                Finding(
                    path=context.path,
                    line=line,
                    col=0,
                    rule_id=UNUSED_SUPPRESSION_ID,
                    severity=ERROR,
                    message=(
                        f"suppression of {rule_id} matches no finding "
                        f"on this line"
                    ),
                    fix_hint=(
                        "delete the stale `# repro-lint: disable` "
                        "directive (or fix its rule id)"
                    ),
                )
            )
    return sorted(kept, key=Finding.sort_key)
