"""RNG-discipline rules: randomness must be explicit and caller-owned.

Every stochastic path in this repo threads an explicit
:class:`numpy.random.Generator` (see :mod:`repro.sim.rng`): seeded at
the experiment boundary, spawned per device/replication with
:class:`numpy.random.SeedSequence` keys, and passed down — never
created ambiently inside the code that draws.  These rules make that
contract machine-checked:

* :class:`NumpyLegacyRandomRule` (RNG001) — the module-level
  ``np.random.*`` legacy API draws from one hidden global stream;
* :class:`AmbientEntropyRule` (RNG002) — stdlib ``random`` and
  time/pid-based seeding are unreproducible by construction;
* :class:`EntropySeededGeneratorRule` (RNG003) — ``default_rng()``
  with no seed pulls OS entropy, so two runs can never agree;
* :class:`UnthreadedGeneratorRule` (RNG004) — a function that draws
  from a generator it neither received nor created locally is drawing
  from ambient state the caller cannot control.

:class:`~repro.sim.rng.UniformSource` implementations
(:class:`~repro.sim.rng.GeneratorSource`,
:class:`~repro.sim.rng.FanInSource`,
:class:`~repro.sim.rng_batched.BatchedPCG64Source`) are sanctioned
generator carriers: they hold caller-supplied generators and re-expose
the draw surface, so the same threading discipline applies to them —
``random``/``random_raw``/``uniform_block`` on a source count as draws
(policed by RNG004 like any generator method), and a source must reach
its draw site as a parameter, local, or instance attribute, never as
module state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, parameter_names
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register

#: numpy.random members that are part of the explicit-Generator API
#: (everything else on the module is the legacy global-state surface).
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: Calls that construct a generator; their seeding is policed.
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "repro.sim.rng.make_rng",
        "repro.sim.rng.spawn_rngs",
    }
)

#: Short spellings of the constructors (``from repro.sim.rng import
#: make_rng`` resolves to the dotted form; these cover same-module use).
GENERATOR_CONSTRUCTOR_TAILS = frozenset({"default_rng", "make_rng", "spawn_rngs"})

#: Wall-clock / process-identity entropy sources that must never seed.
ENTROPY_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.perf_counter",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "os.urandom",
        "os.getpid",
        "uuid.uuid4",
    }
)

#: Generator (and :class:`~repro.sim.rng.UniformSource`) methods that
#: consume a stream.  ``random`` doubles as the UniformSource protocol
#: method; ``random_raw`` consumes the underlying bit generator;
#: ``uniform_block`` is the stacked draw of
#: :class:`~repro.sim.rng_batched.BatchedDeviceStreams` — all three
#: advance caller-owned stream state, so drawing them through an
#: ambient name is exactly the leak RNG004 exists to catch.
DRAW_METHODS = frozenset(
    {
        "random",
        "random_raw",
        "uniform_block",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "standard_normal",
        "standard_exponential",
        "normal",
        "uniform",
        "exponential",
        "poisson",
        "binomial",
        "multinomial",
        "spawn",
    }
)


def _own_nodes(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Nodes of ``func``'s body without descending into nested defs.

    Nested function definitions are yielded (so callers can recurse)
    but their bodies are their own scope and are not walked.
    """
    stack: list[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _constructor_name(context: FileContext, node: ast.Call) -> str | None:
    """Dotted (or local-tail) name when ``node`` builds a generator."""
    resolved = context.call_name(node)
    if resolved in GENERATOR_CONSTRUCTORS:
        return resolved
    raw = context.dotted(node.func)
    if raw is not None and raw in GENERATOR_CONSTRUCTOR_TAILS:
        return raw
    return None


@register
class NumpyLegacyRandomRule(Rule):
    """RNG001: no ``np.random.<fn>`` legacy global-stream calls."""

    rule_id = "RNG001"
    name = "numpy-legacy-random"
    description = (
        "module-level numpy.random functions (seed/rand/choice/...) "
        "draw from one hidden global RandomState"
    )
    contract = (
        "explicit RNG threading: all randomness flows from caller-owned "
        "numpy.random.Generator objects (repro.sim.rng)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Attribute):
                continue
            resolved = context.resolve(node)
            if resolved is None or not resolved.startswith("numpy.random."):
                continue
            member = resolved.split(".")[2]
            if member in ALLOWED_NP_RANDOM:
                continue
            yield self.finding(
                context,
                node.lineno,
                node.col_offset,
                f"np.random.{member} uses the legacy global random state",
                "thread an explicit numpy.random.Generator "
                "(repro.sim.rng.make_rng) instead",
            )


@register
class AmbientEntropyRule(Rule):
    """RNG002: no stdlib ``random`` and no time/pid-based seeding."""

    rule_id = "RNG002"
    name = "ambient-entropy"
    description = (
        "stdlib random module usage, or seeding a generator from "
        "wall-clock/process identity"
    )
    contract = (
        "reproducible seeding: a run is a pure function of its declared "
        "seed, never of when or where it ran"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Attribute):
                resolved = context.resolve(node)
                if (
                    resolved is not None
                    and resolved.startswith("random.")
                    and context.aliases.get(resolved.split(".")[0]) == "random"
                ):
                    member = resolved.split(".", 1)[1]
                    yield self.finding(
                        context,
                        node.lineno,
                        node.col_offset,
                        f"stdlib random.{member} draws from the "
                        f"process-global Mersenne Twister",
                        "use a threaded numpy.random.Generator "
                        "(repro.sim.rng) instead of the random module",
                    )
            elif isinstance(node, ast.Call):
                if _constructor_name(context, node) is None:
                    continue
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for sub in ast.walk(arg):
                        if not isinstance(sub, ast.Call):
                            continue
                        source = context.resolve(sub.func)
                        if source in ENTROPY_SOURCES:
                            yield self.finding(
                                context,
                                sub.lineno,
                                sub.col_offset,
                                f"generator seeded from {source}() — the "
                                f"seed changes every run",
                                "accept an explicit integer seed or "
                                "SeedSequence from the caller",
                            )


@register
class EntropySeededGeneratorRule(Rule):
    """RNG003: ``default_rng()`` / ``make_rng()`` without a seed."""

    rule_id = "RNG003"
    name = "entropy-seeded-generator"
    description = (
        "generator constructed with no seed argument (or literal None) "
        "pulls fresh OS entropy"
    )
    contract = (
        "reproducible seeding: generators are built from caller-supplied "
        "seeds or SeedSequence spawn keys, never fresh entropy"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _constructor_name(context, node)
            if name is None:
                continue
            entropy = False
            if not node.args and not node.keywords:
                entropy = True
            elif node.args and len(node.args) >= 1:
                first = node.args[0]
                entropy = isinstance(first, ast.Constant) and first.value is None
            if not entropy:
                continue
            tail = name.rsplit(".", 1)[-1]
            yield self.finding(
                context,
                node.lineno,
                node.col_offset,
                f"{tail}() with no seed draws fresh OS entropy — two runs "
                f"can never reproduce each other",
                "pass the caller's seed/Generator/SeedSequence through "
                "(repro.sim.rng.make_rng(seed))",
            )


@register
class UnthreadedGeneratorRule(Rule):
    """RNG004: functions drawing randomness must receive their generator.

    A function may draw from: a parameter (of itself or an enclosing
    function — explicit threading), a local it constructed from a
    policed constructor (RNG003 covers bad construction), an attribute
    (``self._rng`` — instance state captured at construction), or a
    subscript (per-device generator arrays).  Drawing from a bare name
    that is none of these means the randomness comes from module/global
    state the caller cannot control or checkpoint.  The same applies to
    :class:`~repro.sim.rng.UniformSource` objects — a fan-in or batched
    source *is* a bundle of caller-owned generators, and its ``random``
    / ``uniform_block`` draws advance their streams just as directly.
    """

    rule_id = "RNG004"
    name = "unthreaded-generator"
    description = (
        "function draws randomness from an ambient name it neither "
        "received as a parameter nor assigned locally"
    )
    contract = (
        "explicit RNG threading: functions drawing randomness accept a "
        "Generator/SeedSequence parameter (device_rng spawn keys)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        nested: set[ast.AST] = set()
        for func in context.function_defs():
            for node in _own_nodes(func):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(node)
        for func in context.function_defs():
            if func not in nested:
                yield from self._check_function(context, func, set())

    def _check_function(
        self,
        context: FileContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        enclosing: set[str],
    ) -> Iterator[Finding]:
        own = list(_own_nodes(func))
        local = set(enclosing) | parameter_names(func)
        # Any name assigned anywhere in the body counts as locally
        # owned — construction discipline is RNG003's job, and
        # ``rng = self._rng`` style rebinding is legitimate threading.
        for node in own:
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local.add(node.id)
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            if node.func.attr not in DRAW_METHODS:
                continue
            receiver = node.func.value
            if not isinstance(receiver, ast.Name):
                continue  # self._rng.random(), rngs[i].random(): fine
            name = receiver.id
            if name in local or context.resolve(receiver) is not None:
                # Imported modules are other rules' business (RNG001/2).
                continue
            yield self.finding(
                context,
                node.lineno,
                node.col_offset,
                f"{func.name}() draws via {name}.{node.func.attr}() but "
                f"{name!r} is neither a parameter nor assigned locally",
                "accept the generator as a parameter (or derive it from "
                "one with repro.sim.rng / device_rng)",
            )
        for node in own:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(context, node, local)
