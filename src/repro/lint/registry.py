"""The plugin-style rule registry.

A rule is a class deriving from :class:`Rule` with a stable
``rule_id``, a one-line ``description``, the repo ``contract`` it
protects, and a ``check(context)`` generator yielding
:class:`~repro.lint.finding.Finding` objects.  Registering is one
decorator::

    @register
    class MyRule(Rule):
        rule_id = "XYZ001"
        ...

The driver instantiates every registered rule (or a ``--select``
subset) per run; rules are stateless between files.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, TypeVar

from repro.lint.context import FileContext
from repro.lint.finding import ERROR, Finding

RuleType = TypeVar("RuleType", bound="type[Rule]")

_REGISTRY: dict[str, type["Rule"]] = {}


class Rule(ABC):
    """Base class for one static-analysis rule."""

    #: Stable machine id (``RNG001``); suppression comments match on it.
    rule_id: str = ""
    #: Short kebab-case name for listings.
    name: str = ""
    #: One-line description of what the rule flags.
    description: str = ""
    #: Which repo reproducibility contract the rule protects.
    contract: str = ""
    #: Findings default to this severity.
    severity: str = ERROR

    @abstractmethod
    def check(self, context: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def finding(
        self,
        context: FileContext,
        line: int,
        col: int,
        message: str,
        fix_hint: str = "",
    ) -> Finding:
        """Construct a finding stamped with this rule's id/severity."""
        return Finding(
            path=context.path,
            line=line,
            col=col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            fix_hint=fix_hint,
        )


def register(cls: RuleType) -> RuleType:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id!r}: "
            f"{existing.__name__} vs {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def registered_rules() -> dict[str, type[Rule]]:
    """The registry as an id-sorted mapping (a copy)."""
    return dict(sorted(_REGISTRY.items()))


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate registered rules, optionally a ``select`` id subset.

    Raises ``KeyError`` naming the unknown id when ``select`` contains
    one, so CLI typos fail loudly instead of silently linting nothing.
    """
    if select is None:
        return [cls() for _, cls in sorted(_REGISTRY.items())]
    rules: list[Rule] = []
    for rule_id in select:
        cls = _REGISTRY.get(rule_id)
        if cls is None:
            known = ", ".join(sorted(_REGISTRY))
            raise KeyError(
                f"unknown rule id {rule_id!r} (known rules: {known})"
            )
        rules.append(cls())
    return rules
