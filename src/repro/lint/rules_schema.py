"""Schema-drift rules: snapshot writers checked against declarations.

Telemetry snapshots and checkpoint payloads are consumed far from
where they are written (dashboards, ``compare_baselines``, resume
paths), so a writer silently growing or renaming a field is a
cross-layer bug.  The convention: the field set is declared **once**
as a module-level ``frozenset`` constant, and every writer carries a
marker comment on its ``def`` line::

    SNAPSHOT_FIELDS = frozenset({"tick", "metrics", ...})

    def snapshot(...):  # repro-lint: schema=SNAPSHOT_FIELDS
        ...

Cross-module writers reference the declaring module explicitly
(``# repro-lint: schema=repro.runtime.telemetry:SNAPSHOT_FIELDS``).
The rule statically collects every top-level key the function writes
into its record — dict-literal keys of the returned value and
``record["key"] = ...`` subscript stores — and fails on keys missing
from the declaration.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.finding import Finding
from repro.lint.registry import Rule, register


def _constant_strings(node: ast.AST) -> tuple[set[str], bool]:
    """String elements of a set/frozenset/tuple/list literal.

    Returns ``(strings, fully_static)`` — ``fully_static`` is False
    when any element is not a string constant.
    """
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple", "list") and node.args:
            return _constant_strings(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        strings: set[str] = set()
        static = True
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                strings.add(element.value)
            else:
                static = False
        return strings, static
    return set(), False


def _find_declaration(
    tree: ast.Module, name: str
) -> tuple[set[str], bool] | None:
    """Locate ``name = frozenset({...})`` at module level."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        if value is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                return _constant_strings(value)
    return None


def _written_keys(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, int, int]]:
    """Top-level string keys the function writes into its record.

    The record is what the function returns (a dict literal, or a name
    whose dict-literal assignment and subscript stores are collected).
    Functions that never return their record (checkpoint writers that
    serialize it instead) fall back to every dict-literal assignment.
    """
    returned_names: set[str] = set()
    returned_dicts: list[ast.Dict] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
            elif isinstance(node.value, ast.Dict):
                returned_dicts.append(node.value)

    keys: list[tuple[str, int, int]] = []

    def _dict_keys(literal: ast.Dict) -> None:
        for key in literal.keys:
            if (
                key is not None
                and isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                keys.append((key.value, key.lineno, key.col_offset))

    record_names = set(returned_names)
    if not returned_names and not returned_dicts:
        # Serialized-not-returned records: every dict-literal local.
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Dict
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        record_names.add(target.id)

    for literal in returned_dicts:
        _dict_keys(literal)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in record_names:
                    _dict_keys(node.value)
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in record_names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.append(
                        (target.slice.value, target.lineno, target.col_offset)
                    )
    return keys


@register
class SchemaDriftRule(Rule):
    """SCH001/SCH002 driver: writers vs declared snapshot field sets."""

    rule_id = "SCH001"
    name = "schema-field-drift"
    description = (
        "snapshot/checkpoint writer emits a field missing from its "
        "declared schema constant"
    )
    contract = (
        "telemetry/checkpoint schema: field sets are declared once; "
        "writers cannot silently grow or rename them"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.schema_markers:
            return
        functions_by_line = {
            func.lineno: func for func in context.function_defs()
        }
        for line, target in sorted(context.schema_markers.items()):
            func = functions_by_line.get(line)
            if func is None:
                yield self.finding(
                    context,
                    line,
                    0,
                    f"schema marker {target!r} is not attached to a "
                    f"function definition line",
                    "put `# repro-lint: schema=NAME` on the def line of "
                    "the writer it checks",
                )
                continue
            declaration = self._resolve_declaration(context, target)
            if declaration is None:
                yield self.finding(
                    context,
                    line,
                    0,
                    f"schema declaration {target!r} could not be "
                    f"resolved to a module-level frozenset of field "
                    f"names",
                    "declare `NAME = frozenset({...})` at module level "
                    "(cross-module: schema=pkg.mod:NAME)",
                )
                continue
            declared, fully_static = declaration
            if not fully_static:
                yield self.finding(
                    context,
                    line,
                    0,
                    f"schema declaration {target!r} contains non-string "
                    f"elements — the field set must be fully static",
                    "declare every field as a string literal",
                )
                continue
            for key, key_line, key_col in _written_keys(func):
                if key in declared:
                    continue
                yield self.finding(
                    context,
                    key_line,
                    key_col,
                    f"{func.name}() writes field {key!r}, which is not "
                    f"in {target}",
                    "add the field to the declaration (and to every "
                    "consumer) or fix the key",
                )

    def _resolve_declaration(
        self, context: FileContext, target: str
    ) -> tuple[set[str], bool] | None:
        if ":" not in target:
            return _find_declaration(context.tree, target)
        module_path, _, name = target.partition(":")
        root = context.package_root()
        if root is None:
            return None
        candidate = root.joinpath(*module_path.split("."))
        for path in (candidate.with_suffix(".py"), candidate / "__init__.py"):
            if path.exists():
                try:
                    tree = ast.parse(
                        path.read_text(encoding="utf-8"), filename=str(path)
                    )
                except SyntaxError:  # pragma: no cover - broken dependency
                    return None
                return _find_declaration(tree, name)
        return None


def declaration_for_test(path: Path, name: str) -> set[str] | None:
    """Test helper: read a declared field set from a module file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found = _find_declaration(tree, name)
    return None if found is None else found[0]
