"""Per-file analysis context shared by every rule.

A :class:`FileContext` is built once per linted file and hands rules
the parsed AST plus the cross-cutting facts most of them need:

* an **import alias table** so ``np.random.seed`` resolves to
  ``numpy.random.seed`` however numpy was imported (``import numpy as
  np``, ``from numpy import random``, ...).  Resolution is
  import-verified: a local variable that merely *shadows* a module
  name never resolves, which keeps rules from firing on coincidental
  attribute spellings;
* the ``# repro-lint:`` **comment directives** (inline suppressions
  and schema markers), collected with :mod:`tokenize` so they survive
  anywhere a comment is legal;
* whether the module **declares the bitwise contract** (its docstring
  promises bitwise/byte-identical results), which scopes the
  float-determinism rules to the files that actually make the promise.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: Comment directive syntax: ``# repro-lint: disable=RNG001,HSH002``
#: or ``# repro-lint: schema=SNAPSHOT_FIELDS`` /
#: ``schema=repro.runtime.telemetry:SNAPSHOT_FIELDS``.  Anchored to the
#: start of the comment so prose *mentioning* a directive (like this
#: very comment) is not itself a directive.
_DIRECTIVE_RE = re.compile(r"\A#\s*repro-lint:\s*(?P<body>.+)$")
_DISABLE_RE = re.compile(r"disable=(?P<ids>[A-Z0-9,\s]+)")
_SCHEMA_RE = re.compile(r"schema=(?P<target>[\w.:]+)")

#: Module docstring phrases that declare the bitwise-reproducibility
#: contract (scoping marker for the float-determinism rules).
_BITWISE_PHRASES = ("bitwise", "byte-identical", "byte-for-byte", "byte for byte")


@dataclass
class Suppression:
    """One ``disable=`` directive: which rules it silences on its line."""

    line: int
    rule_ids: tuple[str, ...]
    used: set[str] = field(default_factory=set)


class FileContext:
    """Everything the rule battery knows about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        docstring = ast.get_docstring(tree) or ""
        lowered = docstring.lower()
        #: True when the module docstring promises bitwise results.
        self.declares_bitwise_contract = any(
            phrase in lowered for phrase in _BITWISE_PHRASES
        )
        #: local name -> fully dotted import target.
        self.aliases: dict[str, str] = {}
        self._collect_aliases(tree)
        #: def-line -> schema declaration target (``NAME`` or ``mod:NAME``).
        self.schema_markers: dict[int, str] = {}
        #: line -> suppression directive.
        self.suppressions: dict[int, Suppression] = {}
        self._collect_directives(source)

    # ------------------------------------------------------------------
    # imports
    # ------------------------------------------------------------------
    def _collect_aliases(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    local = name.asname or name.name.split(".", 1)[0]
                    # ``import numpy.random`` binds ``numpy``; map the
                    # bound name to its own top-level module path.
                    target = name.name if name.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: keep the tail only
                    base = node.module or ""
                else:
                    base = node.module or ""
                for name in node.names:
                    if name.name == "*":
                        continue
                    local = name.asname or name.name
                    target = f"{base}.{name.name}" if base else name.name
                    self.aliases[local] = target

    def dotted(self, node: ast.AST) -> str | None:
        """Raw dotted spelling of a Name/Attribute chain (un-resolved)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolve(self, node: ast.AST) -> str | None:
        """Import-verified dotted name of a Name/Attribute chain.

        ``np.random.seed`` -> ``numpy.random.seed`` when ``np`` was
        imported as numpy; ``None`` when the chain's root is not an
        imported name (locals and builtins never resolve).
        """
        raw = self.dotted(node)
        if raw is None:
            return None
        root, _, rest = raw.partition(".")
        target = self.aliases.get(root)
        if target is None:
            return None
        return f"{target}.{rest}" if rest else target

    def call_name(self, node: ast.Call) -> str | None:
        """Import-verified dotted name of a call's callee (or None)."""
        return self.resolve(node.func)

    # ------------------------------------------------------------------
    # comment directives
    # ------------------------------------------------------------------
    def _collect_directives(self, source: str) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (token.start[0], token.string)
                for token in tokens
                if token.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for line, comment in comments:
            match = _DIRECTIVE_RE.match(comment)
            if match is None:
                continue
            body = match.group("body")
            disable = _DISABLE_RE.search(body)
            if disable is not None:
                rule_ids = tuple(
                    rule_id.strip()
                    for rule_id in disable.group("ids").split(",")
                    if rule_id.strip()
                )
                if rule_ids:
                    self.suppressions[line] = Suppression(line, rule_ids)
            schema = _SCHEMA_RE.search(body)
            if schema is not None:
                self.schema_markers[line] = schema.group("target")

    # ------------------------------------------------------------------
    # AST helpers shared by rules
    # ------------------------------------------------------------------
    def function_defs(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method definition in the file."""
        return [
            node
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    def module_functions(self) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
        """Top-level function definitions by name (kernel call graphs)."""
        return {
            node.name: node
            for node in self.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def package_root(self) -> Path | None:
        """Directory *containing* the linted file's top-level package.

        Walks up while ``__init__.py`` markers continue — the anchor
        cross-module ``schema=pkg.mod:NAME`` references resolve against.
        """
        here = Path(self.path).resolve().parent
        if not (here / "__init__.py").exists():
            return None
        while (here.parent / "__init__.py").exists():
            here = here.parent
        return here.parent


def parameter_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """All parameter names of a function definition."""
    args = node.args
    names = {arg.arg for arg in args.posonlyargs}
    names.update(arg.arg for arg in args.args)
    names.update(arg.arg for arg in args.kwonlyargs)
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names
