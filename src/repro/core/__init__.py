"""Core library: the paper's stochastic model and exact policy optimization.

The public surface mirrors the paper's structure:

* :class:`~repro.core.components.ServiceProvider` (Definition 3.1),
  :class:`~repro.core.components.ServiceRequester` (Definition 3.2) and
  :class:`~repro.core.components.ServiceQueue` (Definition 3.3) —
  the three component models;
* :class:`~repro.core.system.PowerManagedSystem` — the Markov composer
  producing the joint controlled chain of Section III (Eq. 4);
* :class:`~repro.core.costs.CostModel` — power / performance-penalty /
  request-loss metrics over (state, command) pairs (Section III-B);
* :class:`~repro.core.policy.MarkovPolicy` — randomized Markov
  stationary policies with exact closed-form evaluation;
* :class:`~repro.core.optimizer.PolicyOptimizer` — the LP formulations
  of Appendix A (POU / PO1 / PO2, LP2 / LP3 / LP4) and policy extraction
  (Eq. 16);
* :func:`~repro.core.pareto.trade_off_curve` — power-performance Pareto
  exploration (Section IV-A);
* :mod:`~repro.core.dynamic_programming` — value/policy iteration for
  the unconstrained problem, cross-validating the LP (Theorem A.1).
"""

from repro.core.average_cost import AverageCostOptimizer
from repro.core.components import (
    ServiceProvider,
    ServiceQueue,
    ServiceRequester,
    compose_requesters,
)
from repro.core.costs import (
    CostModel,
    sleep_while_busy_penalty,
    throughput_reward,
    waiting_time_penalty,
)
from repro.core.dynamic_programming import DPResult, policy_iteration, value_iteration
from repro.core.optimizer import (
    InfeasibleProblemError,
    OptimizationResult,
    PolicyOptimizer,
)
from repro.core.pareto import (
    ParetoCurve,
    ParetoPoint,
    min_achievable,
    simulate_curve,
    trade_off_curve,
)
from repro.core.pareto_sweep import ParetoSweepSolver, SweepStats
from repro.core.policy import MarkovPolicy, PolicyEvaluation, evaluate_policy
from repro.core.system import PowerManagedSystem, SystemState

__all__ = [
    "ServiceProvider",
    "ServiceRequester",
    "ServiceQueue",
    "compose_requesters",
    "PowerManagedSystem",
    "SystemState",
    "CostModel",
    "waiting_time_penalty",
    "throughput_reward",
    "sleep_while_busy_penalty",
    "MarkovPolicy",
    "PolicyEvaluation",
    "evaluate_policy",
    "PolicyOptimizer",
    "AverageCostOptimizer",
    "OptimizationResult",
    "InfeasibleProblemError",
    "ParetoCurve",
    "ParetoPoint",
    "ParetoSweepSolver",
    "SweepStats",
    "trade_off_curve",
    "simulate_curve",
    "min_achievable",
    "DPResult",
    "value_iteration",
    "policy_iteration",
]
