"""Cost metrics over (state, command) pairs (paper Section III-B).

A :class:`CostModel` is a named collection of ``(n_states, n_commands)``
cost matrices for a given :class:`~repro.core.system.PowerManagedSystem`.
By convention the optimizer understands three metric names:

* ``"power"`` — expected power per slice (the paper's ``m(s, a)``);
* ``"penalty"`` — the performance penalty per slice (the paper's
  ``g(x, a)``; default: queue length);
* ``"loss"`` — request-loss risk per slice (indicator of "SR issuing
  while queue full", paper Appendix A);
* ``"overflow"`` — expected number of requests actually lost to queue
  overflow per slice (a finer-grained loss metric derived from the
  queue law; used by the Appendix-B sensitivity studies, where the
  indicator saturates).

Arbitrary additional metrics can be registered and used as objectives or
constraints; everything downstream works off the matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.system import PowerManagedSystem
from repro.util.validation import ValidationError

POWER = "power"
PENALTY = "penalty"
LOSS = "loss"
OVERFLOW = "overflow"


class CostModel:
    """Named cost matrices for a power-managed system.

    Parameters
    ----------
    system:
        The composed system the costs refer to.
    metrics:
        Optional initial mapping of metric name to ``(n_states,
        n_commands)`` matrix.

    Examples
    --------
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> sorted(bundle.costs.metric_names)
    ['loss', 'overflow', 'penalty', 'power']
    """

    def __init__(self, system: PowerManagedSystem, metrics=None):
        if not isinstance(system, PowerManagedSystem):
            raise ValidationError("system must be a PowerManagedSystem")
        self._system = system
        self._metrics: dict[str, np.ndarray] = {}
        if metrics:
            for name, matrix in metrics.items():
                self.add_metric(name, matrix)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def standard(cls, system: PowerManagedSystem) -> "CostModel":
        """Power, queue-length penalty, loss indicator and overflow."""
        model = cls(system)
        model.add_metric(POWER, system.power_cost_matrix())
        model.add_metric(PENALTY, system.queue_length_penalty_matrix())
        model.add_metric(LOSS, system.request_loss_indicator_matrix())
        model.add_metric(OVERFLOW, system.expected_loss_matrix())
        return model

    def add_metric(self, name: str, matrix) -> None:
        """Register (or replace) a metric matrix under ``name``."""
        arr = np.asarray(matrix, dtype=float)
        expected = (self._system.n_states, self._system.n_commands)
        if arr.shape != expected:
            raise ValidationError(
                f"metric {name!r} must have shape {expected}, got {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError(f"metric {name!r} contains non-finite entries")
        self._metrics[str(name)] = arr.copy()

    def add_state_metric(self, name: str, state_values) -> None:
        """Register a metric that depends on the joint state only."""
        values = np.asarray(state_values, dtype=float)
        if values.shape != (self._system.n_states,):
            raise ValidationError(
                f"state metric {name!r} must have {self._system.n_states} "
                f"entries, got shape {values.shape}"
            )
        self.add_metric(
            name, np.repeat(values[:, None], self._system.n_commands, axis=1)
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def system(self) -> PowerManagedSystem:
        """The system these costs refer to."""
        return self._system

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Registered metric names."""
        return tuple(self._metrics)

    def metric(self, name: str) -> np.ndarray:
        """The ``(n_states, n_commands)`` matrix for ``name`` (copy)."""
        try:
            return self._metrics[str(name)].copy()
        except KeyError:
            raise KeyError(
                f"unknown metric {name!r}; registered: {sorted(self._metrics)}"
            ) from None

    def has_metric(self, name: str) -> bool:
        """True when ``name`` is registered."""
        return str(name) in self._metrics

    def evaluate(self, name: str, frequencies: np.ndarray) -> float:
        """Inner product of a metric with state-action frequencies."""
        matrix = self._metrics.get(str(name))
        if matrix is None:
            raise KeyError(
                f"unknown metric {name!r}; registered: {sorted(self._metrics)}"
            )
        freq = np.asarray(frequencies, dtype=float)
        if freq.shape != matrix.shape:
            raise ValidationError(
                f"frequencies must have shape {matrix.shape}, got {freq.shape}"
            )
        return float(np.sum(matrix * freq))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CostModel(metrics={sorted(self._metrics)})"


def sleep_while_busy_penalty(
    system: PowerManagedSystem, sleep_states, busy_requester_states
) -> np.ndarray:
    """Penalty 1 when the SP sleeps while the SR is busy (CPU case study).

    This is the performance penalty of paper Section VI-C: the
    undesirable event is a request arriving while the CPU is in the
    sleep state; no queue is involved.
    """
    sp_sleep = {system.provider.chain.state_index(s) for s in sleep_states}
    sr_busy = {system.requester.chain.state_index(r) for r in busy_requester_states}
    sp_of = system.provider_index_of_state
    sr_of = system.requester_index_of_state
    indicator = np.array(
        [
            1.0 if (sp_of[x] in sp_sleep and sr_of[x] in sr_busy) else 0.0
            for x in range(system.n_states)
        ]
    )
    return np.repeat(indicator[:, None], system.n_commands, axis=1)


def waiting_time_penalty(system: PowerManagedSystem) -> np.ndarray:
    """Mean-waiting-time metric via Little's law (paper Section VI-A).

    The paper lets the user "enforce a latency constraint by specifying
    a value for maximum expected waiting time for an incoming request".
    By Little's law the long-run mean waiting time (in slices) equals
    the mean queue length divided by the *admitted* arrival rate.  This
    metric divides by the offered rate instead (the admitted rate is
    policy-dependent and would make the metric nonlinear), so it is
    exact when losses are negligible and underestimates waiting time
    otherwise — pair a bound on it with a request-loss bound, as the
    paper's disk study does.

    Returns the queue-length metric scaled by ``1 / offered_rate``.
    """
    rate = system.requester.mean_arrival_rate()
    if rate <= 0:
        raise ValidationError(
            "waiting-time metric needs a workload with positive arrival rate"
        )
    return system.queue_length_penalty_matrix() / rate


def throughput_reward(system: PowerManagedSystem, throughput_by_state) -> np.ndarray:
    """Delivered throughput per slice (web-server case study).

    ``throughput_by_state`` maps each SP state to its capacity; the
    delivered throughput counts only slices in which the SR actually
    issues requests (capacity without demand earns nothing).
    """
    sp = system.provider
    capacity = np.zeros(sp.n_states)
    for state, value in dict(throughput_by_state).items():
        capacity[sp.chain.state_index(state)] = float(value)
    demand = (system.requester.arrival_counts > 0).astype(float)
    values = capacity[system.provider_index_of_state] * demand[
        system.requester_index_of_state
    ]
    return np.repeat(values[:, None], system.n_commands, axis=1)
