"""Power-performance trade-off exploration (paper Section IV-A).

Repeatedly solving the constrained LP while sweeping the constraint
bound traces the Pareto curve of the system (paper Figs. 6, 8b, 9a).
Theorem 4.1 proves the set of feasible (constraint, objective) pairs is
convex, so the curve is convex and non-increasing — both properties are
exposed as checkable predicates and exercised by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import OptimizationResult, PolicyOptimizer
from repro.core.policy import MarkovPolicy
from repro.util.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover - hints only, avoids a sim import cycle
    from repro.core.costs import CostModel
    from repro.core.pareto_sweep import SweepStats
    from repro.core.system import PowerManagedSystem
    from repro.sim.result import SimulationResult


@dataclass
class ParetoPoint:
    """One solved point of a trade-off curve.

    Attributes
    ----------
    bound:
        The swept constraint bound (per-slice average).
    feasible:
        Whether the LP was feasible at this bound.
    objective:
        Optimal per-slice average of the objective metric (``None`` when
        infeasible — the paper's ``f(c) = +inf`` convention).
    averages:
        Per-slice averages of every registered metric at the optimum.
    policy:
        The optimal policy at this bound.
    result:
        The full :class:`OptimizationResult` behind this point, when the
        point came from an actual solve (``None`` for points proved
        infeasible by bracketing without a solve of their own).
    """

    bound: float
    feasible: bool
    objective: float | None
    averages: dict[str, float] = field(default_factory=dict)
    policy: MarkovPolicy | None = None
    result: OptimizationResult | None = field(
        default=None, repr=False, compare=False
    )


@dataclass
class ParetoCurve:
    """A swept power-performance trade-off curve.

    Attributes
    ----------
    objective_metric / constraint_metric:
        Names of the metrics on the two axes.
    points:
        One :class:`ParetoPoint` per swept bound, in sweep order.
    stats:
        Solve accounting from the sweep engine (``None`` for hand-built
        curves); see :class:`repro.core.pareto_sweep.SweepStats`.
    """

    objective_metric: str
    constraint_metric: str
    points: list[ParetoPoint] = field(default_factory=list)
    stats: "SweepStats | None" = field(default=None, repr=False, compare=False)

    @property
    def feasible_points(self) -> list[ParetoPoint]:
        """Only the feasible points, in sweep order."""
        return [p for p in self.points if p.feasible]

    @property
    def bounds(self) -> np.ndarray:
        """Bounds of the feasible points."""
        return np.asarray([p.bound for p in self.feasible_points])

    @property
    def objectives(self) -> np.ndarray:
        """Optimal objective values of the feasible points."""
        return np.asarray([p.objective for p in self.feasible_points])

    @property
    def infeasible_bounds(self) -> np.ndarray:
        """Bounds at which the problem was infeasible."""
        return np.asarray([p.bound for p in self.points if not p.feasible])

    def _sorted_feasible_xy(self) -> tuple[np.ndarray, np.ndarray]:
        """Feasible (bound, objective) pairs sorted by bound.

        The shape predicates sort internally so hand-built curves with
        out-of-order appends are judged on the actual curve geometry
        rather than passing (or failing) vacuously on append order.
        """
        points = sorted(self.feasible_points, key=lambda p: p.bound)
        xs = np.asarray([p.bound for p in points])
        ys = np.asarray([p.objective for p in points])
        return xs, ys

    def is_non_increasing(self, tol: float = 1e-7) -> bool:
        """Objective never increases as the constraint is relaxed.

        Feasible points are sorted by bound internally, so the verdict
        does not depend on the order points were appended in.
        """
        _, objectives = self._sorted_feasible_xy()
        return bool(np.all(np.diff(objectives) <= tol))

    def is_convex(self, tol: float = 1e-7) -> bool:
        """Convexity of the trade-off curve (paper Theorem 4.1).

        Checks that every feasible point lies on or below the chord of
        its neighbours, after sorting feasible points by bound.
        """
        xs, ys = self._sorted_feasible_xy()
        if xs.size < 3:
            return True
        for i in range(1, xs.size - 1):
            span = xs[i + 1] - xs[i - 1]
            if span <= 0:
                continue
            t = (xs[i] - xs[i - 1]) / span
            chord = (1 - t) * ys[i - 1] + t * ys[i + 1]
            if ys[i] > chord + tol:
                return False
        return True


def trade_off_curve(
    optimizer: PolicyOptimizer,
    bounds: Sequence[float],
    objective: str = POWER,
    constraint: str = PENALTY,
    extra_upper_bounds: dict[str, float] | None = None,
    *,
    refine: int = 0,
    n_jobs: int = 1,
    warm_start: bool = True,
    bracket: bool = True,
    dedupe_rtol: float | None = None,
) -> ParetoCurve:
    """Sweep ``constraint`` over ``bounds`` minimizing ``objective``.

    The sweep runs through :class:`~repro.core.pareto_sweep.ParetoSweepSolver`:
    the balance-equation block is assembled once, duplicate bounds
    (within tolerance) are solved once, the infeasible prefix is located
    by bisection instead of solved point by point, and warm-capable LP
    backends chain the previous bound's optimal basis into the next
    solve.

    Parameters
    ----------
    optimizer:
        A configured :class:`PolicyOptimizer` (or any optimizer exposing
        the same ``build_lp`` / ``result_from_lp`` surface, e.g.
        :class:`~repro.core.average_cost.AverageCostOptimizer`).
    bounds:
        Constraint bounds to sweep (sorted ascending and de-duplicated
        internally; the curve holds one point per *unique* bound).
    objective / constraint:
        Metric names for the two axes (defaults: minimum power versus a
        performance-penalty budget, the paper's PO2).
    extra_upper_bounds:
        Additional fixed per-slice bounds applied at every point (e.g. a
        request-loss budget, giving the three curves of paper Fig. 6).
    refine:
        Additionally bisect the ``refine`` largest objective gaps
        between adjacent feasible points, densifying the curve where it
        bends.
    n_jobs:
        Process-parallel fan-out for the cold solves (1 = incremental
        serial sweep with warm starts, the default).
    warm_start / bracket / dedupe_rtol:
        Engine toggles, mainly for benchmarking the cold path; see
        :class:`~repro.core.pareto_sweep.ParetoSweepSolver`.

    Returns
    -------
    ParetoCurve
        One point per unique bound; infeasible bounds are kept with
        ``feasible=False`` so the infeasible region is visible.
    """
    from repro.core.pareto_sweep import ParetoSweepSolver

    kwargs = {} if dedupe_rtol is None else {"dedupe_rtol": dedupe_rtol}
    solver = ParetoSweepSolver(
        optimizer,
        objective=objective,
        constraint=constraint,
        extra_upper_bounds=extra_upper_bounds,
        warm_start=warm_start,
        bracket=bracket,
        n_jobs=n_jobs,
        **kwargs,
    )
    return solver.solve(bounds, refine=refine)


def simulate_curve(
    curve: ParetoCurve,
    system: "PowerManagedSystem",
    costs: "CostModel",
    n_slices: int,
    rng=None,
    *,
    initial_state=None,
    n_replications: int = 1,
    backend: str = "auto",
    chunk_slices: int | None = None,
) -> list["list[SimulationResult] | None"]:
    """Verify a swept curve by simulating every feasible point's policy.

    This is the paper's "circles on the curve" check (Figs. 8b, 9a) as a
    single batched run: all feasible optimal policies go through
    :func:`repro.sim.engine.simulate_many`, which vectorizes them in one
    compiled batch (they are stationary by construction).

    Returns
    -------
    list
        Aligned with ``curve.points``: ``None`` for infeasible points,
        otherwise the list of ``n_replications`` simulation results for
        that point's policy.

    Raises
    ------
    ValidationError
        If a feasible point carries no policy.  Silently skipping such
        a point would make it indistinguishable from an infeasible one
        in the returned list.
    """
    from repro.sim.engine import simulate_many

    for i, p in enumerate(curve.points):
        if p.feasible and p.policy is None:
            raise ValidationError(
                f"curve point {i} (bound {p.bound!r}) is feasible but "
                f"carries no policy; simulate_curve cannot represent it "
                f"(it would be conflated with an infeasible point)"
            )
    positions = [i for i, p in enumerate(curve.points) if p.feasible]
    batched = simulate_many(
        system,
        costs,
        [curve.points[i].policy for i in positions],
        n_slices,
        rng,
        n_replications=n_replications,
        initial_state=initial_state,
        backend=backend,
        chunk_slices=chunk_slices,
    )
    results: list = [None] * len(curve.points)
    for position, replications in zip(positions, batched):
        results[position] = replications
    return results


def min_achievable(optimizer: PolicyOptimizer, metric: str) -> float:
    """Smallest attainable per-slice average of ``metric``.

    This is the boundary of the infeasible region the paper highlights
    in Fig. 6: no policy can push the average queue length below the
    value achieved by unconstrained minimization of the penalty.
    """
    result = optimizer.minimize_unconstrained(metric).require_feasible()
    return float(result.objective_average)
