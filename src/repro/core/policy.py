"""Markov stationary policies and their exact evaluation.

Policies are the paper's Definition 3.7 objects: a matrix ``pi`` with
one row per joint system state, each row a probability distribution over
commands.  Deterministic policies are the special case of 0/1 rows.

Evaluation is closed-form: under policy ``pi`` the induced chain is
``P_pi`` and the discounted occupancy is ``y = p0 (I - gamma P_pi)^-1``;
state-action frequencies are ``x[s, a] = y[s] pi[s, a]`` and every cost
metric is an inner product with ``x`` (paper Eq. 8 summed in closed
form).  This is the reference against which both the LP optimum and the
Monte-Carlo simulator are checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.markov.analysis import discounted_occupancy
from repro.util.validation import (
    ValidationError,
    check_distribution,
    check_probability,
)


class MarkovPolicy:
    """A randomized Markov stationary policy (paper Definition 3.7).

    Parameters
    ----------
    matrix:
        ``(n_states, n_commands)`` array; row ``x`` is the distribution
        over commands issued in state ``x``.
    command_names:
        Optional command names for pretty-printing.

    Examples
    --------
    >>> pi = MarkovPolicy([[0.4, 0.6], [1.0, 0.0]], ["s_on", "s_off"])
    >>> pi.is_deterministic
    False
    >>> pi.probability(0, "s_off")
    0.6
    """

    def __init__(self, matrix, command_names: Sequence[str] | None = None):
        arr = np.asarray(matrix, dtype=float)
        if arr.ndim != 2 or arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValidationError(
                f"policy matrix must be 2-D and non-empty, got shape {arr.shape}"
            )
        for row in range(arr.shape[0]):
            check_distribution(arr[row], f"policy row {row}")
        self._matrix = np.clip(arr, 0.0, None)
        # Renormalize away validation-tolerance dust so rows sum exactly to 1.
        self._matrix /= self._matrix.sum(axis=1, keepdims=True)
        if command_names is None:
            command_names = [str(a) for a in range(arr.shape[1])]
        names = [str(c) for c in command_names]
        if len(names) != arr.shape[1]:
            raise ValidationError(
                f"{len(names)} command names for {arr.shape[1]} commands"
            )
        self._commands = tuple(names)
        self._command_index = {c: i for i, c in enumerate(names)}

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def deterministic(
        cls,
        commands,
        n_commands: int,
        command_names: Sequence[str] | None = None,
    ) -> "MarkovPolicy":
        """Build from a vector of per-state command indices or names."""
        if command_names is not None:
            index = {str(c): i for i, c in enumerate(command_names)}
            resolved = [
                c if isinstance(c, (int, np.integer)) else index[str(c)]
                for c in commands
            ]
        else:
            resolved = [int(c) for c in commands]
        matrix = np.zeros((len(resolved), int(n_commands)))
        for state, command in enumerate(resolved):
            if not 0 <= int(command) < n_commands:
                raise ValidationError(
                    f"command index {command} out of range [0, {n_commands})"
                )
            matrix[state, int(command)] = 1.0
        return cls(matrix, command_names)

    @classmethod
    def constant(
        cls,
        command,
        n_states: int,
        n_commands: int,
        command_names: Sequence[str] | None = None,
    ) -> "MarkovPolicy":
        """The constant policy issuing the same command in every state."""
        return cls.deterministic(
            [command] * int(n_states), n_commands, command_names
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The ``(n_states, n_commands)`` policy matrix (copy)."""
        return self._matrix.copy()

    @property
    def n_states(self) -> int:
        """Number of states the policy is defined on."""
        return self._matrix.shape[0]

    @property
    def n_commands(self) -> int:
        """Number of commands."""
        return self._matrix.shape[1]

    @property
    def command_names(self) -> tuple[str, ...]:
        """Command names, in index order."""
        return self._commands

    @property
    def is_deterministic(self) -> bool:
        """True when every row puts all mass on one command."""
        return bool(np.all(self._matrix.max(axis=1) > 1.0 - 1e-12))

    def probability(self, state: int, command) -> float:
        """Probability of issuing ``command`` in ``state``."""
        if isinstance(command, (int, np.integer)):
            a = int(command)
        else:
            a = self._command_index[str(command)]
        return float(self._matrix[int(state), a])

    def greedy_commands(self) -> np.ndarray:
        """Most likely command index per state (ties to lowest index)."""
        return np.argmax(self._matrix, axis=1)

    def as_deterministic(self) -> np.ndarray:
        """Per-state command indices; raises if the policy is randomized."""
        if not self.is_deterministic:
            raise ValidationError("policy is randomized, not deterministic")
        return self.greedy_commands()

    def randomization_degree(self) -> float:
        """Total probability mass off the per-row argmax (0 = deterministic)."""
        return float(np.sum(1.0 - self._matrix.max(axis=1)))

    def sample_command(self, state: int, rng: np.random.Generator) -> int:
        """Draw a command for ``state`` from the policy's row distribution."""
        row = self._matrix[int(state)]
        return int(rng.choice(row.size, p=row))

    def __eq__(self, other) -> bool:
        if not isinstance(other, MarkovPolicy):
            return NotImplemented
        return (
            self._commands == other._commands
            and self._matrix.shape == other._matrix.shape
            and bool(np.allclose(self._matrix, other._matrix, atol=1e-9))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "deterministic" if self.is_deterministic else "randomized"
        return (
            f"MarkovPolicy({kind}, n_states={self.n_states}, "
            f"commands={self._commands})"
        )

    # ------------------------------------------------------------------
    # persistence — policies are deployment artifacts ("easy to store
    # and implement", paper Section III-B), so they serialize to JSON.
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable representation of the policy."""
        return {
            "command_names": list(self._commands),
            "matrix": self._matrix.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MarkovPolicy":
        """Rebuild a policy written by :meth:`to_dict`."""
        try:
            matrix = payload["matrix"]
            commands = payload["command_names"]
        except (TypeError, KeyError) as exc:
            raise ValidationError(
                f"policy payload must have 'matrix' and 'command_names': {exc}"
            ) from exc
        return cls(matrix, commands)

    def save(self, path) -> None:
        """Write the policy to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "MarkovPolicy":
        """Read a policy written by :meth:`save`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text()))


@dataclass
class PolicyEvaluation:
    """Exact discounted evaluation of a policy on a system.

    Attributes
    ----------
    gamma:
        Discount factor used.
    expected_horizon:
        ``1 / (1 - gamma)`` — the expected session length in slices.
    occupancy:
        Discounted expected visits per joint state (sums to the
        horizon).
    frequencies:
        State-action frequencies ``x[s, a]`` (the LP unknowns).
    totals:
        Metric name -> total discounted expected value (paper Eq. 8
        summed over time).
    averages:
        Metric name -> per-slice average (total × ``(1 - gamma)``) —
        the numbers the paper's figures report.
    """

    gamma: float
    expected_horizon: float
    occupancy: np.ndarray = field(repr=False)
    frequencies: np.ndarray = field(repr=False)
    totals: dict[str, float] = field(default_factory=dict)
    averages: dict[str, float] = field(default_factory=dict)


def evaluate_policy(
    system: PowerManagedSystem,
    costs: CostModel,
    policy: MarkovPolicy,
    gamma: float,
    initial_distribution=None,
) -> PolicyEvaluation:
    """Exact closed-form evaluation of ``policy`` under discounting.

    Parameters
    ----------
    system:
        The composed system.
    costs:
        Metrics to evaluate; every registered metric is reported.
    policy:
        The (possibly randomized) Markov stationary policy.
    gamma:
        Discount factor in [0, 1); expected horizon ``1/(1-gamma)``.
    initial_distribution:
        Initial joint-state distribution; defaults to uniform.
    """
    gamma = check_probability(gamma, "gamma")
    if gamma >= 1.0:
        raise ValidationError("evaluation requires gamma < 1")
    if policy.n_states != system.n_states or policy.n_commands != system.n_commands:
        raise ValidationError(
            f"policy shape ({policy.n_states}, {policy.n_commands}) does not "
            f"match system ({system.n_states}, {system.n_commands})"
        )
    if initial_distribution is None:
        initial_distribution = system.uniform_distribution()
    p0 = system.check_distribution(initial_distribution)

    P_pi = system.chain.policy_matrix(policy.matrix)
    occupancy = discounted_occupancy(P_pi, gamma, p0)
    frequencies = occupancy[:, None] * policy.matrix

    totals: dict[str, float] = {}
    averages: dict[str, float] = {}
    for name in costs.metric_names:
        total = costs.evaluate(name, frequencies)
        totals[name] = total
        averages[name] = total * (1.0 - gamma)

    return PolicyEvaluation(
        gamma=gamma,
        expected_horizon=1.0 / (1.0 - gamma),
        occupancy=occupancy,
        frequencies=frequencies,
        totals=totals,
        averages=averages,
    )
