"""Value iteration and policy iteration for the unconstrained problem.

The paper (Appendix A) notes that POU — unconstrained minimization of a
single discounted cost — can be solved by "policy improvement,
successive approximations, and linear programming"; it uses the LP
because constraints extend it naturally.  This module provides the other
two classical solvers.  They serve two purposes here:

* cross-validation — Theorem A.1 says all three must agree on the
  optimal value vector ``v*`` and (up to ties) on the deterministic
  optimal policy; the test suite checks this on every case study;
* scalability — for large unconstrained models value iteration avoids
  building the LP at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.util.validation import ValidationError, check_probability


@dataclass
class DPResult:
    """Solution of an unconstrained discounted-cost problem.

    Attributes
    ----------
    values:
        Optimal value vector ``v*`` (total discounted expected cost from
        each start state; paper's optimality equations, Eq. 12).
    policy:
        An optimal deterministic Markov stationary policy.
    iterations:
        Sweeps (value iteration) or improvement rounds (policy
        iteration) performed.
    converged:
        Whether the stopping criterion was met within the budget.
    """

    values: np.ndarray
    policy: MarkovPolicy
    iterations: int
    converged: bool


def _check_inputs(system: PowerManagedSystem, cost_matrix, gamma: float):
    gamma = check_probability(gamma, "gamma")
    if not 0.0 < gamma < 1.0:
        raise ValidationError(f"gamma must be in (0, 1), got {gamma!r}")
    costs = np.asarray(cost_matrix, dtype=float)
    expected = (system.n_states, system.n_commands)
    if costs.shape != expected:
        raise ValidationError(
            f"cost matrix must have shape {expected}, got {costs.shape}"
        )
    if not np.all(np.isfinite(costs)):
        raise ValidationError("cost matrix contains non-finite entries")
    return costs, gamma


def q_values(
    system: PowerManagedSystem, cost_matrix, gamma: float, values: np.ndarray
) -> np.ndarray:
    """Action values ``Q[s, a] = c[s, a] + gamma sum_j P^a[s, j] v[j]``."""
    costs, gamma = _check_inputs(system, cost_matrix, gamma)
    v = np.asarray(values, dtype=float)
    if v.shape != (system.n_states,):
        raise ValidationError(
            f"values must have {system.n_states} entries, got shape {v.shape}"
        )
    tensor = system.chain.tensor  # (A, N, N)
    future = np.einsum("aij,j->ia", tensor, v)
    return costs + gamma * future


def value_iteration(
    system: PowerManagedSystem,
    cost_matrix,
    gamma: float,
    tol: float = 1e-10,
    max_iterations: int = 1_000_000,
) -> DPResult:
    """Solve POU by successive approximation of the optimality equations.

    Iterates ``v <- min_a [c(., a) + gamma P^a v]`` until the sup-norm
    change guarantees the value error is below ``tol`` (standard
    ``gamma/(1-gamma)`` contraction bound).

    Parameters
    ----------
    system, cost_matrix, gamma:
        The model; ``cost_matrix`` has shape (n_states, n_commands).
    tol:
        Target sup-norm accuracy of the returned value vector.
    max_iterations:
        Safety ceiling on sweeps.
    """
    costs, gamma = _check_inputs(system, cost_matrix, gamma)
    tensor = system.chain.tensor
    n = system.n_states
    v = np.zeros(n)
    threshold = tol * (1.0 - gamma) / max(gamma, 1e-16)
    converged = False
    iterations = 0
    while not converged and iterations < int(max_iterations):
        iterations += 1
        q = costs + gamma * np.einsum("aij,j->ia", tensor, v)
        v_new = q.min(axis=1)
        delta = float(np.max(np.abs(v_new - v)))
        v = v_new
        if delta <= threshold:
            converged = True
    greedy = np.argmin(
        costs + gamma * np.einsum("aij,j->ia", tensor, v), axis=1
    )
    policy = MarkovPolicy.deterministic(
        greedy, system.n_commands, system.command_names
    )
    return DPResult(values=v, policy=policy, iterations=iterations, converged=converged)


def policy_iteration(
    system: PowerManagedSystem,
    cost_matrix,
    gamma: float,
    max_iterations: int = 1000,
) -> DPResult:
    """Solve POU by Howard's policy iteration.

    Alternates exact policy evaluation (a linear solve) with greedy
    improvement; terminates when the policy is stable, which for finite
    MDPs happens in finitely many rounds at the exact optimum.
    """
    costs, gamma = _check_inputs(system, cost_matrix, gamma)
    tensor = system.chain.tensor
    n = system.n_states

    commands = np.argmin(costs, axis=1)
    identity = np.eye(n)
    converged = False
    iterations = 0
    values = np.zeros(n)
    while not converged and iterations < int(max_iterations):
        iterations += 1
        P_pi = tensor[commands, np.arange(n), :]
        c_pi = costs[np.arange(n), commands]
        values = np.linalg.solve(identity - gamma * P_pi, c_pi)
        q = costs + gamma * np.einsum("aij,j->ia", tensor, values)
        greedy = np.argmin(q, axis=1)
        # Keep the incumbent command on exact ties to guarantee progress.
        keep = np.isclose(
            q[np.arange(n), commands], q[np.arange(n), greedy], rtol=0, atol=1e-12
        )
        greedy[keep] = commands[keep]
        if np.array_equal(greedy, commands):
            converged = True
        else:
            commands = greedy
    policy = MarkovPolicy.deterministic(
        commands, system.n_commands, system.command_names
    )
    return DPResult(
        values=values, policy=policy, iterations=iterations, converged=converged
    )
