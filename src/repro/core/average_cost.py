"""Average-cost policy optimization (paper Eq. 7, solved directly).

The paper first writes policy optimization as a *long-run average*
problem (Eq. 7) and then replaces it with the discounted finite-window
formulation (Eq. 9) for computability.  The average-cost problem is,
however, also an LP for finite unichain MDPs (Puterman, Ch. 8/9, the
paper's reference [22]):

    min   sum_{s,a} c(s, a) x[s, a]
    s.t.  sum_a x[j, a] - sum_{s,a} P^a[s, j] x[s, a] = 0   for all j
          sum_{s,a} x[s, a] = 1
          x >= 0

where ``x`` is now a stationary state-action *distribution* rather than
discounted expected counts; metric constraints are direct per-slice
bounds with no horizon scaling.  Compared to the discounted LP this
formulation

* needs no discount factor or initial distribution, and
* cannot exploit the end-of-session accounting (sleeping into the trap
  state) that the paper acknowledges as a small model error — the
  ablation benchmark ``bench_ablation_formulations`` quantifies the
  difference.

For unichain models (every stationary policy has a single recurrent
class — true of all the case studies, whose SR mixes every state) the
LP optimum is the optimal average cost over all policies.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import LOSS, PENALTY, POWER, CostModel
from repro.core.optimizer import (
    OptimizationResult,
    SPARSE_AUTO_MIN_VARIABLES,
    _ActionMaskMixin,
    balance_matrix,
)
from repro.core.policy import MarkovPolicy, PolicyEvaluation
from repro.core.system import PowerManagedSystem
from repro.lp.problem import LinearProgram
from repro.lp.solve import solve_lp
from repro.util.validation import ValidationError


class AverageCostOptimizer(_ActionMaskMixin):
    """Long-run average policy optimization (the paper's Eq. 7).

    The interface mirrors :class:`~repro.core.optimizer.PolicyOptimizer`
    (``optimize`` / ``minimize_power`` / ``minimize_penalty``) but all
    metrics are long-run per-slice averages of the stationary policy —
    no discount factor and no initial distribution enter the problem.

    Parameters
    ----------
    system / costs:
        The composed system and its metrics.
    backend / cross_check:
        LP backend options (see :func:`repro.lp.solve_lp`).
    fallback:
        Completion rule for states with zero stationary probability
        (see :class:`PolicyOptimizer`).
    action_mask:
        Optional boolean availability mask over (state, command).
    sparse:
        Balance-block representation: ``True`` CSR end to end,
        ``False`` dense, ``None`` (default) auto by problem size (see
        :class:`PolicyOptimizer`).

    Examples
    --------
    >>> from repro.systems import example_system
    >>> from repro.core.average_cost import AverageCostOptimizer
    >>> bundle = example_system.build()
    >>> opt = AverageCostOptimizer(bundle.system, bundle.costs)
    >>> res = opt.minimize_power(penalty_bound=0.5, loss_bound=0.2)
    >>> res.feasible
    True
    """

    def __init__(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        backend: str = "scipy",
        cross_check: bool = False,
        fallback: str = "greedy-service",
        action_mask=None,
        sparse: bool | None = None,
    ):
        if not isinstance(system, PowerManagedSystem):
            raise ValidationError("system must be a PowerManagedSystem")
        if not isinstance(costs, CostModel):
            raise ValidationError("costs must be a CostModel")
        if costs.system is not system:
            raise ValidationError("costs were built for a different system")
        self._system = system
        self._costs = costs
        self._backend = backend
        self._cross_check = bool(cross_check)
        self._fallback = fallback
        self._mask = self._check_action_mask(system, action_mask)

        n, n_a = system.n_states, system.n_commands
        if sparse is None:
            sparse = n * n_a >= SPARSE_AUTO_MIN_VARIABLES
        self._sparse = bool(sparse)
        # The average-cost balance equations are the gamma = 1 case.
        self._balance = balance_matrix(system, 1.0, self._sparse)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def system(self) -> PowerManagedSystem:
        """The system being optimized."""
        return self._system

    @property
    def costs(self) -> CostModel:
        """The registered cost metrics."""
        return self._costs

    @property
    def backend(self) -> str:
        """LP backend name this optimizer solves with."""
        return self._backend

    @property
    def cross_check(self) -> bool:
        """Whether every LP solve is cross-checked on a second backend."""
        return self._cross_check

    @property
    def sparse(self) -> bool:
        """Whether the balance block is assembled (and solved) sparse."""
        return self._sparse

    @property
    def bound_scale(self) -> float:
        """Per-slice bounds enter the average-cost LP unscaled."""
        return 1.0

    # ------------------------------------------------------------------
    # the solve
    # ------------------------------------------------------------------
    def build_lp(
        self,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ) -> tuple[LinearProgram, dict[str, tuple[str, float]]]:
        """Assemble the average-cost LP without solving it.

        Same contract as :meth:`PolicyOptimizer.build_lp`: bound rows
        append in iteration order (upper before lower) so the sweep
        engine can mutate its last-added constraint row in place.
        """
        if sense not in ("min", "max"):
            raise ValidationError(f"sense must be 'min' or 'max', got {sense!r}")
        c = self._costs.metric(objective).reshape(-1)
        if sense == "max":
            c = -c

        lp = LinearProgram(c)
        n = self._system.n_states
        # One balance row per state is redundant with normalization
        # (rows sum to zero); keep all — the backends drop dependencies.
        if self._sparse:
            lp.add_equality_block(self._balance, np.zeros(n))
        else:
            for j in range(n):
                lp.add_equality(self._balance[j], 0.0)
        lp.add_equality(np.ones(n * self._system.n_commands), 1.0)
        if self._mask is not None and not self._mask.all():
            lp.add_equality((~self._mask).astype(float).reshape(-1), 0.0)

        recorded: dict[str, tuple[str, float]] = {}
        for name, bound in (upper_bounds or {}).items():
            lp.add_inequality(self._costs.metric(name).reshape(-1), float(bound))
            recorded[name] = ("<=", float(bound))
        for name, bound in (lower_bounds or {}).items():
            lp.add_lower_bound_inequality(
                self._costs.metric(name).reshape(-1), float(bound)
            )
            recorded[name] = (">=", float(bound))
        return lp, recorded

    def result_from_lp(
        self,
        lp_result,
        objective: str,
        constraints: dict[str, tuple[str, float]],
    ) -> OptimizationResult:
        """Turn a raw LP solve into an :class:`OptimizationResult`."""
        if not lp_result.is_optimal:
            return OptimizationResult(
                feasible=False,
                policy=None,
                frequencies=None,
                evaluation=None,
                objective_metric=objective,
                objective_average=None,
                constraints=constraints,
                gamma=1.0,
                lp_result=lp_result,
            )

        n = self._system.n_states
        frequencies = np.clip(
            lp_result.x.reshape(n, self._system.n_commands), 0.0, None
        )
        policy = self.policy_from_frequencies(frequencies)
        evaluation = self._evaluate(frequencies)
        return OptimizationResult(
            feasible=True,
            policy=policy,
            frequencies=frequencies,
            evaluation=evaluation,
            objective_metric=objective,
            objective_average=evaluation.averages[objective],
            constraints=constraints,
            gamma=1.0,
            lp_result=lp_result,
        )

    def optimize(
        self,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """Optimize a long-run average metric under per-slice bounds."""
        lp, recorded = self.build_lp(objective, sense, upper_bounds, lower_bounds)
        lp_result = solve_lp(lp, backend=self._backend, cross_check=self._cross_check)
        return self.result_from_lp(lp_result, objective, recorded)

    def _evaluate(self, frequencies: np.ndarray) -> PolicyEvaluation:
        """Package the stationary distribution as a PolicyEvaluation.

        ``frequencies`` is the LP's stationary state-action distribution
        itself; averages are direct inner products and totals coincide
        with averages (per-slice accounting, infinite horizon).
        """
        occupancy = frequencies.sum(axis=1)
        averages = {
            name: self._costs.evaluate(name, frequencies)
            for name in self._costs.metric_names
        }
        return PolicyEvaluation(
            gamma=1.0,
            expected_horizon=float("inf"),
            occupancy=occupancy,
            frequencies=frequencies.copy(),
            totals=dict(averages),
            averages=averages,
        )

    # ------------------------------------------------------------------
    # paper-named entry points (PO1 / PO2 analogues)
    # ------------------------------------------------------------------
    def minimize_power(
        self,
        penalty_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """Minimum average power under performance constraints."""
        upper = dict(extra_upper_bounds or {})
        if penalty_bound is not None:
            upper[PENALTY] = float(penalty_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(POWER, "min", upper_bounds=upper)

    def minimize_penalty(
        self,
        power_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """Minimum average penalty under a power budget."""
        upper = dict(extra_upper_bounds or {})
        if power_bound is not None:
            upper[POWER] = float(power_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(PENALTY, "min", upper_bounds=upper)

    def minimize_unconstrained(self, objective: str = PENALTY) -> OptimizationResult:
        """Unconstrained minimization of one long-run average metric."""
        return self.optimize(objective, "min")

    # ------------------------------------------------------------------
    # policy extraction (Eq. 16, unchanged)
    # ------------------------------------------------------------------
    def policy_from_frequencies(self, frequencies: np.ndarray) -> MarkovPolicy:
        """Extract the stationary policy from the LP distribution."""
        return MarkovPolicy(
            self._policy_matrix_from_frequencies(frequencies),
            self._system.command_names,
        )
