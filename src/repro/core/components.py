"""Component models: service provider, service requester, service queue.

These are the paper's Definitions 3.1-3.3.  Each component is a thin,
validated wrapper around the Markov substrate plus the component's cost
and rate annotations; :class:`~repro.core.system.PowerManagedSystem`
composes them into the joint controlled chain.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.markov.chain import MarkovChain
from repro.markov.controlled import ControlledMarkovChain
from repro.util.validation import (
    ValidationError,
    check_probability,
)


def _table_to_matrix(
    table,
    state_names: Sequence[str],
    command_names: Sequence[str],
    name: str,
) -> np.ndarray:
    """Normalize a (state, command) table to an array.

    Accepts either an array-like of shape ``(n_states, n_commands)`` or a
    nested mapping ``{state: {command: value}}``.
    """
    n_s, n_c = len(state_names), len(command_names)
    if isinstance(table, Mapping):
        matrix = np.zeros((n_s, n_c))
        state_idx = {s: i for i, s in enumerate(state_names)}
        command_idx = {c: i for i, c in enumerate(command_names)}
        seen_states = set()
        for state, row in table.items():
            if str(state) not in state_idx:
                raise ValidationError(
                    f"{name}: unknown state {state!r}; states are {tuple(state_names)}"
                )
            seen_states.add(str(state))
            if not isinstance(row, Mapping):
                raise ValidationError(
                    f"{name}: value for state {state!r} must be a mapping "
                    f"{{command: value}}"
                )
            seen_commands = set()
            for command, value in row.items():
                if str(command) not in command_idx:
                    raise ValidationError(
                        f"{name}: unknown command {command!r}; commands are "
                        f"{tuple(command_names)}"
                    )
                seen_commands.add(str(command))
                matrix[state_idx[str(state)], command_idx[str(command)]] = float(value)
            missing = set(map(str, command_names)) - seen_commands
            if missing:
                raise ValidationError(
                    f"{name}: state {state!r} is missing commands {sorted(missing)}"
                )
        missing_states = set(map(str, state_names)) - seen_states
        if missing_states:
            raise ValidationError(f"{name}: missing states {sorted(missing_states)}")
        return matrix
    matrix = np.asarray(table, dtype=float)
    if matrix.shape != (n_s, n_c):
        raise ValidationError(
            f"{name} must have shape ({n_s}, {n_c}), got {matrix.shape}"
        )
    if not np.all(np.isfinite(matrix)):
        raise ValidationError(f"{name} contains non-finite entries")
    return matrix


class ServiceProvider:
    """The power-managed resource (paper Definition 3.1).

    A stationary controlled Markov chain together with, for every
    (state, command) pair, a *service rate* ``sigma(s, a)`` in [0, 1]
    (probability of completing one request per slice) and a *power
    consumption* ``m(s, a)`` in watts.

    Parameters
    ----------
    chain:
        The controlled Markov chain over SP states and PM commands.
    service_rates:
        ``(n_states, n_commands)`` table of service rates (array or
        nested ``{state: {command: rate}}`` mapping).
    power:
        ``(n_states, n_commands)`` table of power values, same formats.

    Examples
    --------
    The two-state provider of paper Example 3.1::

        >>> sp = ServiceProvider.from_tables(
        ...     states=["on", "off"],
        ...     commands=["s_on", "s_off"],
        ...     transitions={
        ...         "s_on": [[1.0, 0.0], [0.1, 0.9]],
        ...         "s_off": [[0.2, 0.8], [0.0, 1.0]],
        ...     },
        ...     service_rates={"on": {"s_on": 0.8, "s_off": 0.0},
        ...                    "off": {"s_on": 0.0, "s_off": 0.0}},
        ...     power={"on": {"s_on": 3.0, "s_off": 4.0},
        ...            "off": {"s_on": 4.0, "s_off": 0.0}},
        ... )
        >>> sp.service_rate("on", "s_on")
        0.8
        >>> sp.sleep_states
        ('off',)
    """

    def __init__(self, chain: ControlledMarkovChain, service_rates, power):
        if not isinstance(chain, ControlledMarkovChain):
            raise ValidationError("chain must be a ControlledMarkovChain")
        self._chain = chain
        rates = _table_to_matrix(
            service_rates, chain.state_names, chain.command_names, "service_rates"
        )
        for s in range(rates.shape[0]):
            for a in range(rates.shape[1]):
                check_probability(
                    rates[s, a],
                    f"service_rates[{chain.state_names[s]!r}, "
                    f"{chain.command_names[a]!r}]",
                )
        self._rates = rates
        power_matrix = _table_to_matrix(
            power, chain.state_names, chain.command_names, "power"
        )
        if np.any(power_matrix < 0):
            raise ValidationError("power values must be non-negative")
        self._power = power_matrix

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tables(
        cls,
        states: Sequence[str],
        commands: Sequence[str],
        transitions,
        service_rates,
        power,
    ) -> "ServiceProvider":
        """Build from plain tables (the format of the paper's examples)."""
        chain = ControlledMarkovChain(
            transitions, state_names=states, command_names=commands
        )
        return cls(chain, service_rates, power)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def chain(self) -> ControlledMarkovChain:
        """The underlying controlled Markov chain."""
        return self._chain

    @property
    def n_states(self) -> int:
        """Number of SP states."""
        return self._chain.n_states

    @property
    def n_commands(self) -> int:
        """Number of PM commands."""
        return self._chain.n_commands

    @property
    def state_names(self) -> tuple[str, ...]:
        """SP state names."""
        return self._chain.state_names

    @property
    def command_names(self) -> tuple[str, ...]:
        """Command names."""
        return self._chain.command_names

    @property
    def service_rate_matrix(self) -> np.ndarray:
        """``(n_states, n_commands)`` service-rate table (copy)."""
        return self._rates.copy()

    @property
    def power_matrix(self) -> np.ndarray:
        """``(n_states, n_commands)`` power table (copy)."""
        return self._power.copy()

    def service_rate(self, state, command) -> float:
        """Service rate ``sigma(s, a)``."""
        return float(
            self._rates[self._chain.state_index(state), self._chain.command_index(command)]
        )

    def power(self, state, command) -> float:
        """Power consumption ``m(s, a)`` in watts."""
        return float(
            self._power[self._chain.state_index(state), self._chain.command_index(command)]
        )

    @property
    def active_states(self) -> tuple[str, ...]:
        """States with a non-zero service rate under some command."""
        mask = self._rates.max(axis=1) > 0.0
        return tuple(
            name for name, active in zip(self._chain.state_names, mask) if active
        )

    @property
    def sleep_states(self) -> tuple[str, ...]:
        """States whose service rate is zero under every command."""
        mask = self._rates.max(axis=1) == 0.0
        return tuple(
            name for name, asleep in zip(self._chain.state_names, mask) if asleep
        )

    def expected_transition_time(self, src, dst, command) -> float:
        """Expected slices for ``src -> dst`` holding ``command`` (Eq. 2)."""
        p = self._chain.transition_probability(src, dst, command)
        if p <= 0.0:
            return float("inf")
        return 1.0 / p

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceProvider(states={self.state_names}, "
            f"commands={self.command_names})"
        )


class ServiceRequester:
    """The workload model (paper Definition 3.2).

    An autonomous Markov chain; state ``r`` issues ``z(r)`` requests per
    time slice.  The chain does not depend on the system — it is the
    environment.

    Parameters
    ----------
    chain:
        The workload Markov chain.
    arrivals:
        Number of requests per slice for each state, as a sequence
        aligned with the chain's states or a ``{state: count}`` mapping.

    Examples
    --------
    The bursty requester of paper Example 3.2::

        >>> sr = ServiceRequester(
        ...     MarkovChain([[0.95, 0.05], [0.15, 0.85]], ["0", "1"]),
        ...     arrivals=[0, 1],
        ... )
        >>> sr.arrivals("1")
        1
        >>> round(sr.mean_arrival_rate(), 3)
        0.25
    """

    def __init__(self, chain: MarkovChain, arrivals):
        if not isinstance(chain, MarkovChain):
            raise ValidationError("chain must be a MarkovChain")
        self._chain = chain
        if isinstance(arrivals, Mapping):
            values = np.zeros(chain.n_states, dtype=int)
            seen = set()
            for state, count in arrivals.items():
                values[chain.state_index(str(state))] = int(count)
                seen.add(str(state))
            missing = set(chain.state_names) - seen
            if missing:
                raise ValidationError(f"arrivals missing states {sorted(missing)}")
        else:
            values = np.asarray(arrivals, dtype=int)
            if values.shape != (chain.n_states,):
                raise ValidationError(
                    f"arrivals must have {chain.n_states} entries, got shape "
                    f"{values.shape}"
                )
        if np.any(values < 0):
            raise ValidationError("arrival counts must be non-negative")
        self._arrivals = values

    @property
    def chain(self) -> MarkovChain:
        """The underlying workload Markov chain."""
        return self._chain

    @property
    def n_states(self) -> int:
        """Number of SR states."""
        return self._chain.n_states

    @property
    def state_names(self) -> tuple[str, ...]:
        """SR state names."""
        return self._chain.state_names

    @property
    def arrival_counts(self) -> np.ndarray:
        """Requests per slice for each state (copy)."""
        return self._arrivals.copy()

    @property
    def max_arrivals(self) -> int:
        """Largest per-slice arrival count over all states."""
        return int(self._arrivals.max())

    def arrivals(self, state) -> int:
        """Requests per slice issued in ``state``."""
        return int(self._arrivals[self._chain.state_index(state)])

    def mean_arrival_rate(self) -> float:
        """Long-run average requests per slice (stationary-weighted)."""
        pi = self._chain.stationary_distribution()
        return float(pi @ self._arrivals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceRequester(states={self.state_names}, "
            f"arrivals={tuple(self._arrivals)})"
        )


class ServiceQueue:
    """Bounded request queue (paper Definition 3.3 and Eq. 3).

    The queue holds up to ``capacity`` requests.  During a slice in which
    the SP has service rate ``sigma`` and ``z`` requests arrive, the
    number of pending requests is ``q + z``; with probability ``sigma``
    one request (enqueued or just arrived) completes.  The next queue
    state is clamped to ``capacity`` — the clamped-away mass is *request
    loss*, the paper's abstract congestion penalty.

    Examples
    --------
    >>> q = ServiceQueue(capacity=1)
    >>> q.transition_matrix(service_rate=0.8, arrivals=1)
    array([[0.8, 0.2],
           [0. , 1. ]])
    """

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity < 0:
            raise ValidationError(f"queue capacity must be >= 0, got {capacity}")
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Maximum number of enqueued requests ``Q``."""
        return self._capacity

    @property
    def n_states(self) -> int:
        """Number of queue states (``Q + 1``)."""
        return self._capacity + 1

    @property
    def state_names(self) -> tuple[str, ...]:
        """Queue state names ``"0" .. "Q"``."""
        return tuple(str(q) for q in range(self.n_states))

    def next_state_distribution(
        self, queue_length: int, service_rate: float, arrivals: int
    ) -> np.ndarray:
        """Distribution of the next queue state (paper Eq. 3 + corners)."""
        q = int(queue_length)
        if not 0 <= q <= self._capacity:
            raise ValidationError(
                f"queue length {q} out of range [0, {self._capacity}]"
            )
        sigma = check_probability(service_rate, "service_rate")
        z = int(arrivals)
        if z < 0:
            raise ValidationError(f"arrivals must be >= 0, got {z}")

        out = np.zeros(self.n_states)
        pending = q + z
        if pending == 0:
            out[0] = 1.0
            return out
        served = min(pending - 1, self._capacity)
        unserved = min(pending, self._capacity)
        out[served] += sigma
        out[unserved] += 1.0 - sigma
        return out

    def transition_matrix(self, service_rate: float, arrivals: int) -> np.ndarray:
        """Full ``(Q+1, Q+1)`` queue transition matrix for one slice."""
        rows = [
            self.next_state_distribution(q, service_rate, arrivals)
            for q in range(self.n_states)
        ]
        return np.vstack(rows)

    def expected_loss(
        self, queue_length: int, service_rate: float, arrivals: int
    ) -> float:
        """Expected number of requests lost to overflow in one slice."""
        q = int(queue_length)
        if not 0 <= q <= self._capacity:
            raise ValidationError(
                f"queue length {q} out of range [0, {self._capacity}]"
            )
        sigma = check_probability(service_rate, "service_rate")
        z = int(arrivals)
        if z < 0:
            raise ValidationError(f"arrivals must be >= 0, got {z}")
        pending = q + z
        if pending == 0:
            return 0.0
        lost_if_served = max(pending - 1 - self._capacity, 0)
        lost_if_not = max(pending - self._capacity, 0)
        return sigma * lost_if_served + (1.0 - sigma) * lost_if_not

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ServiceQueue(capacity={self._capacity})"


def compose_requesters(
    first: ServiceRequester, second: ServiceRequester
) -> ServiceRequester:
    """Merge two independent workload sources into one SR.

    Paper Section VII sketches systems with "multiple SR's": when two
    independent request streams feed the same provider, their joint
    behaviour is the product chain with summed per-state arrivals.
    State names combine as ``"<first>&<second>"``; the state count is
    the product, so compose sparingly (the paper's state-explosion
    caveat applies).

    Examples
    --------
    >>> from repro.markov.chain import MarkovChain
    >>> a = ServiceRequester(MarkovChain([[0.9, 0.1], [0.5, 0.5]]), [0, 1])
    >>> b = ServiceRequester(MarkovChain([[0.8, 0.2], [0.3, 0.7]]), [0, 2])
    >>> merged = compose_requesters(a, b)
    >>> merged.n_states
    4
    >>> merged.arrivals("1&1")
    3
    """
    if not isinstance(first, ServiceRequester) or not isinstance(
        second, ServiceRequester
    ):
        raise ValidationError("compose_requesters takes two ServiceRequesters")
    matrix = np.kron(first.chain.matrix, second.chain.matrix)
    names = [
        f"{a}&{b}" for a in first.state_names for b in second.state_names
    ]
    arrivals = [
        int(first.arrivals(a)) + int(second.arrivals(b))
        for a in first.state_names
        for b in second.state_names
    ]
    return ServiceRequester(MarkovChain(matrix, names), arrivals)
