"""Exact policy optimization via linear programming (paper Appendix A).

The unknowns are the *state-action frequencies* ``x[s, a]`` — total
discounted expected number of slices the system spends in joint state
``s`` with command ``a`` issued.  They satisfy the balance equations
(paper LP2, Fig. 11)::

    sum_a x[j, a]  -  gamma * sum_{s, a} P^a[s, j] x[s, a]  =  p0[j]

for every state ``j``, and any cost metric is linear in ``x``.  The
constrained problems PO1/PO2 (paper LP3/LP4) add budget rows for the
other metrics; the optimal policy is recovered from the optimal ``x``
by Eq. 16::

    pi[s, a] = x[s, a] / sum_a' x[s, a']

States never visited by the optimal flow (row sum zero) are completed
with a deterministic fallback rule — they are unreachable under the
optimal policy from ``p0``, but trace-driven simulation can still enter
them, so the completion matters in practice (see ``fallback``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.costs import LOSS, PENALTY, POWER, CostModel
from repro.core.policy import MarkovPolicy, PolicyEvaluation, evaluate_policy
from repro.core.system import PowerManagedSystem
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult
from repro.lp.solve import solve_lp
from repro.util.validation import ValidationError, check_probability

#: Relative row-sum threshold for "state never visited" in Eq. 16.
#: Scaled by the total flow (``sum(x)``, the horizon for the discounted
#: LP, 1 for the average-cost LP): a state carrying below this fraction
#: of the flow is indistinguishable from solver round-off, and
#: normalizing such dust into a policy row would let the optimal vertex
#: choice — which legitimately varies across equally-optimal bases —
#: leak noise into the policy.  Those states get the deterministic
#: fallback completion instead.
VISIT_TOL = 1e-12

#: Auto mode (``sparse=None``) assembles the balance equations sparsely
#: once the LP has at least this many variables; below it the dense
#: fallback's lower constant factors win.
SPARSE_AUTO_MIN_VARIABLES = 256


def balance_matrix(system: PowerManagedSystem, gamma: float, sparse: bool):
    """The balance-equation matrix ``A_bal`` (paper LP2, Fig. 11).

    Row ``j``, column ``(s, a)`` (state-major, command-minor) holds
    ``1{j == s} - gamma * P^a[s, j]``; the average-cost formulation is
    the ``gamma = 1`` special case.  With ``sparse=True`` the matrix is
    assembled straight from the per-command transition structure as CSR
    — column ``(s, a)`` only touches the states reachable from ``s`` in
    one slice, so the ``(n, n * n_a)`` matrix is never densified.  The
    two representations hold bit-identical values.
    """
    n, n_a = system.n_states, system.n_commands
    tensor = system.chain.tensor  # (A, N, N)
    if not sparse:
        outflow = np.kron(np.eye(n), np.ones((1, n_a)))
        inflow = np.transpose(tensor, (2, 1, 0)).reshape(n, n * n_a)
        return outflow - gamma * inflow
    eye = sp.identity(n, format="csr")
    blocks = [eye - gamma * sp.csr_matrix(tensor[a]).T for a in range(n_a)]
    # Blocks stack command-major; permute columns to the state-major
    # order the metric matrices flatten to: (s, a) -> a * n + s.
    stacked = sp.hstack(blocks, format="csc")
    order = (np.arange(n)[:, None] + n * np.arange(n_a)[None, :]).ravel()
    return stacked[:, order].tocsr()


class _ActionMaskMixin:
    """Action-mask validation and fallback-command selection.

    Shared between the discounted optimizer and the average-cost
    optimizer (:mod:`repro.core.average_cost`).
    """

    @staticmethod
    def _check_action_mask(system: PowerManagedSystem, action_mask):
        if action_mask is None:
            return None
        mask = np.asarray(action_mask, dtype=bool)
        expected = (system.n_states, system.n_commands)
        if mask.shape != expected:
            raise ValidationError(
                f"action_mask must have shape {expected}, got {mask.shape}"
            )
        if not np.all(mask.any(axis=1)):
            bad = int(np.argmin(mask.any(axis=1)))
            raise ValidationError(
                f"action_mask forbids every command in state {bad}"
            )
        return mask

    @staticmethod
    def _fallback_commands(
        system: PowerManagedSystem, fallback: str, mask
    ) -> np.ndarray:
        """Per-state deterministic completion for unvisited states."""
        if fallback == "greedy-service":
            idx = system.provider_index_of_state
            rates = system.provider.service_rate_matrix[idx]
            power = system.provider.power_matrix[idx]
            if mask is not None:
                rates = np.where(mask, rates, -np.inf)
                power = np.where(mask, power, np.inf)
            # True lexicographic argmax: highest service rate, ties
            # broken toward lower power, remaining ties toward the
            # lowest command index (lexsort is stable).  A weighted
            # score such as ``rates - 1e-9 * power`` mis-orders as soon
            # as power spans ~9 orders of magnitude relative to the
            # rate gaps, so the keys are compared exactly instead.
            return np.lexsort((power, -rates), axis=1)[:, 0]
        if fallback == "lowest-power":
            scores = -system.power_cost_matrix()
        else:
            # Otherwise interpret as an explicit command name.
            try:
                command = system.chain.command_index(fallback)
            except KeyError:
                raise ValidationError(
                    f"unknown fallback rule or command {fallback!r}; "
                    f"use 'greedy-service', 'lowest-power' or one of "
                    f"{system.command_names}"
                ) from None
            scores = np.zeros((system.n_states, system.n_commands))
            scores[:, command] = 1.0
        if mask is not None:
            scores = np.where(mask, scores, -np.inf)
        return np.argmax(scores, axis=1)

    def _policy_matrix_from_frequencies(self, frequencies) -> np.ndarray:
        """Eq. 16 normalization with fallback completion (shared).

        Validates/clips the frequencies, zeroes masked pairs, normalizes
        rows carrying more than :data:`VISIT_TOL` of the total flow and
        completes the rest with the deterministic fallback rule.  Used
        by both the discounted and the average-cost optimizer, which
        only differ in what the frequencies *mean*, not in how the
        policy is read off them.
        """
        freq = np.asarray(frequencies, dtype=float)
        expected = (self._system.n_states, self._system.n_commands)
        if freq.shape != expected:
            raise ValidationError(
                f"frequencies must have shape {expected}, got {freq.shape}"
            )
        freq = np.clip(freq, 0.0, None)
        if self._mask is not None:
            # Solver-tolerance dust on forbidden pairs must not leak
            # into the policy.
            freq = np.where(self._mask, freq, 0.0)
        row_sums = freq.sum(axis=1)
        matrix = np.zeros_like(freq)
        visited = row_sums > VISIT_TOL * max(1.0, float(row_sums.sum()))
        matrix[visited] = freq[visited] / row_sums[visited, None]
        fallback_commands = self._fallback_commands(
            self._system, self._fallback, self._mask
        )
        for state in np.where(~visited)[0]:
            matrix[state, fallback_commands[state]] = 1.0
        return matrix


@dataclass
class OptimizationResult:
    """Outcome of one policy-optimization solve.

    Attributes
    ----------
    feasible:
        True when the LP had an optimal solution (constraints can be
        met).  When False, every other field except ``lp_result`` and
        ``constraints`` is ``None`` — matching the paper's convention
        ``f(c) = +inf`` on infeasible instances.
    policy:
        The optimal randomized Markov stationary policy (Eq. 16).
    frequencies:
        Optimal state-action frequencies ``x`` with shape
        ``(n_states, n_commands)``.
    evaluation:
        Closed-form evaluation of ``policy`` (totals and per-slice
        averages of every registered metric).
    objective_metric:
        Name of the optimized metric.
    objective_average:
        Optimal per-slice average of the objective metric.
    constraints:
        The per-slice bounds that were imposed, as
        ``{metric: (sense, bound)}``.
    gamma:
        Discount factor used.
    lp_result:
        The raw LP backend result (for diagnostics).
    """

    feasible: bool
    policy: MarkovPolicy | None
    frequencies: np.ndarray | None
    evaluation: PolicyEvaluation | None
    objective_metric: str
    objective_average: float | None
    constraints: dict[str, tuple[str, float]]
    gamma: float
    lp_result: LPResult = field(repr=False, default=None)

    def average(self, metric: str) -> float:
        """Per-slice average of ``metric`` under the optimal policy."""
        self.require_feasible()
        return self.evaluation.averages[metric]

    def require_feasible(self) -> "OptimizationResult":
        """Return self, raising if the problem was infeasible."""
        if not self.feasible:
            raise InfeasibleProblemError(
                f"policy optimization infeasible under constraints "
                f"{self.constraints!r}"
            )
        return self


class InfeasibleProblemError(RuntimeError):
    """The requested constraint combination cannot be met."""


class PolicyOptimizer(_ActionMaskMixin):
    """Exact policy optimization for a power-managed system.

    Parameters
    ----------
    system:
        The composed joint system.
    costs:
        Registered cost metrics (must include whatever metrics are used
        as objectives or constraints; :meth:`CostModel.standard`
        registers ``power``, ``penalty`` and ``loss``).
    gamma:
        Discount factor in (0, 1); the expected session length is
        ``1/(1-gamma)`` slices (paper Section IV).
    initial_distribution:
        Initial joint-state distribution ``p0``; defaults to uniform.
    backend:
        LP backend name (see :func:`repro.lp.available_backends`).
    cross_check:
        Forwarize to :func:`repro.lp.solve_lp` — solve every LP twice
        with independent backends and compare.
    fallback:
        Completion rule for states the optimal flow never visits:
        ``"greedy-service"`` (default: command with the highest service
        rate, ties to lower power), ``"lowest-power"``, or an explicit
        command name applied to all such states.
    action_mask:
        Optional boolean ``(n_states, n_commands)`` array; ``False``
        marks command choices the hardware does not expose to the power
        manager (e.g. the CPU case study's unconditional reactive wake,
        Section VI-C).  Masked-out state-action frequencies are pinned
        to zero in every LP, and the extracted policy never issues a
        masked command.  Every state must keep at least one allowed
        command.
    sparse:
        Representation of the balance-equation block: ``True`` keeps it
        as a CSR matrix end to end (sparse simplex basis, CSR
        pass-through to HiGHS), ``False`` forces the dense fallback and
        ``None`` (default) picks sparse once the LP has at least
        :data:`SPARSE_AUTO_MIN_VARIABLES` variables.  Both
        representations produce the same LP values; only solve speed
        and memory differ.

    Examples
    --------
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> opt = PolicyOptimizer(bundle.system, bundle.costs, gamma=0.99999,
    ...                       initial_distribution=bundle.initial_distribution)
    >>> res = opt.minimize_power(penalty_bound=0.5, loss_bound=0.2)
    >>> res.feasible
    True
    """

    def __init__(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        gamma: float,
        initial_distribution=None,
        backend: str = "scipy",
        cross_check: bool = False,
        fallback: str = "greedy-service",
        action_mask=None,
        sparse: bool | None = None,
    ):
        if not isinstance(system, PowerManagedSystem):
            raise ValidationError("system must be a PowerManagedSystem")
        if not isinstance(costs, CostModel):
            raise ValidationError("costs must be a CostModel")
        if costs.system is not system:
            raise ValidationError("costs were built for a different system")
        gamma = check_probability(gamma, "gamma")
        if not 0.0 < gamma < 1.0:
            raise ValidationError(f"gamma must be in (0, 1), got {gamma!r}")
        self._system = system
        self._costs = costs
        self._gamma = gamma
        if initial_distribution is None:
            initial_distribution = system.uniform_distribution()
        self._p0 = system.check_distribution(initial_distribution)
        self._backend = backend
        self._cross_check = bool(cross_check)
        self._fallback = fallback

        self._mask = self._check_action_mask(system, action_mask)

        # Balance-equation matrix, built once: A_bal x = p0 with columns
        # in (state-major, command-minor) order matching flattened
        # (n_states, n_commands) metric matrices.
        n, n_a = system.n_states, system.n_commands
        if sparse is None:
            sparse = n * n_a >= SPARSE_AUTO_MIN_VARIABLES
        self._sparse = bool(sparse)
        self._balance = balance_matrix(system, gamma, self._sparse)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def system(self) -> PowerManagedSystem:
        """The system being optimized."""
        return self._system

    @property
    def costs(self) -> CostModel:
        """The registered cost metrics."""
        return self._costs

    @property
    def gamma(self) -> float:
        """Discount factor."""
        return self._gamma

    @property
    def expected_horizon(self) -> float:
        """Expected session length ``1/(1-gamma)`` in slices."""
        return 1.0 / (1.0 - self._gamma)

    @property
    def initial_distribution(self) -> np.ndarray:
        """Initial joint-state distribution ``p0`` (copy)."""
        return self._p0.copy()

    @property
    def backend(self) -> str:
        """LP backend name this optimizer solves with."""
        return self._backend

    @property
    def cross_check(self) -> bool:
        """Whether every LP solve is cross-checked on a second backend."""
        return self._cross_check

    @property
    def sparse(self) -> bool:
        """Whether the balance block is assembled (and solved) sparse."""
        return self._sparse

    @property
    def bound_scale(self) -> float:
        """Multiplier from a per-slice metric bound to its LP row RHS.

        The discounted LP accounts in expected totals over the horizon,
        so per-slice bounds are scaled by ``1/(1-gamma)`` (paper Example
        A.2).  Used by the sweep engine to mutate the constraint row.
        """
        return self.expected_horizon

    # ------------------------------------------------------------------
    # the general solve
    # ------------------------------------------------------------------
    def build_lp(
        self,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ) -> tuple[LinearProgram, dict[str, tuple[str, float]]]:
        """Assemble the LP3/LP4 instance without solving it.

        Returns the :class:`LinearProgram` and the recorded constraint
        dict ``{metric: (sense, per_slice_bound)}``.  Bound rows are
        appended in iteration order, upper bounds before lower bounds —
        the sweep engine relies on appending its swept constraint last
        and mutating only that row's RHS between solves.
        """
        if sense not in ("min", "max"):
            raise ValidationError(f"sense must be 'min' or 'max', got {sense!r}")
        objective_matrix = self._costs.metric(objective)
        c = objective_matrix.reshape(-1)
        if sense == "max":
            c = -c

        lp = LinearProgram(c)
        if self._sparse:
            lp.add_equality_block(self._balance, self._p0)
        else:
            for j in range(self._system.n_states):
                lp.add_equality(self._balance[j], self._p0[j])
        if self._mask is not None and not self._mask.all():
            # One row pins every masked frequency to zero (x >= 0 makes
            # the sum-to-zero equality equivalent to per-entry zeros).
            forbidden = (~self._mask).astype(float).reshape(-1)
            lp.add_equality(forbidden, 0.0)

        horizon = self.expected_horizon
        recorded: dict[str, tuple[str, float]] = {}
        for name, bound in (upper_bounds or {}).items():
            lp.add_inequality(
                self._costs.metric(name).reshape(-1), float(bound) * horizon
            )
            recorded[name] = ("<=", float(bound))
        for name, bound in (lower_bounds or {}).items():
            lp.add_lower_bound_inequality(
                self._costs.metric(name).reshape(-1), float(bound) * horizon
            )
            recorded[name] = (">=", float(bound))
        return lp, recorded

    def result_from_lp(
        self,
        lp_result: LPResult,
        objective: str,
        constraints: dict[str, tuple[str, float]],
    ) -> OptimizationResult:
        """Turn a raw LP solve into an :class:`OptimizationResult`.

        Extracts the policy (Eq. 16), evaluates it in closed form and
        packages everything; infeasible solves produce the standard
        ``feasible=False`` result.
        """
        if not lp_result.is_optimal:
            return OptimizationResult(
                feasible=False,
                policy=None,
                frequencies=None,
                evaluation=None,
                objective_metric=objective,
                objective_average=None,
                constraints=constraints,
                gamma=self._gamma,
                lp_result=lp_result,
            )

        frequencies = np.clip(
            lp_result.x.reshape(self._system.n_states, self._system.n_commands),
            0.0,
            None,
        )
        policy = self.policy_from_frequencies(frequencies)
        evaluation = evaluate_policy(
            self._system, self._costs, policy, self._gamma, self._p0
        )
        return OptimizationResult(
            feasible=True,
            policy=policy,
            frequencies=frequencies,
            evaluation=evaluation,
            objective_metric=objective,
            objective_average=evaluation.averages[objective],
            constraints=constraints,
            gamma=self._gamma,
            lp_result=lp_result,
        )

    def optimize(
        self,
        objective: str,
        sense: str = "min",
        upper_bounds: dict[str, float] | None = None,
        lower_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """Optimize ``objective`` subject to per-slice metric bounds.

        Parameters
        ----------
        objective:
            Name of a registered metric to optimize.
        sense:
            ``"min"`` or ``"max"``.
        upper_bounds:
            ``{metric: bound}`` — per-slice average of each metric must
            not exceed its bound (scaled internally by the horizon,
            matching paper Example A.2).
        lower_bounds:
            ``{metric: bound}`` — per-slice average must be at least the
            bound (e.g. a minimum-throughput requirement).
        """
        lp, recorded = self.build_lp(objective, sense, upper_bounds, lower_bounds)
        lp_result = solve_lp(lp, backend=self._backend, cross_check=self._cross_check)
        return self.result_from_lp(lp_result, objective, recorded)

    # ------------------------------------------------------------------
    # paper-named entry points
    # ------------------------------------------------------------------
    def minimize_power(
        self,
        penalty_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """PO2 / LP4: minimum power under performance constraints."""
        upper = dict(extra_upper_bounds or {})
        if penalty_bound is not None:
            upper[PENALTY] = float(penalty_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(POWER, "min", upper_bounds=upper)

    def minimize_penalty(
        self,
        power_bound: float | None = None,
        loss_bound: float | None = None,
        extra_upper_bounds: dict[str, float] | None = None,
    ) -> OptimizationResult:
        """PO1 / LP3: minimum performance penalty under a power budget."""
        upper = dict(extra_upper_bounds or {})
        if power_bound is not None:
            upper[POWER] = float(power_bound)
        if loss_bound is not None:
            upper[LOSS] = float(loss_bound)
        return self.optimize(PENALTY, "min", upper_bounds=upper)

    def minimize_unconstrained(self, objective: str = PENALTY) -> OptimizationResult:
        """POU / LP2: unconstrained minimization of one metric.

        By Theorem A.1 the optimum is attained by a deterministic
        Markov stationary policy; vertex-seeking LP backends (simplex,
        HiGHS) return it directly.
        """
        return self.optimize(objective, "min")

    # ------------------------------------------------------------------
    # policy extraction (paper Eq. 16)
    # ------------------------------------------------------------------
    def policy_from_frequencies(self, frequencies: np.ndarray) -> MarkovPolicy:
        """Extract the randomized policy from state-action frequencies."""
        return MarkovPolicy(
            self._policy_matrix_from_frequencies(frequencies),
            self._system.command_names,
        )
