"""Incremental, parallel Pareto sweep engine (the tool's curve factory).

The paper's headline artifacts (Figs. 6, 8b, 9a) are trade-off curves:
one constrained LP (LP3/LP4) per swept bound.  The naive loop re-solves
everything from scratch at every bound; this engine exploits the sweep
structure instead:

* **Assemble once** — the balance-equation block never changes along a
  sweep, so one :class:`~repro.lp.problem.LinearProgram` is built and
  only the swept constraint row's right-hand side is mutated per bound
  (:meth:`LinearProgram.set_inequality_rhs`).
* **Dedupe** — bounds equal within tolerance are solved once and share
  the solved point.
* **Feasibility bracketing** — feasibility is monotone in the bound
  (relaxing an upper bound can only grow the feasible set), so the
  frontier of the infeasible region is located by bisection over the
  sorted bounds; bounds on the infeasible side are marked without
  burning a full phase-1 solve each.
* **Warm starts** — on warm-capable LP backends (the from-scratch
  simplex) each solve chains the previous bound's optimal basis: the
  basis stays dual feasible under an RHS change, so a few dual-simplex
  pivots replace a cold two-phase solve.
* **Parallel fan-out** — ``n_jobs > 1`` solves the remaining cold
  points across processes (the LPs are independent); warm chaining is
  inherently serial, so the two modes are alternatives, not a stack.
* **Adaptive refinement** — ``refine=N`` bisects the ``N`` largest
  objective gaps between adjacent feasible points, densifying the curve
  where it bends most.

The engine is duck-typed over the optimizer: anything exposing
``build_lp`` / ``result_from_lp`` / ``bound_scale`` / ``backend`` /
``cross_check`` / ``costs`` works — both
:class:`~repro.core.optimizer.PolicyOptimizer` (discounted, LP3/LP4)
and :class:`~repro.core.average_cost.AverageCostOptimizer` qualify.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.costs import PENALTY, POWER
from repro.core.optimizer import OptimizationResult
from repro.core.pareto import ParetoCurve, ParetoPoint
from repro.lp.solve import solve_lp, supports_warm_start
from repro.util.validation import ValidationError

#: Default relative tolerance for treating two swept bounds as equal.
DEDUPE_RTOL = 1e-9

#: Refinement stops once the largest adjacent objective gap is below
#: this (absolute) — bisecting a flat curve adds nothing.
REFINE_GAP_TOL = 1e-12


@dataclass
class SweepStats:
    """Solve accounting for one :meth:`ParetoSweepSolver.solve` call.

    Attributes
    ----------
    n_requested / n_unique:
        Bounds passed in, and bounds left after tolerance-dedupe.
    n_solves:
        LP solves actually performed (including refinement solves).
    n_warm / n_cold:
        Split of ``n_solves`` into warm-started and cold solves (warm
        counts solves *attempted* with a warm basis; an unusable basis
        silently falls back inside the backend).
    n_deduped:
        Requested bounds that reused another bound's solve.
    n_bracket_skipped:
        Bounds proved infeasible by bracketing without their own solve.
    n_refined:
        Points added by adaptive refinement.
    lp_iterations / lp_refactorizations:
        Summed simplex pivots and basis refactorizations across every
        LP solve of the sweep, from ``LPResult.stats`` (0 on backends
        that report no stats).  This is the CLI's ``--profile`` data.
    """

    n_requested: int = 0
    n_unique: int = 0
    n_solves: int = 0
    n_warm: int = 0
    n_cold: int = 0
    n_deduped: int = 0
    n_bracket_skipped: int = 0
    n_refined: int = 0
    lp_iterations: int = 0
    lp_refactorizations: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for experiment/benchmark JSON payloads)."""
        return {
            "n_requested": self.n_requested,
            "n_unique": self.n_unique,
            "n_solves": self.n_solves,
            "n_warm": self.n_warm,
            "n_cold": self.n_cold,
            "n_deduped": self.n_deduped,
            "n_bracket_skipped": self.n_bracket_skipped,
            "n_refined": self.n_refined,
            "lp_iterations": self.lp_iterations,
            "lp_refactorizations": self.lp_refactorizations,
        }


# ----------------------------------------------------------------------
# process-parallel worker (state installed per process by the initializer)
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _init_worker(optimizer, objective, constraint, sense, extra_upper) -> None:
    _WORKER["optimizer"] = optimizer
    _WORKER["objective"] = objective
    _WORKER["constraint"] = constraint
    _WORKER["sense"] = sense
    _WORKER["extra_upper"] = extra_upper


def _solve_bound_in_worker(bound: float) -> OptimizationResult:
    optimizer = _WORKER["optimizer"]
    upper = dict(_WORKER["extra_upper"])
    lower = None
    if _WORKER["sense"] == "<=":
        upper[_WORKER["constraint"]] = bound
    else:
        lower = {_WORKER["constraint"]: bound}
    return optimizer.optimize(
        _WORKER["objective"], "min", upper_bounds=upper or None, lower_bounds=lower
    )


class ParetoSweepSolver:
    """Incremental constrained-LP sweep producing a :class:`ParetoCurve`.

    Parameters
    ----------
    optimizer:
        A :class:`~repro.core.optimizer.PolicyOptimizer` (or any object
        with the same ``build_lp`` / ``result_from_lp`` surface).
    objective / constraint:
        Metric names for the two axes.
    constraint_sense:
        ``"<="`` sweeps an upper bound (paper PO2: penalty budget);
        ``">="`` sweeps a lower bound (e.g. the web server's minimum
        throughput, Fig. 9a).  Feasibility is monotone either way —
        infeasible *prefix* for ``"<="``, infeasible *suffix* for
        ``">="`` — and bracketing adapts.
    extra_upper_bounds:
        Fixed per-slice upper bounds applied at every point.
    dedupe_rtol:
        Bounds within ``dedupe_rtol * max(1, |bound|)`` of each other
        collapse into one solved point.
    warm_start:
        Chain the previous bound's optimal basis into the next solve on
        warm-capable backends (no-op on scipy/interior-point).
    bracket:
        Locate the feasibility frontier by bisection instead of solving
        every infeasible bound.
    n_jobs:
        Number of worker processes for cold-point fan-out; 1 (default)
        keeps the serial warm-chained sweep.

    Examples
    --------
    >>> from repro.core.optimizer import PolicyOptimizer
    >>> from repro.systems import example_system
    >>> bundle = example_system.build()
    >>> opt = PolicyOptimizer(bundle.system, bundle.costs, gamma=bundle.gamma,
    ...                       initial_distribution=bundle.initial_distribution)
    >>> solver = ParetoSweepSolver(opt)
    >>> curve = solver.solve([0.3, 0.5, 0.5, 0.9])   # duplicate solved once
    >>> len(curve.points)
    3
    """

    def __init__(
        self,
        optimizer,
        objective: str = POWER,
        constraint: str = PENALTY,
        *,
        constraint_sense: str = "<=",
        extra_upper_bounds: dict[str, float] | None = None,
        dedupe_rtol: float = DEDUPE_RTOL,
        warm_start: bool = True,
        bracket: bool = True,
        n_jobs: int = 1,
    ):
        for attr in ("build_lp", "result_from_lp", "optimize"):
            if not callable(getattr(optimizer, attr, None)):
                raise ValidationError(
                    f"optimizer must expose {attr}(); got {type(optimizer).__name__}"
                )
        if constraint_sense not in ("<=", ">="):
            raise ValidationError(
                f"constraint_sense must be '<=' or '>=', got {constraint_sense!r}"
            )
        n_jobs = int(n_jobs)
        if n_jobs < 1:
            raise ValidationError(f"n_jobs must be >= 1, got {n_jobs}")
        self._optimizer = optimizer
        self._objective = str(objective)
        self._constraint = str(constraint)
        self._sense = constraint_sense
        self._extra_upper = {
            str(k): float(v) for k, v in (extra_upper_bounds or {}).items()
        }
        self._dedupe_rtol = float(dedupe_rtol)
        self._warm_start = bool(warm_start)
        self._bracket = bool(bracket)
        self._n_jobs = n_jobs
        self.stats = SweepStats()
        # Lazily-built shared LP (balance block assembled exactly once).
        self._lp = None
        self._row_index: int | None = None
        self._base_constraints: dict[str, tuple[str, float]] = {}

    # ------------------------------------------------------------------
    # shared-LP plumbing
    # ------------------------------------------------------------------
    def _ensure_lp(self) -> None:
        if self._lp is not None:
            return
        lp, recorded = self._optimizer.build_lp(
            self._objective, "min", upper_bounds=self._extra_upper or None
        )
        row = self._optimizer.costs.metric(self._constraint).reshape(-1)
        if self._sense == "<=":
            lp.add_inequality(row, 0.0)
        else:
            lp.add_lower_bound_inequality(row, 0.0)
        self._lp = lp
        self._row_index = lp.n_inequalities - 1
        self._base_constraints = recorded

    def _solve_bound(self, bound: float, warm=None):
        """One LP solve at ``bound``; returns (result, warm_state)."""
        self._ensure_lp()
        rhs = float(bound) * float(self._optimizer.bound_scale)
        if self._sense == ">=":
            rhs = -rhs  # lower bounds are stored as -row.x <= -rhs
        self._lp.set_inequality_rhs(self._row_index, rhs)
        use_warm = (
            warm
            if self._warm_start and supports_warm_start(self._optimizer.backend)
            else None
        )
        lp_result = solve_lp(
            self._lp,
            backend=self._optimizer.backend,
            cross_check=self._optimizer.cross_check,
            warm_start=use_warm,
        )
        constraints = dict(self._base_constraints)
        constraints[self._constraint] = (self._sense, float(bound))
        result = self._optimizer.result_from_lp(
            lp_result, self._objective, constraints
        )
        self.stats.n_solves += 1
        if use_warm is not None:
            self.stats.n_warm += 1
        else:
            self.stats.n_cold += 1
        lp_stats = getattr(lp_result, "stats", None)
        if lp_stats:
            self.stats.lp_iterations += int(lp_stats.get("iterations", 0))
            self.stats.lp_refactorizations += int(
                lp_stats.get("refactorizations", 0)
            )
        return result, getattr(lp_result, "warm_start", None)

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def solve(self, bounds: Sequence[float], *, refine: int = 0) -> ParetoCurve:
        """Sweep ``bounds`` and return the resulting curve.

        ``refine`` extra points are inserted by bisecting the largest
        objective gaps between adjacent feasible points.
        """
        requested = [float(b) for b in bounds]
        if not requested:
            raise ValidationError("bounds must contain at least one value")
        if any(not np.isfinite(b) for b in requested):
            raise ValidationError("bounds must be finite")
        refine = int(refine)
        if refine < 0:
            raise ValidationError(f"refine must be >= 0, got {refine}")

        self.stats = SweepStats(n_requested=len(requested))
        unique = self._dedupe(sorted(requested))
        self.stats.n_unique = len(unique)
        self.stats.n_deduped = len(requested) - len(unique)

        solved: dict[int, tuple[OptimizationResult, object]] = {}
        feasible_idx = self._bracket_frontier(unique, solved)
        self._solve_remaining(unique, feasible_idx, solved)

        curve = ParetoCurve(
            objective_metric=self._objective, constraint_metric=self._constraint
        )
        warm_by_bound: dict[float, object] = {}
        for i, bound in enumerate(unique):
            if i in solved:
                result, warm = solved[i]
                curve.points.append(self._point(bound, result))
                warm_by_bound[bound] = warm
            else:
                # Proved infeasible by bracketing, no solve of its own.
                curve.points.append(
                    ParetoPoint(bound=bound, feasible=False, objective=None)
                )
                self.stats.n_bracket_skipped += 1

        self._refine(curve, warm_by_bound, refine)
        curve.stats = replace(self.stats)
        return curve

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def _dedupe(self, sorted_bounds: list[float]) -> list[float]:
        unique = [sorted_bounds[0]]
        for bound in sorted_bounds[1:]:
            scale = max(1.0, abs(unique[-1]))
            if abs(bound - unique[-1]) > self._dedupe_rtol * scale:
                unique.append(bound)
        return unique

    def _bracket_frontier(
        self,
        unique: list[float],
        solved: dict[int, tuple[OptimizationResult, object]],
    ) -> list[int]:
        """Return the indices of possibly-feasible bounds.

        Feasibility is monotone along the sorted bounds — loosening the
        swept constraint only grows the feasible set — so a bisection
        over the *loose-to-tight* ordering finds the frontier.  Bounds
        solved along the way are recorded in ``solved``.

        Monotonicity only holds for *true* (in)feasibility, so the
        bisection trusts nothing but clean solver statuses: if any
        probe ends in a numerical error or iteration limit, bracketing
        aborts and every bound is solved individually, exactly like the
        cold loop.
        """
        from repro.lp.result import LPStatus

        k = len(unique)
        if self._sense == "<=":
            loose_to_tight = list(range(k - 1, -1, -1))
        else:
            loose_to_tight = list(range(k))
        if not self._bracket or k == 1:
            return sorted(loose_to_tight)

        class _UnprovenStatus(Exception):
            pass

        # Probes chain the most recent *feasible* probe's basis: tightening
        # the RHS keeps that basis dual feasible, so the dual simplex either
        # re-optimizes in a few pivots or certifies infeasibility almost
        # immediately — far cheaper than a cold phase-1 proof.
        probe_warm: list[object] = [None]

        def feasible_at(position: int) -> bool:
            index = loose_to_tight[position]
            if index not in solved:
                solved[index] = self._solve_bound(
                    unique[index], warm=probe_warm[0]
                )
            result, warm = solved[index]
            status = getattr(result.lp_result, "status", None)
            if status not in (LPStatus.OPTIMAL, LPStatus.INFEASIBLE):
                raise _UnprovenStatus
            if result.feasible and warm is not None:
                probe_warm[0] = warm
            return result.feasible

        try:
            if not feasible_at(0):
                return []  # even the loosest bound is provably infeasible
            if feasible_at(k - 1):
                return sorted(loose_to_tight)  # no infeasible side at all
            lo, hi = 0, k - 1  # feasible at lo, infeasible at hi
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if feasible_at(mid):
                    lo = mid
                else:
                    hi = mid
            return sorted(loose_to_tight[: lo + 1])
        except _UnprovenStatus:
            return sorted(loose_to_tight)

    def _solve_remaining(
        self,
        unique: list[float],
        feasible_idx: list[int],
        solved: dict[int, tuple[OptimizationResult, object]],
    ) -> None:
        """Solve every possibly-feasible bound not already solved."""
        pending = [i for i in feasible_idx if i not in solved]
        if not pending:
            return
        if self._n_jobs > 1 and len(pending) > 1:
            self._fan_out(unique, pending, solved)
            return
        # Serial incremental pass: ascending bound order, chaining the
        # warm basis from the nearest already-solved neighbour.
        warm = None
        for i in sorted(set(feasible_idx)):
            if i in solved:
                warm = solved[i][1]
                continue
            solved[i] = self._solve_bound(unique[i], warm=warm)
            warm = solved[i][1]

    def _fan_out(
        self,
        unique: list[float],
        pending: list[int],
        solved: dict[int, tuple[OptimizationResult, object]],
    ) -> None:
        """Cold-solve ``pending`` bounds across worker processes."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        initargs = (
            self._optimizer,
            self._objective,
            self._constraint,
            self._sense,
            self._extra_upper,
        )
        n_workers = min(self._n_jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=initargs,
        ) as pool:
            results = list(
                pool.map(_solve_bound_in_worker, [unique[i] for i in pending])
            )
        for i, result in zip(pending, results):
            solved[i] = (result, None)
            self.stats.n_solves += 1
            self.stats.n_cold += 1

    def _refine(
        self,
        curve: ParetoCurve,
        warm_by_bound: dict[float, object],
        refine: int,
    ) -> None:
        """Bisect the largest objective gaps between feasible points."""
        for _ in range(refine):
            feasible = sorted(curve.feasible_points, key=lambda p: p.bound)
            if len(feasible) < 2:
                return
            gaps = [
                abs(feasible[i].objective - feasible[i + 1].objective)
                for i in range(len(feasible) - 1)
            ]
            best = int(np.argmax(gaps))
            if gaps[best] <= REFINE_GAP_TOL:
                return
            left, right = feasible[best], feasible[best + 1]
            bound = 0.5 * (left.bound + right.bound)
            scale = max(1.0, abs(bound))
            if (
                abs(bound - left.bound) <= self._dedupe_rtol * scale
                or abs(right.bound - bound) <= self._dedupe_rtol * scale
            ):
                return  # the gap is too narrow to bisect meaningfully
            result, warm = self._solve_bound(
                bound, warm=warm_by_bound.get(left.bound)
            )
            warm_by_bound[bound] = warm
            point = self._point(bound, result)
            position = next(
                (i for i, p in enumerate(curve.points) if p.bound > bound),
                len(curve.points),
            )
            curve.points.insert(position, point)
            self.stats.n_refined += 1

    @staticmethod
    def _point(bound: float, result: OptimizationResult) -> ParetoPoint:
        if result.feasible:
            return ParetoPoint(
                bound=bound,
                feasible=True,
                objective=result.objective_average,
                averages=dict(result.evaluation.averages),
                policy=result.policy,
                result=result,
            )
        return ParetoPoint(
            bound=bound, feasible=False, objective=None, result=result
        )
