"""The Markov composer: joint system chain of SP, SR and SQ (paper Eq. 4).

The composed system is a controlled Markov chain over triples
``x = (s, r, q)`` (provider state, requester state, queue length) with
the provider's command set.  Following paper Example 3.5, arrivals
materialize *with* the SR transition and may be serviced in the same
slice, so the one-step probability factorizes as::

    P[(s,r,q) -> (s',r',q') | a]
        = P_SP^a[s, s'] * P_SR[r, r'] * P_SQ^{sigma(s,a), z(r')}[q, q']

(see DESIGN.md, "Queue/SR timing convention").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.components import ServiceProvider, ServiceQueue, ServiceRequester
from repro.markov.controlled import ControlledMarkovChain
from repro.util.validation import ValidationError, check_distribution


@dataclass(frozen=True)
class SystemState:
    """A joint system state ``(provider, requester, queue)``.

    Attributes
    ----------
    provider:
        Service-provider state name.
    requester:
        Service-requester state name.
    queue:
        Number of enqueued requests.
    """

    provider: str
    requester: str
    queue: int

    def __str__(self) -> str:
        return f"({self.provider},{self.requester},{self.queue})"


class PowerManagedSystem:
    """Joint controlled Markov chain of a power-managed system.

    Parameters
    ----------
    provider:
        The service provider (resource under PM control).
    requester:
        The workload model.
    queue:
        The bounded request queue; ``ServiceQueue(0)`` models systems
        without buffering (paper's CPU case study).

    Examples
    --------
    Composing the paper's running example gives the 8-state chain of
    Example 3.5::

        >>> from repro.systems import example_system
        >>> system = example_system.build().system
        >>> system.n_states
        8
        >>> system.n_commands
        2
    """

    def __init__(
        self,
        provider: ServiceProvider,
        requester: ServiceRequester,
        queue: ServiceQueue,
    ):
        if not isinstance(provider, ServiceProvider):
            raise ValidationError("provider must be a ServiceProvider")
        if not isinstance(requester, ServiceRequester):
            raise ValidationError("requester must be a ServiceRequester")
        if not isinstance(queue, ServiceQueue):
            raise ValidationError("queue must be a ServiceQueue")
        self._sp = provider
        self._sr = requester
        self._sq = queue

        n_sp = provider.n_states
        n_sr = requester.n_states
        n_q = queue.n_states
        self._n_states = n_sp * n_sr * n_q

        # Decomposition arrays: joint index -> component indices.
        grid = np.indices((n_sp, n_sr, n_q))
        self._sp_of = grid[0].reshape(-1)
        self._sr_of = grid[1].reshape(-1)
        self._q_of = grid[2].reshape(-1)

        self._states = tuple(
            SystemState(
                provider.state_names[self._sp_of[i]],
                requester.state_names[self._sr_of[i]],
                int(self._q_of[i]),
            )
            for i in range(self._n_states)
        )
        self._chain = self._compose()

    # ------------------------------------------------------------------
    # composition (paper Eq. 4)
    # ------------------------------------------------------------------
    def _compose(self) -> ControlledMarkovChain:
        sp, sr, sq = self._sp, self._sr, self._sq
        n_a = sp.n_commands
        n_sp, n_sr, n_q = sp.n_states, sr.n_states, sq.n_states

        sp_tensor = sp.chain.tensor  # (A, S, S)
        sr_matrix = sr.chain.matrix  # (R, R)
        rates = sp.service_rate_matrix  # (S, A)
        arrivals = sr.arrival_counts  # (R,)

        # Queue blocks QB[a, s, r', q, q'] depend on sigma(s, a) and
        # z(r'); cache by (sigma, z) since few distinct pairs occur.
        cache: dict[tuple[float, int], np.ndarray] = {}
        qb = np.empty((n_a, n_sp, n_sr, n_q, n_q))
        for a in range(n_a):
            for s in range(n_sp):
                sigma = float(rates[s, a])
                for r_next in range(n_sr):
                    z = int(arrivals[r_next])
                    key = (sigma, z)
                    if key not in cache:
                        cache[key] = sq.transition_matrix(sigma, z)
                    qb[a, s, r_next] = cache[key]

        # T[a, (s,r,q), (s',r',q')] = SP[a,s,s'] SR[r,r'] QB[a,s,r',q,q']
        joint = np.einsum("aij,kl,ailmn->aikmjln", sp_tensor, sr_matrix, qb)
        n = self._n_states
        matrices = joint.reshape(n_a, n, n)
        names = [str(state) for state in self._states]
        return ControlledMarkovChain(
            list(matrices), state_names=names, command_names=sp.command_names
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def provider(self) -> ServiceProvider:
        """The service provider component."""
        return self._sp

    @property
    def requester(self) -> ServiceRequester:
        """The service requester component."""
        return self._sr

    @property
    def queue(self) -> ServiceQueue:
        """The queue component."""
        return self._sq

    @property
    def chain(self) -> ControlledMarkovChain:
        """The composed joint controlled Markov chain."""
        return self._chain

    @property
    def n_states(self) -> int:
        """Number of joint states (``|S| * |R| * (Q+1)``)."""
        return self._n_states

    @property
    def n_commands(self) -> int:
        """Number of PM commands."""
        return self._sp.n_commands

    @property
    def command_names(self) -> tuple[str, ...]:
        """Command names, in index order."""
        return self._sp.command_names

    @property
    def states(self) -> tuple[SystemState, ...]:
        """All joint states in index order."""
        return self._states

    def state(self, index: int) -> SystemState:
        """The :class:`SystemState` at joint index ``index``."""
        return self._states[int(index)]

    def state_index(self, provider, requester, queue: int) -> int:
        """Joint index of ``(provider, requester, queue)``."""
        s = self._sp.chain.state_index(provider)
        r = self._sr.chain.state_index(requester)
        q = int(queue)
        if not 0 <= q <= self._sq.capacity:
            raise ValidationError(
                f"queue length {q} out of range [0, {self._sq.capacity}]"
            )
        return (s * self._sr.n_states + r) * self._sq.n_states + q

    @property
    def provider_index_of_state(self) -> np.ndarray:
        """For each joint state, the SP state index (copy)."""
        return self._sp_of.copy()

    @property
    def requester_index_of_state(self) -> np.ndarray:
        """For each joint state, the SR state index (copy)."""
        return self._sr_of.copy()

    @property
    def queue_length_of_state(self) -> np.ndarray:
        """For each joint state, the queue length (copy)."""
        return self._q_of.copy()

    # ------------------------------------------------------------------
    # cost building blocks
    # ------------------------------------------------------------------
    def expand_provider_table(self, table: np.ndarray) -> np.ndarray:
        """Lift an ``(n_sp_states, n_commands)`` table to joint states.

        Row ``x`` of the result equals row ``s(x)`` of ``table`` — used
        to turn the SP power table into the joint power cost.
        """
        table = np.asarray(table, dtype=float)
        expected = (self._sp.n_states, self.n_commands)
        if table.shape != expected:
            raise ValidationError(
                f"table must have shape {expected}, got {table.shape}"
            )
        return table[self._sp_of]

    def power_cost_matrix(self) -> np.ndarray:
        """Joint ``(n_states, n_commands)`` power cost (paper's m)."""
        return self.expand_provider_table(self._sp.power_matrix)

    def queue_length_penalty_matrix(self) -> np.ndarray:
        """Penalty ``g(x, a) = q`` — the paper's default performance cost."""
        return np.repeat(
            self._q_of.astype(float)[:, None], self.n_commands, axis=1
        )

    def request_loss_indicator_matrix(self) -> np.ndarray:
        """Indicator of the loss-risk condition (paper Appendix A).

        1 for states where the SR issues requests *and* the queue is
        full; the LP bounds the discounted frequency of this event.
        """
        arrivals = self._sr.arrival_counts
        issuing = arrivals[self._sr_of] > 0
        full = self._q_of == self._sq.capacity
        indicator = (issuing & full).astype(float)
        return np.repeat(indicator[:, None], self.n_commands, axis=1)

    def expected_loss_matrix(self) -> np.ndarray:
        """Expected requests lost per slice from each (state, command).

        A finer-grained loss metric than the indicator: averages the
        overflow of the queue law over the next SR state.  The
        ``(s, a, r', q)`` loss table is built once over the few unique
        ``(sigma, z)`` pairs and contracted over ``r'`` with a single
        einsum — the joint index factorizes as ``x = (s, r, q)``, so no
        per-state python loop is needed.  Output is bit-identical to
        the reference quadruple loop
        (:meth:`_expected_loss_matrix_reference`), pinned by an
        equivalence test.
        """
        sr_matrix = self._sr.chain.matrix  # (R, R)
        arrivals = self._sr.arrival_counts  # (R,)
        rates = self._sp.service_rate_matrix  # (S, A)
        n_sp, n_sr, n_q = self._sp.n_states, self._sr.n_states, self._sq.n_states
        n_a = self.n_commands

        # loss_tab[s, a, r', q] = expected_loss(q, sigma(s, a), z(r')),
        # filled per unique (sigma, z) pair exactly as the loop caches.
        loss_tab = np.empty((n_sp, n_a, n_sr, n_q))
        sigma_values: dict[float, list[tuple[int, int]]] = {}
        for s in range(n_sp):
            for a in range(n_a):
                sigma_values.setdefault(float(rates[s, a]), []).append((s, a))
        z_values: dict[int, list[int]] = {}
        for r_next in range(n_sr):
            z_values.setdefault(int(arrivals[r_next]), []).append(r_next)
        for sigma, sa_pairs in sigma_values.items():
            for z, r_nexts in z_values.items():
                losses = [
                    self._sq.expected_loss(q, sigma, z) for q in range(n_q)
                ]
                for s, a in sa_pairs:
                    for r_next in r_nexts:
                        loss_tab[s, a, r_next] = losses

        # out[(s, r, q), a] = sum_{r'} SR[r, r'] loss_tab[s, a, r', q];
        # plain einsum (no ``optimize=``) keeps the contraction a
        # sequential sum over r' in index order, matching the loop's
        # accumulation order float-for-float.
        out = np.einsum("rk,sakq->srqa", sr_matrix, loss_tab)
        return np.ascontiguousarray(
            out.reshape(self.n_states, self.n_commands)
        )

    def _expected_loss_matrix_reference(self) -> np.ndarray:
        """Reference quadruple loop for :meth:`expected_loss_matrix`.

        Kept as the semantic spec the vectorized path is pinned against
        (byte-identical) in the equivalence test.
        """
        sr_matrix = self._sr.chain.matrix
        arrivals = self._sr.arrival_counts
        rates = self._sp.service_rate_matrix
        out = np.zeros((self.n_states, self.n_commands))
        loss_cache: dict[tuple[int, float, int], float] = {}
        for x in range(self.n_states):
            s = int(self._sp_of[x])
            r = int(self._sr_of[x])
            q = int(self._q_of[x])
            for a in range(self.n_commands):
                sigma = float(rates[s, a])
                total = 0.0
                for r_next in range(self._sr.n_states):
                    z = int(arrivals[r_next])
                    key = (q, sigma, z)
                    if key not in loss_cache:
                        loss_cache[key] = self._sq.expected_loss(q, sigma, z)
                    total += sr_matrix[r, r_next] * loss_cache[key]
                out[x, a] = total
        return out

    # ------------------------------------------------------------------
    # initial distributions
    # ------------------------------------------------------------------
    def point_distribution(self, provider, requester, queue: int) -> np.ndarray:
        """Initial distribution concentrated on one joint state."""
        p0 = np.zeros(self.n_states)
        p0[self.state_index(provider, requester, queue)] = 1.0
        return p0

    def uniform_distribution(self) -> np.ndarray:
        """Uniform initial distribution over joint states."""
        return np.full(self.n_states, 1.0 / self.n_states)

    def check_distribution(self, p0) -> np.ndarray:
        """Validate an initial distribution for this system."""
        arr = check_distribution(p0, "initial_distribution")
        if arr.size != self.n_states:
            raise ValidationError(
                f"initial distribution has {arr.size} entries for "
                f"{self.n_states} states"
            )
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PowerManagedSystem(n_states={self.n_states}, "
            f"commands={self.command_names})"
        )
