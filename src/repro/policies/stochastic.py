"""Agent wrapper for (randomized) Markov stationary policies.

Bridges the optimizer's output — a :class:`~repro.core.policy.MarkovPolicy`
matrix over joint states — to the simulation engine's agent protocol.
Each slice the agent looks up the joint state index and samples a
command from the policy row, exactly the behaviour paper Definition 3.5
prescribes for randomized decisions.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError


class StationaryPolicyAgent(PolicyAgent):
    """Simulate a Markov stationary policy matrix.

    Parameters
    ----------
    system:
        The composed system (provides the joint state indexing).
    policy:
        The policy to execute; shapes must match the system.
    """

    def __init__(self, system: PowerManagedSystem, policy: MarkovPolicy):
        if (
            policy.n_states != system.n_states
            or policy.n_commands != system.n_commands
        ):
            raise ValidationError(
                f"policy shape ({policy.n_states}, {policy.n_commands}) does "
                f"not match system ({system.n_states}, {system.n_commands})"
            )
        self._system = system
        self._policy = policy
        self._matrix = policy.matrix
        self._n_requesters = system.requester.n_states
        self._n_queue = system.queue.n_states
        # Deterministic rows short-circuit the RNG draw.
        self._deterministic_row = self._matrix.max(axis=1) > 1.0 - 1e-12
        self._greedy = np.argmax(self._matrix, axis=1)

    @property
    def policy(self) -> MarkovPolicy:
        """The wrapped policy."""
        return self._policy

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        state = (
            observation.provider_state * self._n_requesters
            + observation.requester_state
        ) * self._n_queue + observation.queue_length
        if self._deterministic_row[state]:
            return int(self._greedy[state])
        return int(rng.choice(self._matrix.shape[1], p=self._matrix[state]))

    def describe(self) -> str:
        kind = "deterministic" if self._policy.is_deterministic else "randomized"
        return f"stationary-policy({kind})"
