"""Agent wrapper for (randomized) Markov stationary policies.

Bridges the optimizer's output — a :class:`~repro.core.policy.MarkovPolicy`
matrix over joint states — to the simulation engine's agent protocol.
Each slice the agent looks up the joint state index and samples a
command from the policy row, exactly the behaviour paper Definition 3.5
prescribes for randomized decisions.

The policy rows are compiled once into normalized cumulative rows and
sampled through :func:`repro.sim.rng.sample_categorical`, which consumes
one uniform per randomized decision with the same inverse-CDF semantics
(and stream position) as ``Generator.choice``; deterministic rows
short-circuit the draw entirely.  Carrying the
:class:`~repro.policies.base.StationaryAgent` marker lets backend
dispatch prove the agent vectorizable.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, StationaryAgent
from repro.sim.rng import categorical_cumsum, sample_categorical
from repro.util.validation import ValidationError


class StationaryPolicyAgent(StationaryAgent):
    """Simulate a Markov stationary policy matrix.

    Parameters
    ----------
    system:
        The composed system (provides the joint state indexing).
    policy:
        The policy to execute; shapes must match the system.
    """

    def __init__(self, system: PowerManagedSystem, policy: MarkovPolicy):
        if (
            policy.n_states != system.n_states
            or policy.n_commands != system.n_commands
        ):
            raise ValidationError(
                f"policy shape ({policy.n_states}, {policy.n_commands}) does "
                f"not match system ({system.n_states}, {system.n_commands})"
            )
        self._system = system
        self._policy = policy
        self._matrix = policy.matrix
        self._cumsum = categorical_cumsum(self._matrix, axis=1)
        self._n_requesters = system.requester.n_states
        self._n_queue = system.queue.n_states
        # Deterministic rows short-circuit the RNG draw.
        self._deterministic_row = self._matrix.max(axis=1) > 1.0 - 1e-12
        self._greedy = np.argmax(self._matrix, axis=1)

    @property
    def policy(self) -> MarkovPolicy:
        """The wrapped policy."""
        return self._policy

    def stationary_policy(self, system: PowerManagedSystem) -> MarkovPolicy:
        """The wrapped policy, validated against ``system``."""
        if (
            system.n_states != self._policy.n_states
            or system.n_commands != self._policy.n_commands
        ):
            raise ValidationError(
                f"policy shape ({self._policy.n_states}, "
                f"{self._policy.n_commands}) does not match system "
                f"({system.n_states}, {system.n_commands})"
            )
        return self._policy

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        state = (
            observation.provider_state * self._n_requesters
            + observation.requester_state
        ) * self._n_queue + observation.queue_length
        if self._deterministic_row[state]:
            return int(self._greedy[state])
        return sample_categorical(self._cumsum[state], rng)

    def describe(self) -> str:
        kind = "deterministic" if self._policy.is_deterministic else "randomized"
        return f"stationary-policy({kind})"
