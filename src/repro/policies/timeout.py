"""Fixed-timeout shutdown policies (paper Section VI-A, ref [12]).

"Timeout-based policies are widely used for disk power management.
They shut down the disk when the user has been inactive for a time
longer than the timeout period."  The timeout is counted in slices of
observed idleness (no arrivals, empty queue); a pending request always
triggers the wake command.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError


class TimeoutAgent(PolicyAgent):
    """Shut down after ``timeout`` consecutive idle slices.

    Parameters
    ----------
    timeout:
        Idle slices to wait before issuing the sleep command; 0
        degenerates to the eager policy.
    active_command:
        Command that (re)activates the provider; issued whenever work is
        pending and also during the countdown ("timeout-based policies
        waste power while waiting for a timeout to expire",
        Section VI-C).
    sleep_command:
        Command issued once the timeout expires, until work arrives.
    """

    def __init__(self, timeout: int, active_command: int, sleep_command: int):
        timeout = int(timeout)
        if timeout < 0:
            raise ValidationError(f"timeout must be >= 0, got {timeout}")
        self._timeout = timeout
        self._active = int(active_command)
        self._sleep = int(sleep_command)
        self._idle_slices = 0

    @property
    def timeout(self) -> int:
        """The configured timeout, in slices."""
        return self._timeout

    def reset(self) -> None:
        self._idle_slices = 0

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        if observation.has_pending_work:
            self._idle_slices = 0
            return self._active
        self._idle_slices += 1
        if self._idle_slices > self._timeout:
            return self._sleep
        return self._active

    def describe(self) -> str:
        return f"timeout({self._timeout})"
