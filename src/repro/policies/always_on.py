"""Constant policies: the same command every slice (paper Example 3.4).

The always-on constant policy is the natural upper bound on power and
lower bound on penalty — it anchors the top of every trade-off plot in
the paper ("the trivial policy that never shuts down the SP",
Example A.2).

A constant command is trivially a stationary Markov policy, so
:class:`ConstantAgent` carries the
:class:`~repro.policies.base.StationaryAgent` marker and batch
simulation can vectorize it.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Observation, StationaryAgent


class ConstantAgent(StationaryAgent):
    """Issue the same command in every slice.

    Parameters
    ----------
    command:
        Command index to issue unconditionally.
    name:
        Optional label used by :meth:`describe`.
    """

    def __init__(self, command: int, name: str | None = None):
        self._command = int(command)
        self._name = name

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        return self._command

    def stationary_policy(self, system):
        """The constant Markov policy over ``system``'s joint states."""
        from repro.core.policy import MarkovPolicy

        return MarkovPolicy.constant(
            self._command,
            system.n_states,
            system.n_commands,
            system.command_names,
        )

    def describe(self) -> str:
        if self._name:
            return f"constant({self._name})"
        return f"constant(command={self._command})"


def always_on_agent(active_command: int) -> ConstantAgent:
    """The always-on policy: keep issuing the active command."""
    return ConstantAgent(active_command, name="always-on")
