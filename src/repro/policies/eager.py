"""The eager (greedy) shutdown policy (paper Section I, Example 3.4).

"The most aggressive policy ... turns off every system component as
soon as it becomes idle."  The paper's Fig. 8(b) upward triangles are
deterministic greedy policies parameterized by *which* inactive state
they dive into; this agent takes that target command as a parameter.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Observation, PolicyAgent


class EagerAgent(PolicyAgent):
    """Shut down the instant there is no pending work.

    Parameters
    ----------
    active_command:
        Command that (re)activates the service provider.
    sleep_command:
        Command issued whenever the system is idle; choosing different
        inactive states gives the family of greedy policies compared in
        paper Fig. 8(b).

    Notes
    -----
    A wake-up command is issued whenever a request is pending (enqueued
    or newly arrived), matching "a wake-up command is issued whenever a
    new request arrives".
    """

    def __init__(self, active_command: int, sleep_command: int):
        self._active = int(active_command)
        self._sleep = int(sleep_command)

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        if observation.has_pending_work:
            return self._active
        return self._sleep

    def describe(self) -> str:
        return f"eager(sleep_command={self._sleep})"
