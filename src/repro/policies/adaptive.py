"""Adaptive policy management for nonstationary workloads.

The paper closes with: "Another interesting direction of investigation
is the study of adaptive algorithms that can compute optimal policies
in systems where workloads are highly nonstationary and the service
provider model changes over time."  This module implements that
direction:

:class:`AdaptivePolicyAgent` maintains a sliding window of observed
arrivals, periodically refits a k-memory SR model over the window,
re-solves the (average-cost) policy optimization against the refit
model, and switches to the new optimal policy.  Between refits it
executes the current policy like any stationary agent.

On stationary Markov workloads it converges to the static optimum (the
refit model converges to the truth); on regime-switching workloads like
paper Fig. 10's it tracks the active regime instead of averaging over
both — the ablation benchmark ``bench_ablation_adaptive`` quantifies
the gain.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.average_cost import AverageCostOptimizer
from repro.core.components import ServiceQueue
from repro.core.costs import CostModel
from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError


class AdaptivePolicyAgent(PolicyAgent):
    """Re-estimate the workload online and re-optimize periodically.

    Parameters
    ----------
    provider:
        The service provider (fixed hardware model).
    queue_capacity:
        Queue capacity of the managed system.
    build_costs:
        Callable ``system -> CostModel`` producing the metrics for a
        freshly composed system (use :meth:`CostModel.standard` unless
        the deployment needs custom penalties).
    optimize:
        Callable ``optimizer -> OptimizationResult`` issuing the
        constrained solve (e.g. ``lambda o: o.minimize_power(
        penalty_bound=0.1)``); receives an
        :class:`~repro.core.average_cost.AverageCostOptimizer`.
    window:
        Sliding-window length in slices.
    refit_every:
        Slices between refit-and-reoptimize steps.
    memory:
        SR extractor memory ``k``.
    fallback_command:
        Command issued until the first model has been fitted and
        whenever re-optimization fails (e.g. infeasible constraints on
        the current window); typically the active command.
    action_mask_builder:
        Optional callable ``system -> mask`` rebuilding a hardware
        action mask for each refit system (the CPU's reactive wake).
    smoothing:
        Laplace smoothing for the extractor (keeps rare transitions
        alive on short windows).
    estimator:
        Optional workload estimator replacing the fixed-memory window
        heuristic: any object with ``fit(counts) -> KMemoryModel``
        (e.g. :class:`~repro.estimation.chain_fit.ArrivalChainEstimator`,
        which re-runs a BIC structure search per refit so the model
        order tracks the data).  Pass the string ``"bic"`` for a
        default BIC estimator.  When given, ``memory`` / ``smoothing``
        only bound the refit trigger — the estimator owns the fit.
    policy_cache:
        Optional :class:`~repro.runtime.policy_cache.PolicyCache`.
        When given, every refit solve routes through the cache: a
        window whose refit LP is content-identical to a previous one
        (common once a stationary workload's model converges, or across
        a fleet of devices seeing the same regime) costs a lookup
        instead of a solve, and near-identical refits ("the model
        barely moved") warm-start the simplex backend from the last
        optimal basis via ``LPResult.warm_start``.  Cache traffic from
        this agent is reported by :attr:`cache_hits` /
        :attr:`cache_warm_hints` next to :attr:`refits` /
        :attr:`failed_refits`.
    """

    def __init__(
        self,
        provider,
        queue_capacity: int,
        optimize,
        window: int = 5000,
        refit_every: int = 1000,
        memory: int = 1,
        fallback_command: int = 0,
        build_costs=None,
        action_mask_builder=None,
        smoothing: float = 0.5,
        backend: str = "scipy",
        policy_cache=None,
        estimator=None,
    ):
        if window < 10:
            raise ValidationError(f"window must be >= 10 slices, got {window}")
        if refit_every < 1:
            raise ValidationError(
                f"refit_every must be >= 1, got {refit_every}"
            )
        self._provider = provider
        self._queue_capacity = int(queue_capacity)
        self._optimize = optimize
        self._window = int(window)
        self._refit_every = int(refit_every)
        self._memory = int(memory)
        self._fallback_command = int(fallback_command)
        self._build_costs = build_costs or CostModel.standard
        self._mask_builder = action_mask_builder
        self._smoothing = float(smoothing)
        self._backend = backend
        self._policy_cache = policy_cache
        if estimator == "bic":
            from repro.estimation.chain_fit import ArrivalChainEstimator

            estimator = ArrivalChainEstimator(smoothing=self._smoothing)
        if estimator is not None and not callable(
            getattr(estimator, "fit", None)
        ):
            raise ValidationError(
                "estimator must expose fit(counts) -> KMemoryModel "
                f"(or be the string 'bic'), got {type(estimator).__name__}"
            )
        self._estimator = estimator

        self._arrivals: deque[int] = deque(maxlen=self._window)
        self._policy: MarkovPolicy | None = None
        self._fitted_memory: int | None = None
        self._policy_system: PowerManagedSystem | None = None
        self._tracker = None
        self._tracked_state = 0
        self._since_refit = 0
        self._refits = 0
        self._failed_refits = 0
        self._cache_hits = 0
        self._cache_warm_hints = 0

    # ------------------------------------------------------------------
    # bookkeeping accessors (for experiments and tests)
    # ------------------------------------------------------------------
    @property
    def refits(self) -> int:
        """Successful re-optimizations performed so far."""
        return self._refits

    @property
    def failed_refits(self) -> int:
        """Refits skipped because extraction/optimization failed."""
        return self._failed_refits

    @property
    def cache_hits(self) -> int:
        """Refit solves answered by the policy cache without an LP solve."""
        return self._cache_hits

    @property
    def cache_warm_hints(self) -> int:
        """Refit solves that carried a warm-start basis into the backend."""
        return self._cache_warm_hints

    @property
    def current_policy(self) -> MarkovPolicy | None:
        """The policy currently being executed (None before first fit)."""
        return self._policy

    @property
    def fitted_memory(self) -> int | None:
        """Memory of the last fitted model (None before the first fit).

        Under an estimator this is the BIC-selected order, which may
        differ from the constructor's ``memory`` argument.
        """
        return self._fitted_memory

    def reset(self) -> None:
        self._arrivals.clear()
        self._policy = None
        self._fitted_memory = None
        self._policy_system = None
        self._tracker = None
        self._tracked_state = 0
        self._since_refit = 0
        self._refits = 0
        self._failed_refits = 0
        self._cache_hits = 0
        self._cache_warm_hints = 0

    # ------------------------------------------------------------------
    # the refit step
    # ------------------------------------------------------------------
    def _refit(self) -> None:
        # Imported here: repro.traces pulls repro.sim which pulls this
        # package — a module-level import would be circular.
        from repro.traces.extractor import SRExtractor

        counts = np.asarray(self._arrivals, dtype=int)
        try:
            if self._estimator is not None:
                model = self._estimator.fit(counts)
            else:
                model = SRExtractor(
                    memory=self._memory, smoothing=self._smoothing
                ).fit(counts)
            requester = model.to_requester()
            system = PowerManagedSystem(
                self._provider, requester, ServiceQueue(self._queue_capacity)
            )
            costs = self._build_costs(system)
            mask = self._mask_builder(system) if self._mask_builder else None
            optimizer = AverageCostOptimizer(
                system,
                costs,
                backend=self._backend,
                action_mask=mask,
                fallback="greedy-service",
            )
            if self._policy_cache is not None:
                # Cached refits: content-identical windows hit, barely
                # moved ones warm-start the previous optimal basis.
                stats = self._policy_cache.stats
                hits, hints = stats.hits, stats.warm_hinted
                result = self._optimize(self._policy_cache.wrap(optimizer))
                self._cache_hits += stats.hits - hits
                self._cache_warm_hints += stats.warm_hinted - hints
            else:
                result = self._optimize(optimizer)
        except Exception:
            self._failed_refits += 1
            return
        if not result.feasible:
            self._failed_refits += 1
            return
        self._policy = result.policy
        self._policy_system = system
        self._fitted_memory = int(model.memory)
        tracker = model.tracker()
        self._tracked_state = tracker.reset()
        # Warm the tracker with the recent window so the state is current.
        for z in list(self._arrivals)[-model.memory :]:
            self._tracked_state = tracker.update(int(z))
        self._tracker = tracker
        self._refits += 1

    # ------------------------------------------------------------------
    # the agent protocol
    # ------------------------------------------------------------------
    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        # Record the newest arrivals observation.
        self._arrivals.append(int(observation.arrivals))
        if self._tracker is not None:
            self._tracked_state = self._tracker.update(
                int(observation.arrivals)
            )
        self._since_refit += 1

        if (
            self._policy is None and len(self._arrivals) >= self._window
        ) or self._since_refit >= self._refit_every:
            if len(self._arrivals) >= max(self._memory + 1, 10):
                self._refit()
            self._since_refit = 0

        if self._policy is None or self._policy_system is None:
            return self._fallback_command

        system = self._policy_system
        joint = (
            observation.provider_state * system.requester.n_states
            + self._tracked_state
        ) * system.queue.n_states + min(
            observation.queue_length, system.queue.capacity
        )
        row = self._policy.matrix[joint]
        if row.max() > 1.0 - 1e-12:
            return int(row.argmax())
        return int(rng.choice(row.size, p=row))

    def describe(self) -> str:
        if self._estimator is not None:
            estimator = getattr(self._estimator, "describe", None)
            label = estimator() if callable(estimator) else "custom"
            return (
                f"adaptive(window={self._window}, "
                f"refit_every={self._refit_every}, estimator={label})"
            )
        return (
            f"adaptive(window={self._window}, refit_every={self._refit_every}, "
            f"memory={self._memory})"
        )
