"""Power-management policy agents for simulation.

The paper compares its optimal stochastic policies against the heuristic
families that preceded it (Section I, Section VI, refs [12], [14],
[15]).  This package implements those baselines plus the wrapper that
lets an optimal :class:`~repro.core.policy.MarkovPolicy` drive the
simulator:

* :class:`~repro.policies.always_on.ConstantAgent` — constant policies
  (always-on being the trivial one);
* :class:`~repro.policies.eager.EagerAgent` — the "eager"/greedy policy:
  shut down the instant the system idles (paper Example 3.4);
* :class:`~repro.policies.timeout.TimeoutAgent` — classic fixed-timeout
  shutdown (the widely deployed disk heuristic, ref [12]);
* :class:`~repro.policies.randomized.RandomizedTimeoutAgent` — timeout
  and target sleep state drawn from distributions (the heuristic
  rendition of randomized optimal policies, paper Fig. 8b boxes);
* :class:`~repro.policies.predictive.LastActivityPredictiveAgent` and
  :class:`~repro.policies.predictive.ExponentialAveragePredictiveAgent`
  — predictive shutdown after refs [14] and [15];
* :class:`~repro.policies.stochastic.StationaryPolicyAgent` — samples
  commands from a (randomized) Markov stationary policy matrix.

All agents implement the :class:`~repro.policies.base.PolicyAgent`
protocol consumed by :mod:`repro.sim`.
"""

from repro.policies.adaptive import AdaptivePolicyAgent
from repro.policies.always_on import ConstantAgent, always_on_agent
from repro.policies.base import Observation, PolicyAgent, StationaryAgent
from repro.policies.eager import EagerAgent
from repro.policies.markov_conversion import (
    constant_markov_policy,
    eager_markov_policy,
)
from repro.policies.predictive import (
    ExponentialAveragePredictiveAgent,
    LastActivityPredictiveAgent,
)
from repro.policies.randomized import RandomizedTimeoutAgent
from repro.policies.stochastic import StationaryPolicyAgent
from repro.policies.timeout import TimeoutAgent

__all__ = [
    "PolicyAgent",
    "StationaryAgent",
    "Observation",
    "ConstantAgent",
    "always_on_agent",
    "EagerAgent",
    "TimeoutAgent",
    "RandomizedTimeoutAgent",
    "LastActivityPredictiveAgent",
    "ExponentialAveragePredictiveAgent",
    "StationaryPolicyAgent",
    "AdaptivePolicyAgent",
    "eager_markov_policy",
    "constant_markov_policy",
]
