"""Predictive shutdown policies (paper references [14] and [15]).

Two baselines from the related-work the paper compares its framework
against:

* :class:`LastActivityPredictiveAgent` — the "simplified policy" of
  Srivastava, Chandrakasan and Brodersen [14]: predict the length of an
  idle period from the duration of the *preceding activity burst*; if
  the prediction exceeds the break-even time, shut down immediately at
  the start of the idle period (no timeout wasted).
* :class:`ExponentialAveragePredictiveAgent` — Hwang and Wu [15]:
  predict each idle period as an exponentially-weighted average of past
  idle periods ("a weighted sum of the duration of past idle periods,
  with geometrically decaying weights"), shutting down when the
  prediction exceeds the break-even time.
"""

from __future__ import annotations

import numpy as np

from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError, check_probability


class LastActivityPredictiveAgent(PolicyAgent):
    """Shutdown at idle start when the last busy burst was short.

    The heuristic of [14]: short bursts of activity tend to be followed
    by long idle periods (think keystroke-driven workloads), so an idle
    period that follows a busy burst shorter than ``busy_threshold``
    slices is predicted to be long and the provider is shut down
    immediately; otherwise it stays active for the whole idle period.

    Parameters
    ----------
    busy_threshold:
        Bursts strictly shorter than this predict a long idle period.
    active_command / sleep_command:
        Commands to issue in the two regimes.
    """

    def __init__(self, busy_threshold: int, active_command: int, sleep_command: int):
        busy_threshold = int(busy_threshold)
        if busy_threshold < 0:
            raise ValidationError(
                f"busy_threshold must be >= 0, got {busy_threshold}"
            )
        self._threshold = busy_threshold
        self._active = int(active_command)
        self._sleep = int(sleep_command)
        self._busy_run = 0
        self._last_busy_run = 0

    def reset(self) -> None:
        self._busy_run = 0
        self._last_busy_run = 0

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        if observation.has_pending_work:
            self._busy_run += 1
            return self._active
        if self._busy_run > 0:
            # An idle period just started; remember the burst length.
            self._last_busy_run = self._busy_run
            self._busy_run = 0
        if self._last_busy_run < self._threshold:
            return self._sleep
        return self._active

    def describe(self) -> str:
        return f"predictive-last-activity(threshold={self._threshold})"


class ExponentialAveragePredictiveAgent(PolicyAgent):
    """Shutdown when the exponentially-averaged idle prediction is long.

    The predictor of [15]: maintain ``I_pred = alpha * i_last +
    (1 - alpha) * I_pred`` over observed idle-period lengths and shut
    down at the start of an idle period whenever the prediction exceeds
    ``breakeven`` slices.  A watchdog timeout guards against gross
    mispredictions ("a technique that reduces the likelihood of multiple
    mispredictions"): if the provider was kept active but the idle
    period outlives the watchdog, shut down anyway.

    Parameters
    ----------
    alpha:
        Exponential-averaging weight in (0, 1].
    breakeven:
        Idle-length prediction (slices) above which shutdown pays off.
    watchdog:
        Idle slices after which shutdown happens regardless.
    active_command / sleep_command:
        Commands to issue.
    """

    def __init__(
        self,
        alpha: float,
        breakeven: float,
        watchdog: int,
        active_command: int,
        sleep_command: int,
    ):
        self._alpha = check_probability(alpha, "alpha")
        if self._alpha == 0.0:
            raise ValidationError("alpha must be > 0")
        self._breakeven = float(breakeven)
        watchdog = int(watchdog)
        if watchdog < 0:
            raise ValidationError(f"watchdog must be >= 0, got {watchdog}")
        self._watchdog = watchdog
        self._active = int(active_command)
        self._sleep = int(sleep_command)
        self._prediction = 0.0
        self._idle_run = 0

    def reset(self) -> None:
        self._prediction = 0.0
        self._idle_run = 0

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        if observation.has_pending_work:
            if self._idle_run > 0:
                # Idle period ended: fold its length into the predictor.
                self._prediction = (
                    self._alpha * self._idle_run
                    + (1.0 - self._alpha) * self._prediction
                )
                self._idle_run = 0
            return self._active
        self._idle_run += 1
        if self._prediction > self._breakeven:
            return self._sleep
        if self._idle_run > self._watchdog:
            return self._sleep
        return self._active

    def describe(self) -> str:
        return (
            f"predictive-exp-average(alpha={self._alpha}, "
            f"breakeven={self._breakeven}, watchdog={self._watchdog})"
        )
