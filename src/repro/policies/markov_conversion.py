"""Exact Markov-policy matrices for memoryless heuristics.

Some heuristic agents decide from the current joint state only — the
eager policy looks at "is work pending", which in the composed chain is
``queue > 0 or z(r) > 0``.  Such agents are Markov stationary policies
(paper Definition 3.7) and can be evaluated *exactly* with
:func:`repro.core.policy.evaluate_policy`, with no Monte-Carlo noise.
The experiment drivers use these exact forms for the dominance checks
against the optimal Pareto curve; stateful heuristics (timeouts,
predictors) still go through simulation.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem


def constant_markov_policy(
    system: PowerManagedSystem, command
) -> MarkovPolicy:
    """The constant policy issuing ``command`` in every joint state."""
    a = system.chain.command_index(command)
    return MarkovPolicy.constant(
        a, system.n_states, system.n_commands, system.command_names
    )


def eager_markov_policy(
    system: PowerManagedSystem, active_command, sleep_command
) -> MarkovPolicy:
    """The eager policy as an exact Markov stationary policy.

    Issues ``active_command`` whenever work is pending (non-empty queue
    or the current SR state issues requests) and ``sleep_command``
    otherwise — the joint-state rendition of
    :class:`repro.policies.eager.EagerAgent`.
    """
    active = system.chain.command_index(active_command)
    sleep = system.chain.command_index(sleep_command)
    arrivals = system.requester.arrival_counts
    sr_of = system.requester_index_of_state
    q_of = system.queue_length_of_state

    commands = np.empty(system.n_states, dtype=int)
    for x in range(system.n_states):
        pending = q_of[x] > 0 or arrivals[sr_of[x]] > 0
        commands[x] = active if pending else sleep
    return MarkovPolicy.deterministic(
        commands, system.n_commands, system.command_names
    )
