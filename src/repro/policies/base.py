"""The policy-agent protocol consumed by the simulation engine.

An *agent* is any object that maps the observable system condition to a
command index each slice.  Unlike :class:`~repro.core.policy.MarkovPolicy`
matrices, agents may keep internal state (idle counters, predictors),
which is exactly what the paper's heuristic baselines need — a timeout
policy is not Markov in the joint system state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.core.policy import MarkovPolicy
    from repro.core.system import PowerManagedSystem


@dataclass(frozen=True)
class Observation:
    """What the power manager sees at the start of a slice.

    Attributes
    ----------
    provider_state:
        SP state index.
    requester_state:
        SR state index as known to the manager.  In trace-driven
        simulation this is the state *inferred* from observed arrivals
        (paper Section V's trace-driven verification mode).
    queue_length:
        Requests currently enqueued.
    arrivals:
        Requests that arrived during the previous slice.
    slice_index:
        Zero-based index of the current slice.
    """

    provider_state: int
    requester_state: int
    queue_length: int
    arrivals: int
    slice_index: int

    @property
    def has_pending_work(self) -> bool:
        """True when requests are enqueued or just arrived."""
        return self.queue_length > 0 or self.arrivals > 0


class PolicyAgent(abc.ABC):
    """Base class for simulation policies.

    Subclasses implement :meth:`select_command`; stateful agents also
    override :meth:`reset`, which the engine calls once per run (and per
    session in session-mode simulation).
    """

    def reset(self) -> None:
        """Clear internal state before a fresh simulation run."""

    @abc.abstractmethod
    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        """Return the command index to issue for this slice."""

    def describe(self) -> str:
        """Human-readable one-line description (used in result tables)."""
        return type(self).__name__


class StationaryAgent(PolicyAgent):
    """Marker base for agents that execute a stationary Markov policy.

    Backend dispatch (:mod:`repro.sim.backends`) can only vectorize an
    agent when its behaviour is *provably* a function of the current
    joint state alone — i.e. distributed as a
    :class:`~repro.core.policy.MarkovPolicy` matrix row per slice, with
    no internal state.  Subclasses assert exactly that by materializing
    the matrix on demand; anything not carrying this marker is simulated
    by the reference loop backend.
    """

    @abc.abstractmethod
    def stationary_policy(self, system: "PowerManagedSystem") -> "MarkovPolicy":
        """The equivalent Markov policy matrix over ``system``'s states."""
