"""The policy-agent protocol consumed by the simulation engine.

An *agent* is any object that maps the observable system condition to a
command index each slice.  Unlike :class:`~repro.core.policy.MarkovPolicy`
matrices, agents may keep internal state (idle counters, predictors),
which is exactly what the paper's heuristic baselines need — a timeout
policy is not Markov in the joint system state.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Observation:
    """What the power manager sees at the start of a slice.

    Attributes
    ----------
    provider_state:
        SP state index.
    requester_state:
        SR state index as known to the manager.  In trace-driven
        simulation this is the state *inferred* from observed arrivals
        (paper Section V's trace-driven verification mode).
    queue_length:
        Requests currently enqueued.
    arrivals:
        Requests that arrived during the previous slice.
    slice_index:
        Zero-based index of the current slice.
    """

    provider_state: int
    requester_state: int
    queue_length: int
    arrivals: int
    slice_index: int

    @property
    def has_pending_work(self) -> bool:
        """True when requests are enqueued or just arrived."""
        return self.queue_length > 0 or self.arrivals > 0


class PolicyAgent(abc.ABC):
    """Base class for simulation policies.

    Subclasses implement :meth:`select_command`; stateful agents also
    override :meth:`reset`, which the engine calls once per run (and per
    session in session-mode simulation).
    """

    def reset(self) -> None:
        """Clear internal state before a fresh simulation run."""

    @abc.abstractmethod
    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        """Return the command index to issue for this slice."""

    def describe(self) -> str:
        """Human-readable one-line description (used in result tables)."""
        return type(self).__name__
