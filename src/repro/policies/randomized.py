"""Randomized timeout heuristics (paper Fig. 8(b), box markers).

"Boxes represent randomized policies where the timeout value and the
inactive state are chosen randomly with a given probability
distribution.  The randomized policies are the heuristic version of the
optimal policies computed by our tool."

At the start of each idle period the agent draws a timeout and a target
sleep command from user-supplied distributions, then behaves like a
plain timeout policy until work arrives again.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError, check_distribution


class RandomizedTimeoutAgent(PolicyAgent):
    """Timeout policy with randomized timeout and sleep target.

    Parameters
    ----------
    timeouts:
        Candidate timeout values (slices).
    timeout_probabilities:
        Probability of each candidate timeout.
    sleep_commands:
        Candidate sleep-command indices.
    sleep_probabilities:
        Probability of each candidate sleep command.
    active_command:
        Command that (re)activates the provider.
    """

    def __init__(
        self,
        timeouts: Sequence[int],
        timeout_probabilities: Sequence[float],
        sleep_commands: Sequence[int],
        sleep_probabilities: Sequence[float],
        active_command: int,
    ):
        self._timeouts = [int(t) for t in timeouts]
        if any(t < 0 for t in self._timeouts):
            raise ValidationError("timeouts must be >= 0")
        self._timeout_probs = check_distribution(
            timeout_probabilities, "timeout_probabilities"
        )
        if self._timeout_probs.size != len(self._timeouts):
            raise ValidationError(
                f"{self._timeout_probs.size} probabilities for "
                f"{len(self._timeouts)} timeouts"
            )
        self._sleep_commands = [int(c) for c in sleep_commands]
        self._sleep_probs = check_distribution(
            sleep_probabilities, "sleep_probabilities"
        )
        if self._sleep_probs.size != len(self._sleep_commands):
            raise ValidationError(
                f"{self._sleep_probs.size} probabilities for "
                f"{len(self._sleep_commands)} sleep commands"
            )
        self._active = int(active_command)
        self._idle_slices = 0
        self._current_timeout: int | None = None
        self._current_sleep: int | None = None

    def reset(self) -> None:
        self._idle_slices = 0
        self._current_timeout = None
        self._current_sleep = None

    def select_command(
        self, observation: Observation, rng: np.random.Generator
    ) -> int:
        if observation.has_pending_work:
            self._idle_slices = 0
            self._current_timeout = None
            self._current_sleep = None
            return self._active
        if self._current_timeout is None:
            # A new idle period begins: draw this period's parameters.
            self._current_timeout = self._timeouts[
                int(rng.choice(len(self._timeouts), p=self._timeout_probs))
            ]
            self._current_sleep = self._sleep_commands[
                int(rng.choice(len(self._sleep_commands), p=self._sleep_probs))
            ]
        self._idle_slices += 1
        if self._idle_slices > self._current_timeout:
            return self._current_sleep
        return self._active

    def describe(self) -> str:
        return (
            f"randomized-timeout(timeouts={self._timeouts}, "
            f"sleep_commands={self._sleep_commands})"
        )
