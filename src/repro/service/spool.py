"""Crash-safe shard spools: CRC-stamped, two-generation checkpoints.

The supervisor restarts a dead worker from its *spool* — the most
recent per-shard checkpoint the worker wrote.  A spool written naively
is a single point of failure twice over: a worker killed mid-write
leaves a torn file, and a disk that lies about durability can corrupt
the only copy.  This module closes both holes:

* **Atomic writes** — each generation is written to a temp file,
  fsynced, and ``os.replace``\\ d into place, so a generation either
  exists completely or not at all.
* **CRC-stamped payloads** — a fixed header (magic, CRC-32, length)
  over the pickled payload detects truncation and bit rot at restore
  time instead of unpickling garbage.
* **Two generations** — each shard alternates between ``.g0`` and
  ``.g1`` files, so corrupting (or tearing) the newest generation
  falls back to the previous one rather than losing the shard.  The
  restore cost is bounded: at most one extra tick of deterministic
  replay per lost generation.

Restore (:func:`load_spool`) scans both generations, discards any that
fail magic/CRC/payload validation, and returns the valid one with the
highest tick — or ``None`` when the shard has never spooled.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path

from repro import faults
from repro.util.validation import ValidationError

__all__ = [
    "SPOOL_GENERATIONS",
    "SpoolSlot",
    "load_spool",
    "read_spool_generation",
    "spool_generation_paths",
    "write_spool_generation",
]

#: File magic: "Repro DPM SPooL", format 1.
_MAGIC = b"RDPMSPL1"

#: Header layout: magic, CRC-32 of the payload blob, payload length.
_HEADER = struct.Struct(">8sIQ")

#: Generations kept per shard (alternating writes).
SPOOL_GENERATIONS = 2

#: Pickle protocol — matches :mod:`repro.runtime.checkpoint`.
_PROTOCOL = 4


def spool_generation_paths(spool_dir, index: int) -> tuple[Path, ...]:
    """The generation files of shard ``index`` (g0, g1)."""
    spool_dir = Path(spool_dir)
    return tuple(
        spool_dir / f"shard-{index}.g{gen}.ckpt"
        for gen in range(SPOOL_GENERATIONS)
    )


def write_spool_generation(path, payload: dict, *, fsync: bool = True) -> None:
    """Atomically write one CRC-stamped spool generation to ``path``.

    The temp-write + fsync + rename sequence guarantees the file at
    ``path`` is always a *complete* generation (old or new) no matter
    when the writer dies.  Raises :class:`ValidationError` on
    unserializable payloads and propagates ``OSError`` on I/O failure
    (after removing the temp file).
    """
    try:
        blob = pickle.dumps(payload, protocol=_PROTOCOL)
    except Exception as exc:
        raise ValidationError(
            f"spool payload is not serializable ({exc})"
        ) from exc
    path = Path(path)
    header = _HEADER.pack(_MAGIC, zlib.crc32(blob) & 0xFFFFFFFF, len(blob))
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(blob)
            fh.flush()
            if fsync:
                faults.SPOOL_FSYNC.fire(path=str(path))
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_spool_generation(path) -> dict | None:
    """Read one generation; ``None`` when missing, torn, or corrupt.

    Corruption is expected input here (that is the point of the CRC),
    so every validation failure — bad magic, short header, CRC
    mismatch, unpicklable blob, wrong payload shape — returns ``None``
    rather than raising; the caller falls back to another generation.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return None
    if len(raw) < _HEADER.size:
        return None
    magic, crc, length = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        return None
    blob = raw[_HEADER.size:]
    if len(blob) != length or (zlib.crc32(blob) & 0xFFFFFFFF) != crc:
        return None
    try:
        payload = pickle.loads(blob)
    except Exception:
        return None
    if not isinstance(payload, dict) or "tick" not in payload:
        return None
    return payload


def load_spool(spool_dir, index: int) -> dict | None:
    """The newest *valid* spool payload of shard ``index``.

    Scans every generation, skips corrupt ones, and returns the valid
    payload with the highest tick — or ``None`` when no generation is
    readable (shard never spooled, or all copies lost).
    """
    best: dict | None = None
    for path in spool_generation_paths(spool_dir, index):
        payload = read_spool_generation(path)
        if payload is None:
            continue
        if best is None or payload["tick"] > best["tick"]:
            best = payload
    return best


class SpoolSlot:
    """One shard's alternating-generation spool writer.

    Each :meth:`write` lands in the generation slot *not* holding the
    newest valid payload, so the previous good generation is never the
    one being overwritten — a torn or corrupted write can only cost
    the new generation, and restore falls back one tick.
    """

    def __init__(self, spool_dir, index: int):
        self._paths = spool_generation_paths(spool_dir, index)
        self._index = index
        # Resume writing after the newest existing valid generation.
        newest, newest_tick = 0, -1
        for gen, path in enumerate(self._paths):
            payload = read_spool_generation(path)
            if payload is not None and payload["tick"] > newest_tick:
                newest, newest_tick = gen, payload["tick"]
        self._next = (newest + 1) % SPOOL_GENERATIONS if newest_tick >= 0 else 0

    @property
    def index(self) -> int:
        """The shard index this slot spools."""
        return self._index

    def write(self, payload: dict, *, fsync: bool = True) -> Path:
        """Write ``payload`` to the next generation slot; returns its path."""
        path = self._paths[self._next]
        write_spool_generation(path, payload, fsync=fsync)
        self._next = (self._next + 1) % SPOOL_GENERATIONS
        return path
