"""repro.service — the sharded fleet-control daemon.

The :mod:`repro.runtime` controller steps a fleet in one process; its
throughput at 100k devices is capped by the serial per-device RNG
fan-in, not kernel speed.  This package turns the controller into a
long-lived *service* that breaks that cap without giving up a single
byte of determinism:

* :mod:`~repro.service.protocol` — the versioned JSON-lines wire
  format (request/response/event frames, SCH001-checked field sets,
  the hello handshake);
* :mod:`~repro.service.shard` — worker processes, each stepping its
  content-addressed fleet partition with a private controller and
  spooling per-shard restart checkpoints;
* :mod:`~repro.service.daemon` — :class:`ShardSupervisor` (deal,
  step in lockstep, restart-from-spool on worker death, gather) and
  :class:`FleetDaemon` (the ``AF_UNIX`` accept loop);
* :mod:`~repro.service.client` — the blocking :class:`ServiceClient`
  behind ``repro-dpm fleet-ctl``: live register/remove, policy push,
  step-with-streamed-telemetry, checkpoint, shutdown.

The contract inherited from the runtime layer and preserved end to
end: a sharded run's device-level telemetry and checkpoints are
**byte-identical** to the single-process
:class:`~repro.runtime.controller.FleetController` for the same fleet
spec and seed — for any shard count, after re-partitioning on resume,
and across mid-run worker restarts.

Quickstart::

    repro-dpm serve examples/fleet_spec.json \\
        --socket /tmp/fleet.sock --shards 4 --telemetry fleet.jsonl &
    repro-dpm fleet-ctl --socket /tmp/fleet.sock step 10
    repro-dpm fleet-ctl --socket /tmp/fleet.sock checkpoint run.ckpt
    repro-dpm fleet-ctl --socket /tmp/fleet.sock shutdown
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import FleetDaemon, ShardSupervisor
from repro.service.protocol import (
    EVENT_FIELDS,
    EVENT_TYPES,
    HELLO_FIELDS,
    PROTOCOL_VERSION,
    REQUEST_FIELDS,
    REQUEST_TYPES,
    RESPONSE_FIELDS,
    SERVER_NAME,
    FrameChannel,
    ProtocolError,
)
from repro.service.shard import (
    Partitioner,
    ShardConfig,
    shard_signature,
    spool_path,
)

__all__ = [
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "FleetDaemon",
    "FrameChannel",
    "HELLO_FIELDS",
    "PROTOCOL_VERSION",
    "Partitioner",
    "ProtocolError",
    "REQUEST_FIELDS",
    "REQUEST_TYPES",
    "RESPONSE_FIELDS",
    "SERVER_NAME",
    "ServiceClient",
    "ServiceError",
    "ShardConfig",
    "ShardSupervisor",
    "shard_signature",
    "spool_path",
]
