"""Blocking client for the fleet daemon protocol.

:class:`ServiceClient` wraps the connect-and-handshake dance and one
method per request type.  It is deliberately synchronous: one request
in flight, events (streamed telemetry) dispatched to a callback as
they arrive, the matching response returned.  This is the layer the
``repro-dpm fleet-ctl`` CLI and the test suite drive; anything it can
do — register devices, push policies, step, checkpoint — happens
against a *live* fleet, no daemon restart required.

Example::

    with ServiceClient("/tmp/fleet.sock") as client:
        client.register_group({"count": 64, "system": "disk_drive",
                               "agent": {"type": "optimal",
                                         "penalty_bound": 0.05}})
        client.step(10, on_telemetry=print)
        client.checkpoint("campaign.ckpt")
        client.shutdown()
"""

from __future__ import annotations

import socket

from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameChannel,
    ProtocolError,
    make_request,
)
from repro.util.validation import ValidationError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ValidationError):
    """A request the daemon refused, or a broken connection."""


class ServiceClient:
    """One connection to a running fleet daemon.

    Construct with the daemon's socket path, then either use as a
    context manager or call :meth:`connect` / :meth:`close` yourself.
    The daemon's hello greeting is available as :attr:`server_hello`
    after connecting (protocol version, server pid, tick, fleet size,
    shard count).
    """

    def __init__(self, socket_path, timeout: float | None = None):
        self._socket_path = str(socket_path)
        self._timeout = timeout
        self._channel: FrameChannel | None = None
        self._next_id = 0
        self.server_hello: dict | None = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        """Connect and complete the versioned handshake."""
        if self._channel is not None:
            raise ServiceError("client is already connected")
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self._timeout is not None:
            sock.settimeout(self._timeout)
        try:
            sock.connect(self._socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot connect to daemon socket {self._socket_path}: {exc}"
            ) from exc
        self._channel = FrameChannel(sock)
        greeting = self._channel.receive()
        if greeting is None or greeting.get("event") != "hello":
            self.close()
            raise ServiceError(
                f"daemon did not send a hello greeting, got {greeting!r}"
            )
        self.server_hello = greeting.get("data") or {}
        server_protocol = self.server_hello.get("protocol")
        if server_protocol != PROTOCOL_VERSION:
            self.close()
            raise ServiceError(
                f"protocol version mismatch: this client speaks "
                f"{PROTOCOL_VERSION}, server announced {server_protocol!r}"
            )
        self._call("hello", {"protocol": PROTOCOL_VERSION})
        return self

    def close(self) -> None:
        """Drop the connection (daemon keeps serving other clients)."""
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _call(self, request_type: str, params: dict, on_event=None):
        if self._channel is None:
            raise ServiceError("client is not connected; call connect()")
        request_id = self._next_id
        self._next_id += 1
        try:
            self._channel.send(
                make_request(request_id, request_type, params)
            )
            while True:
                frame = self._channel.receive()
                if frame is None:
                    raise ServiceError(
                        f"daemon closed the connection during "
                        f"{request_type!r}"
                    )
                if frame.get("event") is not None:
                    if on_event is not None:
                        on_event(frame["event"], frame.get("data"))
                    continue
                if frame.get("id") != request_id:
                    raise ServiceError(
                        f"response id {frame.get('id')!r} does not match "
                        f"request id {request_id}"
                    )
                if not frame.get("ok"):
                    raise ServiceError(
                        f"{request_type} failed: {frame.get('error')}"
                    )
                return frame.get("result")
        except (ProtocolError, OSError) as exc:
            self.close()
            raise ServiceError(
                f"connection to daemon failed during {request_type!r}: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # protocol methods
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness probe; returns the daemon's current tick."""
        return self._call("ping", {})

    def info(self) -> dict:
        """Operational summary: shards, device counts, restarts, pids."""
        return self._call("info", {})

    def register_group(
        self,
        group: dict,
        base_seed: int = 0,
        group_index: int | None = None,
    ) -> dict:
        """Register one fleet-spec group's devices into the live fleet.

        ``group`` uses the :func:`~repro.runtime.fleet.parse_fleet_spec`
        group vocabulary (``count``/``system``/``agent``/``workload``/
        ``seed``).  Seeding matches ``build_fleet`` exactly: the same
        group registered at the same index with the same base seed
        yields byte-identical devices.
        """
        params: dict = {"group": dict(group), "base_seed": int(base_seed)}
        if group_index is not None:
            params["group_index"] = int(group_index)
        return self._call("register_group", params)

    def remove_device(self, device_id: str) -> dict:
        """Deregister one device fleet-wide."""
        return self._call("remove_device", {"device_id": str(device_id)})

    def update_policy(self, device_id: str, agent_spec: dict) -> dict:
        """Push a new agent (same spec vocabulary) onto a live device."""
        return self._call(
            "update_policy",
            {"device_id": str(device_id), "agent": dict(agent_spec)},
        )

    def step(self, n_ticks: int = 1, on_telemetry=None) -> dict:
        """Advance the fleet; stream telemetry records to a callback.

        ``on_telemetry`` (if given) receives each emitted snapshot
        record as the daemon produces it, before the final response.
        """
        def _route(event_type, data):
            if event_type == "telemetry" and on_telemetry is not None:
                on_telemetry(data)

        return self._call("step", {"ticks": int(n_ticks)}, on_event=_route)

    def snapshot(self, per_device: bool = False) -> dict:
        """A telemetry snapshot of the current fleet state."""
        return self._call("snapshot", {"per_device": bool(per_device)})

    def checkpoint(
        self,
        path,
        telemetry_every: int | None = None,
        telemetry_per_device: bool | None = None,
    ) -> dict:
        """Write a full-fleet checkpoint on the daemon's filesystem."""
        params: dict = {"path": str(path)}
        if telemetry_every is not None:
            params["telemetry_every"] = int(telemetry_every)
        if telemetry_per_device is not None:
            params["telemetry_per_device"] = bool(telemetry_per_device)
        return self._call("checkpoint", params)

    def shutdown(self) -> dict:
        """Stop the daemon (workers stopped, socket unlinked)."""
        result = self._call("shutdown", {})
        self.close()
        return result
