"""Blocking client for the fleet daemon protocol.

:class:`ServiceClient` wraps the connect-and-handshake dance and one
method per request type.  It is deliberately synchronous: one request
in flight, events (streamed telemetry) dispatched to a callback as
they arrive, the matching response returned.  This is the layer the
``repro-dpm fleet-ctl`` CLI and the test suite drive; anything it can
do — register devices, push policies, step, checkpoint — happens
against a *live* fleet, no daemon restart required.

**Connection failures are retried, and retries are safe.**  Every
request carries a client-generated idempotent ``request_key``; when
the socket dies mid-request the client reconnects (with capped
exponential backoff, up to ``retries`` attempts) and re-sends the same
key.  The daemon's replay cache recognizes a key whose request already
executed and returns the recorded result instead of re-running it — so
a ``step`` whose *response* was lost to a dropped socket is never
double-applied.  Requests the daemon actually *refused* (a
:class:`ServiceError` in the response) are not retried; only transport
failures are.

Example::

    with ServiceClient("/tmp/fleet.sock") as client:
        client.register_group({"count": 64, "system": "disk_drive",
                               "agent": {"type": "optimal",
                                         "penalty_bound": 0.05}})
        client.step(10, on_telemetry=print)
        client.checkpoint("campaign.ckpt")
        client.shutdown()
"""

from __future__ import annotations

import os
import socket
import time

from repro import faults
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameChannel,
    ProtocolError,
    make_request,
)
from repro.util.validation import ValidationError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ValidationError):
    """A request the daemon refused, or a broken connection."""


class ServiceClient:
    """One connection to a running fleet daemon.

    Construct with the daemon's socket path, then either use as a
    context manager or call :meth:`connect` / :meth:`close` yourself.
    The daemon's hello greeting is available as :attr:`server_hello`
    after connecting (protocol version, server pid, tick, fleet size,
    shard count).

    ``retries`` bounds reconnect-and-retry attempts per request after
    a transport failure (0 disables retrying); ``retry_backoff`` /
    ``retry_backoff_cap`` shape the exponential pause between
    attempts.
    """

    def __init__(
        self,
        socket_path,
        timeout: float | None = None,
        retries: int = 3,
        retry_backoff: float = 0.05,
        retry_backoff_cap: float = 2.0,
    ):
        retries = int(retries)
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self._socket_path = str(socket_path)
        self._timeout = timeout
        self._retries = retries
        self._retry_backoff = float(retry_backoff)
        self._retry_backoff_cap = float(retry_backoff_cap)
        self._channel: FrameChannel | None = None
        self._next_id = 0
        self._key_serial = 0
        # Process- and instance-unique request-key prefix: two clients
        # (or two lives of one client) can never collide in the
        # daemon's replay cache.
        self._key_prefix = f"{os.getpid():x}.{id(self):x}"
        self.server_hello: dict | None = None

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    def _connect_once(self) -> None:
        """One connect + handshake attempt.

        Raises ``OSError`` when the socket cannot be reached (the
        retryable case) and :class:`ServiceError` when the daemon
        answered but refused the handshake (never retried).
        """
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self._timeout is not None:
            sock.settimeout(self._timeout)
        try:
            sock.connect(self._socket_path)
        except OSError:
            sock.close()
            raise
        self._channel = FrameChannel(sock, role="client")
        try:
            greeting = self._channel.receive()
        except (ProtocolError, OSError):
            self.close()
            raise OSError("connection lost during hello greeting") from None
        if greeting is None or greeting.get("event") != "hello":
            self.close()
            raise ServiceError(
                f"daemon did not send a hello greeting, got {greeting!r}"
            )
        self.server_hello = greeting.get("data") or {}
        server_protocol = self.server_hello.get("protocol")
        if server_protocol != PROTOCOL_VERSION:
            self.close()
            raise ServiceError(
                f"protocol version mismatch: this client speaks "
                f"{PROTOCOL_VERSION}, server announced {server_protocol!r}"
            )
        self._exchange(
            "hello", {"protocol": PROTOCOL_VERSION}, self._new_key(), None
        )

    def connect(self) -> "ServiceClient":
        """Connect and complete the versioned handshake."""
        if self._channel is not None:
            raise ServiceError("client is already connected")
        try:
            self._connect_once()
        except OSError as exc:
            self.close()
            raise ServiceError(
                f"cannot connect to daemon socket {self._socket_path}: {exc}"
            ) from exc
        return self

    def close(self) -> None:
        """Drop the connection (daemon keeps serving other clients)."""
        if self._channel is not None:
            self._channel.close()
            self._channel = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _new_key(self) -> str:
        self._key_serial += 1
        return f"{self._key_prefix}.{self._key_serial}"

    def _exchange(
        self, request_type: str, params: dict, request_key: str, on_event
    ):
        """One send/receive round (no recovery).

        Transport failures surface as raw ``ProtocolError``/``OSError``
        for :meth:`_call`'s retry loop; daemon refusals raise
        :class:`ServiceError` directly (retrying cannot fix those).
        """
        request_id = self._next_id
        self._next_id += 1
        params = dict(params)
        params["request_key"] = request_key
        faults.CLIENT_SEND.fire(type=request_type)
        self._channel.send(make_request(request_id, request_type, params))
        frames = 0
        while True:
            faults.CLIENT_RECV.fire(type=request_type, frames=frames)
            frame = self._channel.receive()
            if frame is None:
                raise OSError(
                    f"daemon closed the connection during {request_type!r}"
                )
            frames += 1
            if frame.get("event") is not None:
                if on_event is not None:
                    on_event(frame["event"], frame.get("data"))
                continue
            if frame.get("id") != request_id:
                raise ServiceError(
                    f"response id {frame.get('id')!r} does not match "
                    f"request id {request_id}"
                )
            if not frame.get("ok"):
                raise ServiceError(
                    f"{request_type} failed: {frame.get('error')}"
                )
            return frame.get("result")

    def _call(
        self, request_type: str, params: dict, on_event=None, retry=True
    ):
        if self._channel is None:
            raise ServiceError("client is not connected; call connect()")
        request_key = self._new_key()
        attempt = 0
        while True:
            try:
                if self._channel is None:
                    self._connect_once()
                return self._exchange(
                    request_type, params, request_key, on_event
                )
            except (ProtocolError, OSError) as exc:
                self.close()
                attempt += 1
                if not retry or attempt > self._retries:
                    raise ServiceError(
                        f"connection to daemon failed during "
                        f"{request_type!r}: {exc}"
                    ) from exc
                time.sleep(
                    min(
                        self._retry_backoff * 2 ** (attempt - 1),
                        self._retry_backoff_cap,
                    )
                )

    # ------------------------------------------------------------------
    # protocol methods
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        """Liveness probe; returns the daemon's current tick."""
        return self._call("ping", {})

    def info(self) -> dict:
        """Operational summary: shards, device counts, restarts, pids."""
        return self._call("info", {})

    def register_group(
        self,
        group: dict,
        base_seed: int = 0,
        group_index: int | None = None,
    ) -> dict:
        """Register one fleet-spec group's devices into the live fleet.

        ``group`` uses the :func:`~repro.runtime.fleet.parse_fleet_spec`
        group vocabulary (``count``/``system``/``agent``/``workload``/
        ``seed``).  Seeding matches ``build_fleet`` exactly: the same
        group registered at the same index with the same base seed
        yields byte-identical devices.
        """
        params: dict = {"group": dict(group), "base_seed": int(base_seed)}
        if group_index is not None:
            params["group_index"] = int(group_index)
        return self._call("register_group", params)

    def remove_device(self, device_id: str) -> dict:
        """Deregister one device fleet-wide."""
        return self._call("remove_device", {"device_id": str(device_id)})

    def update_policy(self, device_id: str, agent_spec: dict) -> dict:
        """Push a new agent (same spec vocabulary) onto a live device."""
        return self._call(
            "update_policy",
            {"device_id": str(device_id), "agent": dict(agent_spec)},
        )

    def step(self, n_ticks: int = 1, on_telemetry=None) -> dict:
        """Advance the fleet; stream telemetry records to a callback.

        ``on_telemetry`` (if given) receives each emitted snapshot
        record as the daemon produces it, before the final response.
        Streamed events are best-effort on a flaky connection: a retry
        that lands on the daemon's replay cache returns the step's
        result without re-streaming records already emitted — the
        daemon's telemetry sink is the authoritative record.
        """
        def _route(event_type, data):
            if event_type == "telemetry" and on_telemetry is not None:
                on_telemetry(data)

        return self._call("step", {"ticks": int(n_ticks)}, on_event=_route)

    def snapshot(self, per_device: bool = False) -> dict:
        """A telemetry snapshot of the current fleet state."""
        return self._call("snapshot", {"per_device": bool(per_device)})

    def checkpoint(
        self,
        path,
        telemetry_every: int | None = None,
        telemetry_per_device: bool | None = None,
    ) -> dict:
        """Write a full-fleet checkpoint on the daemon's filesystem."""
        params: dict = {"path": str(path)}
        if telemetry_every is not None:
            params["telemetry_every"] = int(telemetry_every)
        if telemetry_per_device is not None:
            params["telemetry_per_device"] = bool(telemetry_per_device)
        return self._call("checkpoint", params)

    def shutdown(self) -> dict:
        """Stop the daemon (workers stopped, socket unlinked).

        Never retried: after the daemon acknowledges it is already
        exiting, so a lost response would reconnect into nothing.
        """
        result = self._call("shutdown", {}, retry=False)
        self.close()
        return result
