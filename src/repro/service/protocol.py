"""The fleet daemon's wire protocol: versioned JSON-lines frames.

One frame is one newline-terminated JSON object, always serialized
with ``sort_keys=True`` and compact separators so equal messages are
equal bytes.  Three frame shapes flow over a connection:

* **request** (client → daemon): ``{"type", "id", "params"}`` — the
  ``id`` is a client-chosen correlation integer echoed on the reply;
* **response** (daemon → client): ``{"id", "ok", "result", "error"}``
  — exactly one per request, ``error`` is ``None`` on success and the
  failure text otherwise;
* **event** (daemon → client): ``{"event", "id", "data"}`` — pushed
  between a request and its response (telemetry records streamed
  during ``step``) or unsolicited (the ``hello`` greeting); ``id`` is
  the in-flight request id, or ``None`` when unsolicited.

Every field set is declared once as a module-level frozenset and each
constructor carries a ``# repro-lint: schema=...`` marker, so the
``repro.lint`` SCH001 machinery checks the wire format exactly like
telemetry and checkpoint schemas — a writer cannot silently grow or
rename a protocol field.

Handshake: on connect the daemon pushes a ``hello`` event carrying
:func:`hello_data` (protocol version, server name, pid, current tick,
fleet size, shard count); the client must answer with a ``hello``
request declaring the protocol version it speaks before anything
else.  Version mismatches fail the connection immediately — no silent
best-effort parsing of frames from a different protocol generation.
"""

from __future__ import annotations

import json
import time

from repro import faults
from repro.util.validation import ValidationError

__all__ = [
    "EVENT_FIELDS",
    "EVENT_TYPES",
    "FrameChannel",
    "HELLO_FIELDS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "REQUEST_FIELDS",
    "REQUEST_TYPES",
    "RESPONSE_FIELDS",
    "SERVER_NAME",
    "decode_frame",
    "encode_frame",
    "hello_data",
    "make_error",
    "make_event",
    "make_request",
    "make_response",
    "validate_request",
]

#: Bump on incompatible wire-format changes; both ends reject
#: mismatches during the handshake.
PROTOCOL_VERSION = 1

#: Server identity pushed in the hello greeting.
SERVER_NAME = "repro-dpm-fleetd"

#: Hard cap on one frame's encoded size (a 100k-device per-device
#: snapshot stays well under this; anything bigger is a protocol bug,
#: not a payload).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: The complete field set of a request frame (SCH001-checked).
REQUEST_FIELDS = frozenset({"type", "id", "params"})

#: The complete field set of a response frame (SCH001-checked).
RESPONSE_FIELDS = frozenset({"id", "ok", "result", "error"})

#: The complete field set of an event frame (SCH001-checked).
EVENT_FIELDS = frozenset({"event", "id", "data"})

#: The complete field set of the hello greeting's ``data`` payload.
HELLO_FIELDS = frozenset(
    {"protocol", "server", "pid", "tick", "n_devices", "shards"}
)

#: Request types the daemon dispatches.
REQUEST_TYPES = (
    "hello",
    "ping",
    "info",
    "register_group",
    "remove_device",
    "update_policy",
    "step",
    "snapshot",
    "checkpoint",
    "shutdown",
)

#: Event types the daemon pushes.
EVENT_TYPES = ("hello", "telemetry", "log")


class ProtocolError(ValidationError):
    """A malformed, oversized or version-mismatched frame."""


# ----------------------------------------------------------------------
# message constructors (the only writers of the wire field sets)
# ----------------------------------------------------------------------
def make_request(  # repro-lint: schema=REQUEST_FIELDS
    request_id: int, request_type: str, params: dict | None = None
) -> dict:
    """Build one request frame."""
    if request_type not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {request_type!r}; "
            f"valid types: {REQUEST_TYPES}"
        )
    return {
        "type": str(request_type),
        "id": int(request_id),
        "params": dict(params or {}),
    }


def make_response(  # repro-lint: schema=RESPONSE_FIELDS
    request_id: int, result
) -> dict:
    """Build one success response frame."""
    return {
        "id": int(request_id),
        "ok": True,
        "result": result,
        "error": None,
    }


def make_error(  # repro-lint: schema=RESPONSE_FIELDS
    request_id: int, message: str
) -> dict:
    """Build one failure response frame."""
    return {
        "id": int(request_id),
        "ok": False,
        "result": None,
        "error": str(message),
    }


def make_event(  # repro-lint: schema=EVENT_FIELDS
    event_type: str, data, request_id: int | None = None
) -> dict:
    """Build one pushed event frame.

    ``request_id`` ties the event to an in-flight request (telemetry
    streamed during ``step``); ``None`` marks it unsolicited (hello).
    """
    if event_type not in EVENT_TYPES:
        raise ProtocolError(
            f"unknown event type {event_type!r}; valid types: {EVENT_TYPES}"
        )
    return {
        "event": str(event_type),
        "id": None if request_id is None else int(request_id),
        "data": data,
    }


def hello_data(  # repro-lint: schema=HELLO_FIELDS
    pid: int, tick: int, n_devices: int, shards: int
) -> dict:
    """The hello greeting's payload: who is serving, and fleet shape."""
    return {
        "protocol": PROTOCOL_VERSION,
        "server": SERVER_NAME,
        "pid": int(pid),
        "tick": int(tick),
        "n_devices": int(n_devices),
        "shards": int(shards),
    }


def validate_request(message: dict) -> tuple[str, int, dict]:
    """Check a decoded frame against the request schema.

    Returns ``(type, id, params)``; raises :class:`ProtocolError` on
    any drift from :data:`REQUEST_FIELDS` — extra fields are as fatal
    as missing ones, so protocol generations cannot blur together.
    """
    if not isinstance(message, dict):
        raise ProtocolError(
            f"request frame must be an object, got {type(message).__name__}"
        )
    fields = frozenset(message)
    if fields != REQUEST_FIELDS:
        missing = sorted(REQUEST_FIELDS - fields)
        extra = sorted(fields - REQUEST_FIELDS)
        raise ProtocolError(
            f"request frame fields drifted: missing {missing}, extra {extra}"
        )
    request_type = message["type"]
    if request_type not in REQUEST_TYPES:
        raise ProtocolError(
            f"unknown request type {request_type!r}; "
            f"valid types: {REQUEST_TYPES}"
        )
    request_id = message["id"]
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(
            f"request id must be an integer, got {request_id!r}"
        )
    params = message["params"]
    if not isinstance(params, dict):
        raise ProtocolError(
            f"request params must be an object, got {type(params).__name__}"
        )
    return str(request_type), request_id, params


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """Serialize one message to its canonical newline-terminated bytes.

    ``sort_keys`` plus compact separators make the encoding a pure
    function of the message content — the property the CI smoke test
    leans on when it diffs daemon telemetry files byte for byte.
    """
    try:
        text = json.dumps(message, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not JSON-serializable: {exc}") from exc
    data = (text + "\n").encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES "
            f"({MAX_FRAME_BYTES})"
        )
    return data


def decode_frame(line: bytes) -> dict:
    """Parse one newline-delimited frame back to its message."""
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must decode to an object, got {type(message).__name__}"
        )
    return message


class FrameChannel:
    """Newline-delimited JSON framing over a connected stream socket.

    Blocking and single-threaded by design — the daemon serves one
    client at a time and the client issues one request at a time, so
    plain ``sendall``/buffered ``recv`` is the whole transport.
    Framing is terminator-driven, so a peer whose kernel fragments a
    frame across arbitrarily many segments (or one that coalesces
    several frames into one segment) parses identically — the
    :mod:`repro.faults` ``channel.send`` site injects exactly those
    shapes (``partial`` dribbles a frame byte by byte, ``drop`` resets
    the connection) to keep that property tested.

    ``role`` names this endpoint ("client"/"server") for fault-plan
    matching; it has no wire effect.
    """

    def __init__(self, sock, role: str = "peer"):
        self._sock = sock
        self._role = role
        self._buffer = b""

    def send(self, message: dict) -> None:
        """Encode and transmit one frame."""
        data = encode_frame(message)
        for action in faults.CHANNEL_SEND.fire(role=self._role):
            if action.kind == "partial":
                # Dribble the frame out in tiny chunks with pauses —
                # the peer's framing must reassemble it identically.
                step = action.nbytes if action.nbytes else 7
                for start in range(0, len(data), step):
                    self._sock.sendall(data[start : start + step])
                    if action.seconds:
                        time.sleep(action.seconds)
                return
        self._sock.sendall(data)

    def receive(self) -> dict | None:
        """Read one frame; ``None`` on clean EOF between frames."""
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"peer sent more than MAX_FRAME_BYTES "
                    f"({MAX_FRAME_BYTES}) without a frame terminator"
                )
            chunk = self._sock.recv(1 << 16)
            if not chunk:
                if self._buffer:
                    raise ProtocolError(
                        "connection closed mid-frame (truncated message)"
                    )
                return None
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return decode_frame(line)

    def close(self) -> None:
        """Close the underlying socket."""
        self._sock.close()
