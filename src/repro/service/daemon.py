"""The fleet daemon: shard supervision plus the socket accept loop.

:class:`ShardSupervisor` owns the worker processes.  It deals devices
to shards content-addressed (see :mod:`repro.service.shard`), mirrors
the fleet-level bookkeeping a single-process
:class:`~repro.runtime.controller.FleetController` would keep (global
device order, fleet version), steps all shards concurrently each tick
and restarts any worker that dies from its spool checkpoint — then
replays the dead shard's missed ticks, which is byte-exact because
stepping from a checkpoint is deterministic.

:class:`FleetDaemon` is the serving layer: an ``AF_UNIX`` accept loop
speaking the :mod:`repro.service.protocol` frame format, one client
at a time.  Telemetry is aggregated daemon-side: workers report raw
per-device records, the supervisor reorders them into global
registration order and
:func:`~repro.runtime.telemetry.snapshot_from_records` folds them
through the *same* reduction as the single-process snapshot path.

**The byte-identity contract.**  For the same fleet spec and seed, a
sharded run's telemetry records and checkpoints are byte-identical to
the single-process controller's, for any shard count, after any
re-partitioning, and across mid-run worker restarts:

* device trajectories — per-device RNG streams and the pinned chunk
  length make stepping bitwise grouping-invariant;
* fleet aggregates — one shared reduction, fed in one global order;
* checkpoint pickles — devices are gathered back in registration
  order and re-attached to the *canonical* shared objects captured at
  registration (group-shared systems, costs, stationary agents, trace
  count arrays), so the gathered fleet pickles the same object graph
  a single-process fleet would.  Stateless stationary agents come
  from the registry; stateful agents (timeout, adaptive) keep the
  worker-evolved copy, whose state is itself deterministic.

Documented exception: adaptive devices sharing a *warm-starting*
policy cache keep their existing caveat (see
:class:`~repro.runtime.policy_cache.PolicyCache`) — a sharded run
splits the shared cache per worker, so tied-optimal vertex selection
may differ exactly as it already may between two single-process runs
with different cache histories.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.policies.base import PolicyAgent, StationaryAgent
from repro.runtime.checkpoint import (
    checkpoint_payload,
    load_checkpoint,
    write_checkpoint,
)
from repro.runtime.controller import (
    FLEET_CHUNK_SLICES,
    UNIFORM_SOURCES,
    FleetController,
    resolve_backend_name,
)
from repro.runtime.fleet import (
    Device,
    Fleet,
    build_agent_from_spec,
    build_group_devices,
)
from repro.runtime.policy_cache import PolicyCache
from repro.runtime.streams import TraceStream
from repro.runtime.telemetry import snapshot_from_records
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameChannel,
    ProtocolError,
    hello_data,
    make_error,
    make_event,
    make_response,
    validate_request,
)
from repro.service.shard import (
    Partitioner,
    ShardConfig,
    shard_worker_main,
    spool_path,
)
from repro.util.validation import ValidationError

__all__ = ["FleetDaemon", "ShardSupervisor"]


def _normalize_dtypes(obj, seen: set) -> None:
    """Point every reachable ndarray at the cached builtin dtype object.

    Unpickling (numpy's dtype reduce passes ``copy=True``) gives each
    shard's arrays their own dtype *object*; a single-process fleet's
    arrays all share one.  Pickle memoizes by identity, so without
    this pass a gathered fleet would serialize one dtype per shard
    where the reference run serializes one total — different bytes
    for equal content.  Mutating ``arr.dtype`` in place is value-
    preserving (same itemsize, same byte order) and touches nothing
    else in the graph.
    """
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        obj.dtype = np.dtype(obj.dtype.str)
        return
    if isinstance(obj, np.random.Generator):
        seed_seq = obj.bit_generator.seed_seq
        pool = getattr(seed_seq, "pool", None)
        if isinstance(pool, np.ndarray):
            pool.dtype = np.dtype(pool.dtype.str)
        return
    if isinstance(obj, dict):
        for value in obj.values():
            _normalize_dtypes(value, seen)
        return
    if isinstance(obj, (list, tuple)):
        for value in obj:
            _normalize_dtypes(value, seen)
        return
    attributes = getattr(obj, "__dict__", None)
    if attributes:
        _normalize_dtypes(attributes, seen)


@dataclass
class _CanonicalEntry:
    """The shared objects a device referenced at registration time.

    Pickling a partition into a worker forks every shared object into
    a per-shard copy; this registry is how :meth:`gather_fleet`
    restores the original sharing so a gathered fleet's checkpoint
    pickles byte-identically to a single-process fleet's.
    """

    system: object
    costs: object
    agent: PolicyAgent | None
    trace_counts: object


@dataclass
class _WorkerHandle:
    """One live shard worker: process, pipe, and its completed tick."""

    index: int
    process: object
    conn: object
    tick: int


class ShardSupervisor:
    """Deal a fleet across worker processes and keep them in lockstep.

    Parameters
    ----------
    n_shards:
        Worker process count.  ``1`` is a valid (and byte-identical)
        degenerate case — useful for soak-testing the service path.
    slices_per_tick / backend / chunk_slices / uniform_source:
        Forwarded to every shard's controller, exactly as a
        single-process :class:`FleetController` would receive them
        (``uniform_source`` selects the per-lane uniform producer —
        serial fan-in or the byte-identical vectorized batched path).
    lp_backend:
        LP backend for centrally-built agents (live registrations and
        policy pushes).
    spool_dir:
        Directory for per-shard restart checkpoints; defaults to a
        private temporary directory cleaned up on :meth:`stop`.
    checkpoint_every:
        Ticks between spool refreshes (``1``: every tick — a dead
        worker replays at most the tick it died in).  ``0`` disables
        spooling entirely; a worker death then fails the run with a
        clear error instead of restarting.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (free initial device distribution) with a ``spawn``
        fallback.
    """

    def __init__(
        self,
        n_shards: int,
        slices_per_tick: int = 1000,
        backend: str = "auto",
        chunk_slices: int | None = None,
        uniform_source: str = "auto",
        lp_backend: str = "scipy",
        spool_dir=None,
        checkpoint_every: int = 1,
        start_method: str | None = None,
    ):
        checkpoint_every = int(checkpoint_every)
        if checkpoint_every < 0:
            raise ValidationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self._partitioner = Partitioner(n_shards)
        self._n_shards = self._partitioner.n_shards
        self._slices_per_tick = int(slices_per_tick)
        self._backend = str(backend)
        self._chunk_slices = (
            FLEET_CHUNK_SLICES if chunk_slices is None else int(chunk_slices)
        )
        if uniform_source not in UNIFORM_SOURCES:
            raise ValidationError(
                f"unknown uniform_source {uniform_source!r}; "
                f"choose from {UNIFORM_SOURCES}"
            )
        self._uniform_source = str(uniform_source)
        self._lp_backend = str(lp_backend)
        self._checkpoint_every = checkpoint_every
        self._resolved_backend = resolve_backend_name(self._backend)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._tempdir = None
        if checkpoint_every == 0:
            self._spool_dir = None
        elif spool_dir is not None:
            self._spool_dir = Path(spool_dir)
            self._spool_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-spool-")
            self._spool_dir = Path(self._tempdir.name)
        self._workers: list[_WorkerHandle] = []
        self._order: list[str] = []
        self._owner: dict[str, int] = {}
        self._canonical: dict[str, _CanonicalEntry] = {}
        self._version = 0
        self._tick = 0
        self._restarts = 0
        self._started = False

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Ticks completed fleet-wide."""
        return self._tick

    @property
    def n_devices(self) -> int:
        """Devices currently registered."""
        return len(self._order)

    @property
    def n_shards(self) -> int:
        """Worker process count."""
        return self._n_shards

    @property
    def backend(self) -> str:
        """The requested stepping mode (as a controller would report)."""
        return self._backend

    @property
    def resolved_backend(self) -> str:
        """The batch tier shards actually step on (telemetry stamp)."""
        return self._resolved_backend

    @property
    def uniform_source(self) -> str:
        """The requested uniform producer (telemetry stamp)."""
        return self._uniform_source

    @property
    def lp_backend(self) -> str:
        """LP backend for centrally-built agents."""
        return self._lp_backend

    @property
    def restarts(self) -> int:
        """Worker restarts performed so far."""
        return self._restarts

    @property
    def started(self) -> bool:
        """Whether worker processes are running."""
        return self._started

    def canonical_model(self, device_id: str):
        """The registration-time ``(system, costs)`` of one device."""
        entry = self._canonical.get(str(device_id))
        if entry is None:
            raise ValidationError(f"unknown device id {device_id!r}")
        return entry.system, entry.costs

    def info(self) -> dict:
        """Operational summary (the ``info`` protocol result)."""
        per_shard = [0] * self._n_shards
        for shard in self._owner.values():
            per_shard[shard] += 1
        return {
            "tick": self._tick,
            "n_devices": len(self._order),
            "shards": self._n_shards,
            "devices_per_shard": per_shard,
            "backend": self._backend,
            "resolved_backend": self._resolved_backend,
            "slices_per_tick": self._slices_per_tick,
            "chunk_slices": self._chunk_slices,
            "uniform_source": self._uniform_source,
            "checkpoint_every": self._checkpoint_every,
            "restarts": self._restarts,
            "worker_pids": [handle.process.pid for handle in self._workers],
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if not self._started:
            raise ValidationError(
                "supervisor is not running; call start(fleet) first"
            )

    @staticmethod
    def _check_distributable(device: Device) -> None:
        if device.stream is not None and not device.stream.checkpointable:
            raise ValidationError(
                f"device {device.device_id!r} is fed by a "
                f"non-checkpointable stream ({device.stream.describe()}); "
                f"live streams cannot cross process boundaries — use a "
                f"trace/synthetic stream to serve this fleet"
            )

    def _register_canonical(self, device: Device) -> None:
        agent = (
            device.agent
            if isinstance(device.agent, StationaryAgent)
            else None
        )
        trace_counts = (
            device.stream.counts
            if isinstance(device.stream, TraceStream)
            else None
        )
        self._canonical[device.device_id] = _CanonicalEntry(
            system=device.system,
            costs=device.costs,
            agent=agent,
            trace_counts=trace_counts,
        )

    def _spawn(self, index: int, devices: list, tick: int) -> _WorkerHandle:
        spool = (
            str(spool_path(self._spool_dir, index))
            if self._spool_dir is not None
            else None
        )
        config = ShardConfig(
            index=index,
            slices_per_tick=self._slices_per_tick,
            backend=self._backend,
            chunk_slices=self._chunk_slices,
            uniform_source=self._uniform_source,
            spool=spool,
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, config, devices, int(tick)),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(
            index=index, process=process, conn=parent_conn, tick=int(tick)
        )

    def start(self, fleet: Fleet, tick: int = 0) -> None:
        """Deal ``fleet`` to shards and launch the worker processes.

        ``tick`` continues a resumed campaign (pass the checkpoint's
        tick); the fleet's version counter is captured so gathered
        checkpoints mirror the single-process value.
        """
        if self._started:
            raise ValidationError("supervisor is already running")
        partitions: list[list[Device]] = [[] for _ in range(self._n_shards)]
        for device in fleet:
            self._check_distributable(device)
            self._register_canonical(device)
            shard = self._partitioner.assign(device)
            self._order.append(device.device_id)
            self._owner[device.device_id] = shard
            partitions[shard].append(device)
        self._version = fleet.version
        self._tick = int(tick)
        self._workers = [
            self._spawn(index, partitions[index], self._tick)
            for index in range(self._n_shards)
        ]
        self._started = True

    def stop(self) -> None:
        """Stop every worker and clean up spool state."""
        for handle in self._workers:
            try:
                handle.conn.send(("stop", None))
                handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.conn.close()
            handle.process.join(timeout=10)
            if handle.process.is_alive():  # pragma: no cover - safety net
                handle.process.terminate()
                handle.process.join()
        self._workers = []
        self._started = False
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # worker RPC with restart-from-spool
    # ------------------------------------------------------------------
    def _spool_due(self, tick: int) -> bool:
        return (
            self._checkpoint_every > 0
            and tick % self._checkpoint_every == 0
        )

    def _restart(self, handle: _WorkerHandle, target_tick: int) -> _WorkerHandle:
        """Respawn a dead worker from its spool and replay to the target."""
        if self._spool_dir is None:
            raise ValidationError(
                f"shard {handle.index} died and spooling is disabled "
                f"(checkpoint_every=0); the run cannot recover"
            )
        if handle.process.is_alive():  # pragma: no cover - defensive
            handle.process.terminate()
        handle.process.join()
        handle.conn.close()
        payload = load_checkpoint(spool_path(self._spool_dir, handle.index))
        fresh = self._spawn(
            handle.index, list(payload["fleet"]), payload["tick"]
        )
        self._workers[handle.index] = fresh
        self._restarts += 1
        # Deterministic replay: stepping from the spooled state redoes
        # the missed ticks byte-for-byte.
        while fresh.tick < target_tick:
            next_tick = fresh.tick + 1
            spool = self._spool_due(next_tick) or next_tick == target_tick
            self._pipe_call(fresh, "step", {"spool": spool})
            fresh.tick = next_tick
        return fresh

    def _pipe_call(self, handle: _WorkerHandle, command: str, payload):
        """One send/recv round with a specific worker (no recovery)."""
        handle.conn.send((command, payload))
        status, result = handle.conn.recv()
        if status == "error":
            raise ValidationError(f"shard {handle.index}: {result}")
        return result

    def _call(self, handle: _WorkerHandle, command: str, payload):
        """A worker round trip, restarting from spool on worker death."""
        try:
            return self._pipe_call(handle, command, payload)
        except (EOFError, OSError):
            fresh = self._restart(handle, self._tick)
            return self._pipe_call(fresh, command, payload)

    # ------------------------------------------------------------------
    # fleet operations
    # ------------------------------------------------------------------
    def step_tick(self) -> None:
        """Advance every shard one tick, concurrently.

        The step command fans out to all workers before any reply is
        awaited, so shards overlap their serial per-device RNG fan-in
        — the throughput the service exists for.  Workers found dead
        at either phase are restarted from spool and replayed.
        """
        self._require_started()
        target = self._tick + 1
        spool = self._spool_due(target)
        dead: list[_WorkerHandle] = []
        for handle in self._workers:
            try:
                handle.conn.send(("step", {"spool": spool}))
            except OSError:
                dead.append(handle)
        for handle in self._workers:
            if handle in dead:
                continue
            try:
                status, result = handle.conn.recv()
            except (EOFError, OSError):
                dead.append(handle)
                continue
            if status == "error":
                raise ValidationError(
                    f"shard {handle.index} failed to step: {result}"
                )
            handle.tick = target
        for handle in dead:
            self._restart(handle, target)
        self._tick = target

    def run(self, n_ticks: int) -> None:
        """Step ``n_ticks`` ticks back to back."""
        n_ticks = int(n_ticks)
        if n_ticks < 0:
            raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
        for _ in range(n_ticks):
            self.step_tick()

    def register_devices(self, devices) -> list[str]:
        """Adopt already-built devices into the running fleet.

        Mirrors a single-process fleet performing the same adoptions:
        global order extends in argument order, the version counter
        advances once per device, and the partitioner deals each
        device exactly where a longer initial fleet would have.
        """
        self._require_started()
        devices = list(devices)
        seen: set[str] = set()
        for device in devices:
            if device.device_id in self._owner or device.device_id in seen:
                raise ValidationError(
                    f"duplicate device id {device.device_id!r}"
                )
            seen.add(device.device_id)
            self._check_distributable(device)
        per_shard: dict[int, list[Device]] = {}
        for device in devices:
            shard = self._partitioner.assign(device)
            self._register_canonical(device)
            self._order.append(device.device_id)
            self._owner[device.device_id] = shard
            per_shard.setdefault(shard, []).append(device)
        for shard in sorted(per_shard):
            self._call(self._workers[shard], "add_devices", per_shard[shard])
        self._version += len(devices)
        return [device.device_id for device in devices]

    def remove_device(self, device_id: str) -> None:
        """Deregister one device fleet-wide."""
        self._require_started()
        device_id = str(device_id)
        shard = self._owner.get(device_id)
        if shard is None:
            raise ValidationError(f"unknown device id {device_id!r}")
        self._call(self._workers[shard], "remove_device", device_id)
        del self._owner[device_id]
        del self._canonical[device_id]
        self._order.remove(device_id)
        self._version += 1

    def replace_agents(self, pairs) -> None:
        """Push new agents onto live devices (no restart)."""
        self._require_started()
        pairs = [(str(device_id), agent) for device_id, agent in pairs]
        for device_id, agent in pairs:
            if device_id not in self._owner:
                raise ValidationError(f"unknown device id {device_id!r}")
            if not isinstance(agent, PolicyAgent):
                raise ValidationError(
                    f"agent for {device_id!r} must be a PolicyAgent, "
                    f"got {type(agent).__name__}"
                )
        per_shard: dict[int, list[tuple]] = {}
        for device_id, agent in pairs:
            entry = self._canonical[device_id]
            entry.agent = agent if isinstance(agent, StationaryAgent) else None
            per_shard.setdefault(self._owner[device_id], []).append(
                (device_id, agent)
            )
        for shard in sorted(per_shard):
            self._call(
                self._workers[shard], "replace_agents", per_shard[shard]
            )
        self._version += len(pairs)

    def collect_records(self) -> list[dict]:
        """Every device's telemetry record, in global registration order."""
        self._require_started()
        by_id: dict[str, dict] = {}
        for handle in list(self._workers):
            for record in self._call(handle, "records", None):
                by_id[record["id"]] = record
        return [by_id[device_id] for device_id in self._order]

    def gather_fleet(self) -> Fleet:
        """Reassemble the full fleet in-process, canonicalized.

        Devices come back in global registration order with their
        registration-time shared objects re-attached (see the module
        docstring), and the fleet's version counter set to the
        mirrored single-process value — so pickling the result is
        byte-identical to pickling the uninterrupted fleet.
        """
        self._require_started()
        by_id: dict[str, Device] = {}
        for handle in list(self._workers):
            for device in self._call(handle, "gather", None):
                by_id[device.device_id] = device
        fleet = Fleet()
        seen: set = set()
        for device_id in self._order:
            device = by_id[device_id]
            entry = self._canonical[device_id]
            device.system = entry.system
            device.costs = entry.costs
            # The metric-name tuple is rebuilt per device at
            # construction from the (shared) costs strings; rebuild it
            # the same way so the strings memoize identically.
            device.metric_names = tuple(entry.costs.metric_names)
            if entry.agent is not None:
                device.agent = entry.agent
            if entry.trace_counts is not None and isinstance(
                device.stream, TraceStream
            ):
                device.stream.rebind_counts(entry.trace_counts)
            _normalize_dtypes(device, seen)
            fleet.adopt_device(device)
        fleet.version = self._version
        return fleet

    def save_checkpoint(
        self,
        path,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
    ) -> None:
        """Write a gathered-fleet checkpoint.

        The payload goes through the same
        :func:`~repro.runtime.checkpoint.checkpoint_payload` producer
        as :meth:`FleetController.save_checkpoint`, with the gathered
        canonical fleet — resumable by either the single-process
        controller or a daemon with any shard count.
        """
        fleet = self.gather_fleet()
        write_checkpoint(
            path,
            checkpoint_payload(
                fleet,
                self._tick,
                self._slices_per_tick,
                self._backend,
                self._chunk_slices,
                telemetry_every,
                telemetry_per_device,
                uniform_source=self._uniform_source,
            ),
        )

    def as_controller(self, **kwargs) -> FleetController:
        """A single-process controller over the gathered fleet.

        Mostly a testing aid: proves the gathered state is exactly
        what the single-process path would hold.
        """
        return FleetController(
            self.gather_fleet(),
            slices_per_tick=self._slices_per_tick,
            backend=self._backend,
            chunk_slices=self._chunk_slices,
            uniform_source=self._uniform_source,
            initial_tick=self._tick,
            **kwargs,
        )


class FleetDaemon:
    """``AF_UNIX`` accept loop serving the fleet protocol.

    One client at a time, requests served in order — the determinism
    contract leaves no room for concurrent mutation anyway, so the
    serving layer stays trivially correct.  Telemetry emitted during
    ``step`` requests goes to the daemon's own sink (if any) *and* is
    streamed to the requesting client as ``telemetry`` events.

    Note the classic ``AF_UNIX`` constraint: socket paths are limited
    to ~100 bytes — keep them short (``/tmp/...``).
    """

    def __init__(
        self,
        socket_path,
        supervisor: ShardSupervisor,
        telemetry=None,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
        policy_cache: PolicyCache | None = None,
        next_group_index: int = 0,
    ):
        telemetry_every = int(telemetry_every)
        if telemetry_every <= 0:
            raise ValidationError(
                f"telemetry_every must be > 0, got {telemetry_every}"
            )
        self._socket_path = Path(socket_path)
        self._supervisor = supervisor
        self._telemetry = telemetry
        self._telemetry_every = telemetry_every
        self._telemetry_per_device = bool(telemetry_per_device)
        self._cache = policy_cache or PolicyCache()
        self._next_group_index = int(next_group_index)
        self._running = False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Bind, accept and serve until a ``shutdown`` request.

        Owns cleanup: the socket file is unlinked, the telemetry sink
        closed and the supervisor stopped on the way out, whatever
        path led there.
        """
        if self._socket_path.exists():
            raise ValidationError(
                f"socket path {self._socket_path} already exists; is "
                f"another daemon running? (remove the stale file if not)"
            )
        if not self._supervisor.started:
            self._supervisor.start(Fleet())
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(str(self._socket_path))
            server.listen(1)
            self._running = True
            while self._running:
                client, _ = server.accept()
                channel = FrameChannel(client)
                try:
                    self._serve_client(channel)
                except (ProtocolError, OSError):
                    # A misbehaving or vanished client never takes the
                    # fleet down; drop it and accept the next one.
                    pass
                finally:
                    channel.close()
        finally:
            server.close()
            if self._socket_path.exists():
                self._socket_path.unlink()
            if self._telemetry is not None:
                self._telemetry.close()
            self._supervisor.stop()

    def _hello(self) -> dict:
        supervisor = self._supervisor
        return hello_data(
            os.getpid(),
            supervisor.tick,
            supervisor.n_devices,
            supervisor.n_shards,
        )

    def _serve_client(self, channel: FrameChannel) -> None:
        channel.send(make_event("hello", self._hello()))
        frame = channel.receive()
        if frame is None:
            return
        request_type, request_id, params = validate_request(frame)
        if request_type != "hello":
            channel.send(
                make_error(request_id, "first request must be 'hello'")
            )
            return
        client_protocol = params.get("protocol")
        if client_protocol != PROTOCOL_VERSION:
            channel.send(
                make_error(
                    request_id,
                    f"protocol version mismatch: server speaks "
                    f"{PROTOCOL_VERSION}, client sent {client_protocol!r}",
                )
            )
            return
        channel.send(make_response(request_id, self._hello()))
        while self._running:
            frame = channel.receive()
            if frame is None:
                return
            request_type, request_id, params = validate_request(frame)
            if request_type == "shutdown":
                channel.send(make_response(request_id, {"stopped": True}))
                self._running = False
                return
            try:
                result = self._dispatch(request_type, request_id, params, channel)
            except (ProtocolError, OSError):
                raise
            except Exception as exc:
                channel.send(make_error(request_id, str(exc)))
            else:
                channel.send(make_response(request_id, result))

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def _fleet_snapshot(  # repro-lint: schema=repro.runtime.telemetry:SNAPSHOT_FIELDS
        self, per_device: bool
    ) -> dict:
        """The daemon-side snapshot: reordered records, shared fold.

        Stamped with the supervisor's resolved backend and requested
        uniform source exactly like :meth:`FleetController.snapshot` —
        byte-identical output for equal fleet state.
        """
        supervisor = self._supervisor
        record = snapshot_from_records(
            supervisor.tick,
            supervisor.collect_records(),
            per_device=per_device,
        )
        record["backend"] = supervisor.resolved_backend
        record["uniform_source"] = supervisor.uniform_source
        return record

    def _emit_telemetry(self, channel: FrameChannel, request_id: int) -> None:
        record = self._fleet_snapshot(self._telemetry_per_device)
        if self._telemetry is not None:
            self._telemetry.record(record)
        channel.send(make_event("telemetry", record, request_id))

    def _dispatch(
        self,
        request_type: str,
        request_id: int,
        params: dict,
        channel: FrameChannel,
    ):
        supervisor = self._supervisor
        if request_type == "hello":
            return self._hello()
        if request_type == "ping":
            return {"pong": True, "tick": supervisor.tick}
        if request_type == "info":
            return supervisor.info()
        if request_type == "register_group":
            group = params.get("group")
            if not isinstance(group, dict):
                raise ProtocolError(
                    "register_group needs a 'group' mapping parameter"
                )
            group_index = params.get("group_index")
            if group_index is None:
                group_index = self._next_group_index
            devices = build_group_devices(
                group,
                group_index=int(group_index),
                base_seed=int(params.get("base_seed", 0)),
                lp_backend=supervisor.lp_backend,
                cache=self._cache,
            )
            device_ids = supervisor.register_devices(devices)
            self._next_group_index = max(
                self._next_group_index, int(group_index) + 1
            )
            return {
                "device_ids": device_ids,
                "n_devices": supervisor.n_devices,
                "group_index": int(group_index),
            }
        if request_type == "remove_device":
            device_id = str(params.get("device_id", ""))
            supervisor.remove_device(device_id)
            return {
                "device_id": device_id,
                "n_devices": supervisor.n_devices,
            }
        if request_type == "update_policy":
            device_id = str(params.get("device_id", ""))
            agent_spec = params.get("agent")
            if not isinstance(agent_spec, dict):
                raise ProtocolError(
                    "update_policy needs an 'agent' mapping parameter"
                )
            system, costs = supervisor.canonical_model(device_id)
            agent = build_agent_from_spec(
                agent_spec,
                system,
                costs,
                cache=self._cache,
                lp_backend=supervisor.lp_backend,
            )
            supervisor.replace_agents([(device_id, agent)])
            return {"device_id": device_id, "agent": agent.describe()}
        if request_type == "step":
            n_ticks = int(params.get("ticks", 1))
            if n_ticks < 0:
                raise ProtocolError(f"ticks must be >= 0, got {n_ticks}")
            for _ in range(n_ticks):
                supervisor.step_tick()
                if supervisor.tick % self._telemetry_every == 0:
                    self._emit_telemetry(channel, request_id)
            return {"tick": supervisor.tick, "ticks_run": n_ticks}
        if request_type == "snapshot":
            return self._fleet_snapshot(bool(params.get("per_device", False)))
        if request_type == "checkpoint":
            path = params.get("path")
            if not path:
                raise ProtocolError("checkpoint needs a 'path' parameter")
            supervisor.save_checkpoint(
                path,
                telemetry_every=int(
                    params.get("telemetry_every", self._telemetry_every)
                ),
                telemetry_per_device=bool(
                    params.get(
                        "telemetry_per_device", self._telemetry_per_device
                    )
                ),
            )
            return {"path": str(path), "tick": supervisor.tick}
        raise ProtocolError(  # pragma: no cover - validate_request gates
            f"unhandled request type {request_type!r}"
        )
