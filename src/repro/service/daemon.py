"""The fleet daemon: shard supervision plus the socket accept loop.

:class:`ShardSupervisor` owns the worker processes.  It deals devices
to shards content-addressed (see :mod:`repro.service.shard`), mirrors
the fleet-level bookkeeping a single-process
:class:`~repro.runtime.controller.FleetController` would keep (global
device order, fleet version), steps all shards concurrently each tick
and restarts any worker that dies from its spool checkpoint — then
replays the dead shard's missed ticks, which is byte-exact because
stepping from a checkpoint is deterministic.

:class:`FleetDaemon` is the serving layer: an ``AF_UNIX`` accept loop
speaking the :mod:`repro.service.protocol` frame format, one client
at a time.  Telemetry is aggregated daemon-side: workers report raw
per-device records, the supervisor reorders them into global
registration order and
:func:`~repro.runtime.telemetry.snapshot_from_records` folds them
through the *same* reduction as the single-process snapshot path.

**The byte-identity contract.**  For the same fleet spec and seed, a
sharded run's telemetry records and checkpoints are byte-identical to
the single-process controller's, for any shard count, after any
re-partitioning, and across mid-run worker restarts:

* device trajectories — per-device RNG streams and the pinned chunk
  length make stepping bitwise grouping-invariant;
* fleet aggregates — one shared reduction, fed in one global order;
* checkpoint pickles — devices are gathered back in registration
  order and re-attached to the *canonical* shared objects captured at
  registration (group-shared systems, costs, stationary agents, trace
  count arrays), so the gathered fleet pickles the same object graph
  a single-process fleet would.  Stateless stationary agents come
  from the registry; stateful agents (timeout, adaptive) keep the
  worker-evolved copy, whose state is itself deterministic.

Documented exception: adaptive devices sharing a *warm-starting*
policy cache keep their existing caveat (see
:class:`~repro.runtime.policy_cache.PolicyCache`) — a sharded run
splits the shared cache per worker, so tied-optimal vertex selection
may differ exactly as it already may between two single-process runs
with different cache histories.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.faults.plan import FaultPlan
from repro.policies.base import PolicyAgent, StationaryAgent
from repro.runtime.checkpoint import (
    checkpoint_payload,
    write_checkpoint,
)
from repro.runtime.controller import (
    FLEET_CHUNK_SLICES,
    UNIFORM_SOURCES,
    FleetController,
    resolve_backend_name,
)
from repro.runtime.fleet import (
    Device,
    Fleet,
    build_agent_from_spec,
    build_group_devices,
)
from repro.runtime.policy_cache import PolicyCache
from repro.runtime.streams import TraceStream
from repro.runtime.telemetry import device_record, snapshot_from_records
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FrameChannel,
    ProtocolError,
    hello_data,
    make_error,
    make_event,
    make_response,
    validate_request,
)
from repro.service.shard import (
    Partitioner,
    ShardConfig,
    shard_worker_main,
)
from repro.service.spool import load_spool
from repro.util.validation import ValidationError

__all__ = ["FleetDaemon", "ShardSupervisor", "reap_process"]


def reap_process(
    process, *, join_timeout: float = 10.0, term_timeout: float = 5.0
) -> None:
    """Make sure ``process`` is gone: join → terminate → kill → join.

    The shutdown safety net: a worker that ignores its stop command
    (wedged, or blocked in a syscall) is escalated through SIGTERM and
    finally SIGKILL, so supervisor shutdown never strands a process.
    """
    process.join(timeout=join_timeout)
    if process.is_alive():
        process.terminate()
        process.join(timeout=term_timeout)
    if process.is_alive():
        process.kill()
        process.join()


class _WorkerGone(Exception):
    """Internal: a worker failed a round trip (dead, hung, or cut off).

    Never escapes the supervisor — every raiser is paired with a
    recovery (restart-from-spool, or quarantine) or converted to a
    :class:`ValidationError`.
    """

    def __init__(self, index: int, why: str):
        super().__init__(f"shard {index} {why}")
        self.index = index
        self.why = why


def _normalize_dtypes(obj, seen: set) -> None:
    """Point every reachable ndarray at the cached builtin dtype object.

    Unpickling (numpy's dtype reduce passes ``copy=True``) gives each
    shard's arrays their own dtype *object*; a single-process fleet's
    arrays all share one.  Pickle memoizes by identity, so without
    this pass a gathered fleet would serialize one dtype per shard
    where the reference run serializes one total — different bytes
    for equal content.  Mutating ``arr.dtype`` in place is value-
    preserving (same itemsize, same byte order) and touches nothing
    else in the graph.
    """
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        obj.dtype = np.dtype(obj.dtype.str)
        return
    if isinstance(obj, np.random.Generator):
        seed_seq = obj.bit_generator.seed_seq
        pool = getattr(seed_seq, "pool", None)
        if isinstance(pool, np.ndarray):
            pool.dtype = np.dtype(pool.dtype.str)
        return
    if isinstance(obj, dict):
        for value in obj.values():
            _normalize_dtypes(value, seen)
        return
    if isinstance(obj, (list, tuple)):
        for value in obj:
            _normalize_dtypes(value, seen)
        return
    attributes = getattr(obj, "__dict__", None)
    if attributes:
        _normalize_dtypes(attributes, seen)


@dataclass
class _CanonicalEntry:
    """The shared objects a device referenced at registration time.

    Pickling a partition into a worker forks every shared object into
    a per-shard copy; this registry is how :meth:`gather_fleet`
    restores the original sharing so a gathered fleet's checkpoint
    pickles byte-identically to a single-process fleet's.
    """

    system: object
    costs: object
    agent: PolicyAgent | None
    trace_counts: object


@dataclass
class _WorkerHandle:
    """One live shard worker: process, pipe, and its completed tick."""

    index: int
    process: object
    conn: object
    tick: int


class ShardSupervisor:
    """Deal a fleet across worker processes and keep them in lockstep.

    Parameters
    ----------
    n_shards:
        Worker process count.  ``1`` is a valid (and byte-identical)
        degenerate case — useful for soak-testing the service path.
    slices_per_tick / backend / chunk_slices / uniform_source:
        Forwarded to every shard's controller, exactly as a
        single-process :class:`FleetController` would receive them
        (``uniform_source`` selects the per-lane uniform producer —
        serial fan-in or the byte-identical vectorized batched path).
    lp_backend:
        LP backend for centrally-built agents (live registrations and
        policy pushes).
    spool_dir:
        Directory for per-shard restart checkpoints; defaults to a
        private temporary directory cleaned up on :meth:`stop`.
    checkpoint_every:
        Ticks between spool refreshes (``1``: every tick — a dead
        worker replays at most the tick it died in).  ``0`` disables
        spooling entirely; a worker death then fails the run with a
        clear error instead of restarting.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (free initial device distribution) with a ``spawn``
        fallback.
    worker_deadline:
        Seconds the supervisor waits on any worker round trip before
        declaring the worker *hung*, SIGKILLing it and restarting from
        spool — the defense a merely-dead worker (EOF on the pipe)
        never needed.  ``None`` disables deadlines (wait forever).
    restart_backoff / restart_backoff_cap:
        Crash-loop damping: consecutive failed recoveries of one shard
        sleep ``restart_backoff * 2**(n-1)`` seconds (capped) before
        the next attempt.  A successful recovery or step resets the
        shard's failure count.
    quarantine_after:
        Consecutive failed recovery attempts before a shard is
        *quarantined*: its last spooled state is parked, it is
        excluded from stepping, and the daemon keeps serving the rest
        of the fleet (reported under ``info()["quarantined"]`` and in
        telemetry) instead of crash-looping forever.
    fault_plan / fault_ledger:
        Optional :class:`~repro.faults.FaultPlan` installed across the
        supervisor and every worker process (see :mod:`repro.faults`);
        the ledger directory defaults to ``<spool_dir>/fired``.
    """

    def __init__(
        self,
        n_shards: int,
        slices_per_tick: int = 1000,
        backend: str = "auto",
        chunk_slices: int | None = None,
        uniform_source: str = "auto",
        lp_backend: str = "scipy",
        spool_dir=None,
        checkpoint_every: int = 1,
        start_method: str | None = None,
        worker_deadline: float | None = 300.0,
        restart_backoff: float = 0.5,
        restart_backoff_cap: float = 30.0,
        quarantine_after: int = 5,
        fault_plan: FaultPlan | None = None,
        fault_ledger=None,
    ):
        checkpoint_every = int(checkpoint_every)
        if checkpoint_every < 0:
            raise ValidationError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if worker_deadline is not None and worker_deadline <= 0:
            raise ValidationError(
                f"worker_deadline must be > 0 (or None), got {worker_deadline}"
            )
        quarantine_after = int(quarantine_after)
        if quarantine_after < 1:
            raise ValidationError(
                f"quarantine_after must be >= 1, got {quarantine_after}"
            )
        self._partitioner = Partitioner(n_shards)
        self._n_shards = self._partitioner.n_shards
        self._slices_per_tick = int(slices_per_tick)
        self._backend = str(backend)
        self._chunk_slices = (
            FLEET_CHUNK_SLICES if chunk_slices is None else int(chunk_slices)
        )
        if uniform_source not in UNIFORM_SOURCES:
            raise ValidationError(
                f"unknown uniform_source {uniform_source!r}; "
                f"choose from {UNIFORM_SOURCES}"
            )
        self._uniform_source = str(uniform_source)
        self._lp_backend = str(lp_backend)
        self._checkpoint_every = checkpoint_every
        self._resolved_backend = resolve_backend_name(self._backend)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._tempdir = None
        if checkpoint_every == 0:
            self._spool_dir = None
        elif spool_dir is not None:
            self._spool_dir = Path(spool_dir)
            self._spool_dir.mkdir(parents=True, exist_ok=True)
        else:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-spool-")
            self._spool_dir = Path(self._tempdir.name)
        self._worker_deadline = (
            None if worker_deadline is None else float(worker_deadline)
        )
        self._restart_backoff = float(restart_backoff)
        self._restart_backoff_cap = float(restart_backoff_cap)
        self._quarantine_after = quarantine_after
        self._fault_plan = fault_plan
        self._fault_tempdir = None
        self._fault_ledger = None
        self._injector = None
        if fault_plan is not None:
            if fault_ledger is not None:
                self._fault_ledger = Path(fault_ledger)
            elif self._spool_dir is not None:
                self._fault_ledger = self._spool_dir / "fired"
            else:
                self._fault_tempdir = tempfile.TemporaryDirectory(
                    prefix="repro-fault-ledger-"
                )
                self._fault_ledger = Path(self._fault_tempdir.name)
        self._workers: list[_WorkerHandle | None] = []
        self._failures: list[int] = []
        self._parked: dict[int, dict] = {}
        self._order: list[str] = []
        self._owner: dict[str, int] = {}
        self._canonical: dict[str, _CanonicalEntry] = {}
        self._version = 0
        self._tick = 0
        self._restarts = 0
        self._started = False

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Ticks completed fleet-wide."""
        return self._tick

    @property
    def n_devices(self) -> int:
        """Devices currently registered."""
        return len(self._order)

    @property
    def n_shards(self) -> int:
        """Worker process count."""
        return self._n_shards

    @property
    def backend(self) -> str:
        """The requested stepping mode (as a controller would report)."""
        return self._backend

    @property
    def resolved_backend(self) -> str:
        """The batch tier shards actually step on (telemetry stamp)."""
        return self._resolved_backend

    @property
    def uniform_source(self) -> str:
        """The requested uniform producer (telemetry stamp)."""
        return self._uniform_source

    @property
    def lp_backend(self) -> str:
        """LP backend for centrally-built agents."""
        return self._lp_backend

    @property
    def restarts(self) -> int:
        """Worker restarts performed so far."""
        return self._restarts

    @property
    def quarantined(self) -> list[int]:
        """Shard indices parked by the crash-loop breaker (sorted)."""
        return sorted(self._parked)

    @property
    def started(self) -> bool:
        """Whether worker processes are running."""
        return self._started

    def canonical_model(self, device_id: str):
        """The registration-time ``(system, costs)`` of one device."""
        entry = self._canonical.get(str(device_id))
        if entry is None:
            raise ValidationError(f"unknown device id {device_id!r}")
        return entry.system, entry.costs

    def info(self) -> dict:
        """Operational summary (the ``info`` protocol result)."""
        per_shard = [0] * self._n_shards
        for shard in self._owner.values():
            per_shard[shard] += 1
        return {
            "tick": self._tick,
            "n_devices": len(self._order),
            "shards": self._n_shards,
            "devices_per_shard": per_shard,
            "backend": self._backend,
            "resolved_backend": self._resolved_backend,
            "slices_per_tick": self._slices_per_tick,
            "chunk_slices": self._chunk_slices,
            "uniform_source": self._uniform_source,
            "checkpoint_every": self._checkpoint_every,
            "restarts": self._restarts,
            "worker_pids": [
                handle.process.pid if handle is not None else None
                for handle in self._workers
            ],
            "quarantined": self.quarantined,
            "failures": list(self._failures),
            "worker_deadline": self._worker_deadline,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _require_started(self) -> None:
        if not self._started:
            raise ValidationError(
                "supervisor is not running; call start(fleet) first"
            )

    @staticmethod
    def _check_distributable(device: Device) -> None:
        if device.stream is not None and not device.stream.checkpointable:
            raise ValidationError(
                f"device {device.device_id!r} is fed by a "
                f"non-checkpointable stream ({device.stream.describe()}); "
                f"live streams cannot cross process boundaries — use a "
                f"trace/synthetic stream to serve this fleet"
            )

    def _register_canonical(self, device: Device) -> None:
        agent = (
            device.agent
            if isinstance(device.agent, StationaryAgent)
            else None
        )
        trace_counts = (
            device.stream.counts
            if isinstance(device.stream, TraceStream)
            else None
        )
        self._canonical[device.device_id] = _CanonicalEntry(
            system=device.system,
            costs=device.costs,
            agent=agent,
            trace_counts=trace_counts,
        )

    def _spawn(self, index: int, devices: list, tick: int) -> _WorkerHandle:
        config = ShardConfig(
            index=index,
            slices_per_tick=self._slices_per_tick,
            backend=self._backend,
            chunk_slices=self._chunk_slices,
            uniform_source=self._uniform_source,
            spool_dir=(
                str(self._spool_dir) if self._spool_dir is not None else None
            ),
            fault_plan=self._fault_plan,
            fault_ledger=(
                str(self._fault_ledger)
                if self._fault_ledger is not None
                else None
            ),
        )
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, config, devices, int(tick)),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(
            index=index, process=process, conn=parent_conn, tick=int(tick)
        )

    def start(self, fleet: Fleet, tick: int = 0) -> None:
        """Deal ``fleet`` to shards and launch the worker processes.

        ``tick`` continues a resumed campaign (pass the checkpoint's
        tick); the fleet's version counter is captured so gathered
        checkpoints mirror the single-process value.
        """
        if self._started:
            raise ValidationError("supervisor is already running")
        partitions: list[list[Device]] = [[] for _ in range(self._n_shards)]
        for device in fleet:
            self._check_distributable(device)
            self._register_canonical(device)
            shard = self._partitioner.assign(device)
            self._order.append(device.device_id)
            self._owner[device.device_id] = shard
            partitions[shard].append(device)
        self._version = fleet.version
        self._tick = int(tick)
        if self._fault_plan is not None:
            self._injector = faults.install(
                self._fault_plan, self._fault_ledger
            )
        self._workers = [
            self._spawn(index, partitions[index], self._tick)
            for index in range(self._n_shards)
        ]
        self._failures = [0] * self._n_shards
        self._started = True

    def stop(self) -> None:
        """Stop every worker and clean up spool state.

        Shutdown never strands a process: a worker that fails to
        acknowledge its stop command within a short deadline is
        escalated through :func:`reap_process` (join → SIGTERM →
        SIGKILL), whatever state it wedged in.
        """
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.conn.send(("stop", None))
                if handle.conn.poll(5.0):
                    handle.conn.recv()
            except (EOFError, OSError):
                pass
            handle.conn.close()
            reap_process(handle.process)
        self._workers = []
        self._failures = []
        self._parked = {}
        self._started = False
        if self._injector is not None:
            faults.uninstall()
            self._injector = None
        if self._fault_tempdir is not None:
            self._fault_tempdir.cleanup()
            self._fault_tempdir = None
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # ------------------------------------------------------------------
    # worker RPC with restart-from-spool, backoff and quarantine
    # ------------------------------------------------------------------
    def _spool_due(self, tick: int) -> bool:
        return (
            self._checkpoint_every > 0
            and tick % self._checkpoint_every == 0
        )

    def _kill_worker(self, handle: _WorkerHandle) -> None:
        """Put a failed worker definitively out of its misery."""
        if handle.process.is_alive():
            try:
                os.kill(handle.process.pid, signal.SIGKILL)
            except OSError:  # pragma: no cover - already gone
                pass
        handle.process.join()
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def _recv(self, handle: _WorkerHandle):
        """Receive one reply, bounded by the worker deadline.

        A worker that neither replies nor dies within the deadline is
        *hung* — it gets SIGKILLed right here (there is no other way
        to unwedge it) and reported exactly like a dead one, so the
        caller's recovery path is shared.
        """
        if self._worker_deadline is not None:
            try:
                ready = handle.conn.poll(self._worker_deadline)
            except (EOFError, OSError):
                raise _WorkerGone(handle.index, "pipe failed") from None
            if not ready:
                self._kill_worker(handle)
                raise _WorkerGone(
                    handle.index,
                    f"hung (no reply within {self._worker_deadline}s)",
                )
        try:
            return handle.conn.recv()
        except (EOFError, OSError):
            raise _WorkerGone(handle.index, "died mid-command") from None

    def _pipe_call(self, handle: _WorkerHandle, command: str, payload):
        """One send/recv round with a specific worker (no recovery)."""
        try:
            handle.conn.send((command, payload))
        except (EOFError, OSError):
            raise _WorkerGone(handle.index, "died before command") from None
        status, result = self._recv(handle)
        if status == "error":
            raise ValidationError(f"shard {handle.index}: {result}")
        return result

    def _worker_or_raise(self, index: int) -> _WorkerHandle:
        handle = self._workers[index]
        if handle is None:
            raise ValidationError(
                f"shard {index} is quarantined (crash-looped "
                f"{self._quarantine_after} times); it serves stale state "
                f"but accepts no mutations"
            )
        return handle

    def _call(self, index: int, command: str, payload):
        """A worker round trip with full recovery.

        On worker death or hang: restart from the latest valid spool
        generation, replay to the current tick, and retry the command
        — looping until it lands or the shard quarantines.
        """
        while True:
            handle = self._worker_or_raise(index)
            try:
                return self._pipe_call(handle, command, payload)
            except _WorkerGone:
                self._kill_worker(handle)
                self._recover(index, self._tick)

    def _quarantine(self, index: int) -> None:
        """Park a crash-looping shard and keep the fleet serving.

        The shard's last spooled state is kept in-process: telemetry
        and checkpoints serve these (stale) devices, ``info`` reports
        the quarantine, and stepping simply excludes the shard — the
        degraded-but-alive mode a controller in a hardware control
        loop owes its system.
        """
        payload = (
            load_spool(self._spool_dir, index)
            if self._spool_dir is not None
            else None
        )
        devices = list(payload["fleet"]) if payload is not None else []
        self._parked[index] = {
            "tick": payload["tick"] if payload is not None else None,
            "devices": {device.device_id: device for device in devices},
        }
        self._workers[index] = None

    def _recover(self, index: int, target_tick: int) -> _WorkerHandle | None:
        """Restart shard ``index`` from spool and replay to the target.

        Consecutive failures back off exponentially; after
        ``quarantine_after`` failed attempts the shard is quarantined
        and ``None`` is returned.  Success resets the failure count.
        Byte-exactness: replaying from the spooled state redoes the
        missed ticks deterministically, and the one-shot fault ledger
        guarantees an injected fault never re-fires during replay.
        """
        if self._spool_dir is None:
            raise ValidationError(
                f"shard {index} died and spooling is disabled "
                f"(checkpoint_every=0); the run cannot recover"
            )
        while True:
            if self._failures[index] >= self._quarantine_after:
                self._quarantine(index)
                return None
            if self._failures[index] > 0:
                time.sleep(
                    min(
                        self._restart_backoff
                        * 2 ** (self._failures[index] - 1),
                        self._restart_backoff_cap,
                    )
                )
            self._failures[index] += 1
            payload = load_spool(self._spool_dir, index)
            if payload is None:
                raise ValidationError(
                    f"shard {index} died and no spool generation is "
                    f"readable; the run cannot recover"
                )
            fresh = self._spawn(index, list(payload["fleet"]), payload["tick"])
            self._workers[index] = fresh
            self._restarts += 1
            try:
                while fresh.tick < target_tick:
                    next_tick = fresh.tick + 1
                    spool = (
                        self._spool_due(next_tick)
                        or next_tick == target_tick
                    )
                    self._pipe_call(fresh, "step", {"spool": spool})
                    fresh.tick = next_tick
            except _WorkerGone:
                self._kill_worker(fresh)
                continue
            self._failures[index] = 0
            return fresh

    # ------------------------------------------------------------------
    # fleet operations
    # ------------------------------------------------------------------
    def step_tick(self) -> None:
        """Advance every shard one tick, concurrently.

        The step command fans out to all workers before any reply is
        awaited, so shards overlap their serial per-device RNG fan-in
        — the throughput the service exists for.  Workers found dead
        or hung at either phase are recovered (restart-from-spool with
        deterministic replay, backoff, quarantine as a last resort);
        quarantined shards are excluded.
        """
        self._require_started()
        target = self._tick + 1
        spool = self._spool_due(target)
        failed: list[int] = []
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.conn.send(("step", {"spool": spool}))
            except OSError:
                self._kill_worker(handle)
                failed.append(handle.index)
        for handle in self._workers:
            if handle is None or handle.index in failed:
                continue
            try:
                status, result = self._recv(handle)
            except _WorkerGone:
                self._kill_worker(handle)
                failed.append(handle.index)
                continue
            if status == "error":
                raise ValidationError(
                    f"shard {handle.index} failed to step: {result}"
                )
            handle.tick = target
            self._failures[handle.index] = 0
        for index in failed:
            self._recover(index, target)
        self._tick = target

    def run(self, n_ticks: int) -> None:
        """Step ``n_ticks`` ticks back to back."""
        n_ticks = int(n_ticks)
        if n_ticks < 0:
            raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
        for _ in range(n_ticks):
            self.step_tick()

    def register_devices(self, devices) -> list[str]:
        """Adopt already-built devices into the running fleet.

        Mirrors a single-process fleet performing the same adoptions:
        global order extends in argument order, the version counter
        advances once per device, and the partitioner deals each
        device exactly where a longer initial fleet would have.
        """
        self._require_started()
        devices = list(devices)
        seen: set[str] = set()
        for device in devices:
            if device.device_id in self._owner or device.device_id in seen:
                raise ValidationError(
                    f"duplicate device id {device.device_id!r}"
                )
            seen.add(device.device_id)
            self._check_distributable(device)
        per_shard: dict[int, list[Device]] = {}
        for device in devices:
            shard = self._partitioner.assign(device)
            self._register_canonical(device)
            self._order.append(device.device_id)
            self._owner[device.device_id] = shard
            per_shard.setdefault(shard, []).append(device)
        for shard in sorted(per_shard):
            self._worker_or_raise(shard)
        for shard in sorted(per_shard):
            self._call(shard, "add_devices", per_shard[shard])
        self._version += len(devices)
        return [device.device_id for device in devices]

    def remove_device(self, device_id: str) -> None:
        """Deregister one device fleet-wide."""
        self._require_started()
        device_id = str(device_id)
        shard = self._owner.get(device_id)
        if shard is None:
            raise ValidationError(f"unknown device id {device_id!r}")
        self._call(shard, "remove_device", device_id)
        del self._owner[device_id]
        del self._canonical[device_id]
        self._order.remove(device_id)
        self._version += 1

    def replace_agents(self, pairs) -> None:
        """Push new agents onto live devices (no restart)."""
        self._require_started()
        pairs = [(str(device_id), agent) for device_id, agent in pairs]
        for device_id, agent in pairs:
            if device_id not in self._owner:
                raise ValidationError(f"unknown device id {device_id!r}")
            if not isinstance(agent, PolicyAgent):
                raise ValidationError(
                    f"agent for {device_id!r} must be a PolicyAgent, "
                    f"got {type(agent).__name__}"
                )
        per_shard: dict[int, list[tuple]] = {}
        for device_id, agent in pairs:
            entry = self._canonical[device_id]
            entry.agent = agent if isinstance(agent, StationaryAgent) else None
            per_shard.setdefault(self._owner[device_id], []).append(
                (device_id, agent)
            )
        for shard in sorted(per_shard):
            self._worker_or_raise(shard)
        for shard in sorted(per_shard):
            self._call(shard, "replace_agents", per_shard[shard])
        self._version += len(pairs)

    def collect_records(self) -> list[dict]:
        """Every device's telemetry record, in global registration order.

        Quarantined shards contribute the records of their *parked*
        (last-spooled) devices — stale but present, so fleet telemetry
        keeps its full device census while degraded.
        """
        self._require_started()
        by_id: dict[str, dict] = {}
        for index in range(self._n_shards):
            if self._workers[index] is not None:
                try:
                    for record in self._call(index, "records", None):
                        by_id[record["id"]] = record
                    continue
                except ValidationError:
                    # Quarantined mid-collection: fall through to the
                    # parked state like any other quarantined shard.
                    if self._workers[index] is not None:
                        raise
            for device in self._parked[index]["devices"].values():
                by_id[device.device_id] = device_record(device)
        return [by_id[device_id] for device_id in self._order]

    def gather_fleet(self) -> Fleet:
        """Reassemble the full fleet in-process, canonicalized.

        Devices come back in global registration order with their
        registration-time shared objects re-attached (see the module
        docstring), and the fleet's version counter set to the
        mirrored single-process value — so pickling the result is
        byte-identical to pickling the uninterrupted fleet.
        """
        self._require_started()
        by_id: dict[str, Device] = {}
        for index in range(self._n_shards):
            if self._workers[index] is not None:
                try:
                    for device in self._call(index, "gather", None):
                        by_id[device.device_id] = device
                    continue
                except ValidationError:
                    if self._workers[index] is not None:
                        raise
            for device in self._parked[index]["devices"].values():
                by_id[device.device_id] = device
        fleet = Fleet()
        seen: set = set()
        for device_id in self._order:
            device = by_id[device_id]
            entry = self._canonical[device_id]
            device.system = entry.system
            device.costs = entry.costs
            # The metric-name tuple is rebuilt per device at
            # construction from the (shared) costs strings; rebuild it
            # the same way so the strings memoize identically.
            device.metric_names = tuple(entry.costs.metric_names)
            if entry.agent is not None:
                device.agent = entry.agent
            if entry.trace_counts is not None and isinstance(
                device.stream, TraceStream
            ):
                device.stream.rebind_counts(entry.trace_counts)
            _normalize_dtypes(device, seen)
            fleet.adopt_device(device)
        fleet.version = self._version
        return fleet

    def save_checkpoint(
        self,
        path,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
    ) -> None:
        """Write a gathered-fleet checkpoint.

        The payload goes through the same
        :func:`~repro.runtime.checkpoint.checkpoint_payload` producer
        as :meth:`FleetController.save_checkpoint`, with the gathered
        canonical fleet — resumable by either the single-process
        controller or a daemon with any shard count.
        """
        fleet = self.gather_fleet()
        write_checkpoint(
            path,
            checkpoint_payload(
                fleet,
                self._tick,
                self._slices_per_tick,
                self._backend,
                self._chunk_slices,
                telemetry_every,
                telemetry_per_device,
                uniform_source=self._uniform_source,
            ),
        )

    def as_controller(self, **kwargs) -> FleetController:
        """A single-process controller over the gathered fleet.

        Mostly a testing aid: proves the gathered state is exactly
        what the single-process path would hold.
        """
        return FleetController(
            self.gather_fleet(),
            slices_per_tick=self._slices_per_tick,
            backend=self._backend,
            chunk_slices=self._chunk_slices,
            uniform_source=self._uniform_source,
            initial_tick=self._tick,
            **kwargs,
        )


#: Idempotent-request results remembered (per daemon, newest-first).
_REPLAY_CACHE_SIZE = 256


class _ClientChannel:
    """A :class:`FrameChannel` that survives the client vanishing.

    Sends to a dead client are swallowed (and remembered in
    :attr:`dead`) instead of raised, so a request already dispatched
    — a multi-tick ``step``, most importantly — runs to completion
    and its effects (supervisor ticks, sink telemetry, the replay
    cache) land exactly as if the client had stayed.  The client's
    retry then finds the cached result instead of double-applying.
    """

    def __init__(self, channel: FrameChannel):
        self._channel = channel
        self.dead = False

    def send(self, frame: dict) -> None:
        if self.dead:
            return
        try:
            self._channel.send(frame)
        except (ProtocolError, OSError):
            self.dead = True

    def receive(self) -> dict | None:
        if self.dead:
            return None
        return self._channel.receive()


class FleetDaemon:
    """``AF_UNIX`` accept loop serving the fleet protocol.

    One client at a time, requests served in order — the determinism
    contract leaves no room for concurrent mutation anyway, so the
    serving layer stays trivially correct.  Telemetry emitted during
    ``step`` requests goes to the daemon's own sink (if any) *and* is
    streamed to the requesting client as ``telemetry`` events.

    **Client-failure semantics.**  A client that vanishes mid-request
    never corrupts fleet state: the in-flight request runs to
    completion (a ``step`` finishes its ticks and its telemetry
    reaches the sink), the result is stored in an idempotent replay
    cache keyed by the client-sent ``request_key``, and the daemon
    accepts the next connection.  A reconnecting client retrying the
    same ``request_key`` receives the cached result instead of
    re-executing — so a step is never double-applied no matter how
    many times the socket dies.

    Note the classic ``AF_UNIX`` constraint: socket paths are limited
    to ~100 bytes — keep them short (``/tmp/...``).
    """

    def __init__(
        self,
        socket_path,
        supervisor: ShardSupervisor,
        telemetry=None,
        telemetry_every: int = 1,
        telemetry_per_device: bool = False,
        policy_cache: PolicyCache | None = None,
        next_group_index: int = 0,
    ):
        telemetry_every = int(telemetry_every)
        if telemetry_every <= 0:
            raise ValidationError(
                f"telemetry_every must be > 0, got {telemetry_every}"
            )
        self._socket_path = Path(socket_path)
        self._supervisor = supervisor
        self._telemetry = telemetry
        self._telemetry_every = telemetry_every
        self._telemetry_per_device = bool(telemetry_per_device)
        self._cache = policy_cache or PolicyCache()
        self._next_group_index = int(next_group_index)
        self._replay: OrderedDict[str, object] = OrderedDict()
        self._running = False

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Bind, accept and serve until a ``shutdown`` request.

        Owns cleanup: the socket file is unlinked, the telemetry sink
        closed and the supervisor stopped on the way out, whatever
        path led there.
        """
        if self._socket_path.exists():
            raise ValidationError(
                f"socket path {self._socket_path} already exists; is "
                f"another daemon running? (remove the stale file if not)"
            )
        if not self._supervisor.started:
            self._supervisor.start(Fleet())
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.bind(str(self._socket_path))
            server.listen(1)
            self._running = True
            while self._running:
                client, _ = server.accept()
                channel = FrameChannel(client, role="server")
                try:
                    self._serve_client(_ClientChannel(channel))
                except (ProtocolError, OSError):
                    # A misbehaving or vanished client never takes the
                    # fleet down; drop it and accept the next one.
                    pass
                finally:
                    channel.close()
        finally:
            server.close()
            if self._socket_path.exists():
                self._socket_path.unlink()
            # Workers first: a telemetry sink that fails to close must
            # never leave worker processes stranded.
            try:
                self._supervisor.stop()
            finally:
                if self._telemetry is not None:
                    self._telemetry.close()

    def _hello(self) -> dict:
        supervisor = self._supervisor
        return hello_data(
            os.getpid(),
            supervisor.tick,
            supervisor.n_devices,
            supervisor.n_shards,
        )

    def _cache_result(self, request_key: str | None, result) -> None:
        """Remember a successful result for idempotent retries.

        Stored *before* the response send is attempted, so a client
        whose socket died between dispatch and response still finds
        the result on retry.  Only successes are cached — errors are
        safe to re-raise and re-report.
        """
        if request_key is None:
            return
        self._replay[request_key] = result
        while len(self._replay) > _REPLAY_CACHE_SIZE:
            self._replay.popitem(last=False)

    def _serve_client(self, channel: _ClientChannel) -> None:
        channel.send(make_event("hello", self._hello()))
        frame = channel.receive()
        if frame is None:
            return
        request_type, request_id, params = validate_request(frame)
        if request_type != "hello":
            channel.send(
                make_error(request_id, "first request must be 'hello'")
            )
            return
        client_protocol = params.get("protocol")
        if client_protocol != PROTOCOL_VERSION:
            channel.send(
                make_error(
                    request_id,
                    f"protocol version mismatch: server speaks "
                    f"{PROTOCOL_VERSION}, client sent {client_protocol!r}",
                )
            )
            return
        channel.send(make_response(request_id, self._hello()))
        while self._running:
            frame = channel.receive()
            if frame is None:
                return
            request_type, request_id, params = validate_request(frame)
            request_key = params.pop("request_key", None)
            if request_type == "shutdown":
                channel.send(make_response(request_id, {"stopped": True}))
                self._running = False
                return
            if request_key is not None and request_key in self._replay:
                # Idempotent retry: the request already executed (its
                # client just never saw the response) — serve the
                # cached result, never re-apply.
                channel.send(
                    make_response(request_id, self._replay[request_key])
                )
                if channel.dead:
                    return
                continue
            try:
                result = self._dispatch(request_type, request_id, params, channel)
            except (ProtocolError, OSError):
                raise
            except Exception as exc:
                channel.send(make_error(request_id, str(exc)))
            else:
                self._cache_result(request_key, result)
                channel.send(make_response(request_id, result))
            if channel.dead:
                return

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    def _fleet_snapshot(  # repro-lint: schema=repro.runtime.telemetry:SNAPSHOT_FIELDS
        self, per_device: bool
    ) -> dict:
        """The daemon-side snapshot: reordered records, shared fold.

        Stamped with the supervisor's resolved backend and requested
        uniform source exactly like :meth:`FleetController.snapshot` —
        byte-identical output for equal fleet state.
        """
        supervisor = self._supervisor
        record = snapshot_from_records(
            supervisor.tick,
            supervisor.collect_records(),
            per_device=per_device,
        )
        record["backend"] = supervisor.resolved_backend
        record["uniform_source"] = supervisor.uniform_source
        # Only stamped while degraded: fault-free (and fully recovered)
        # snapshots stay byte-identical to single-process ones.
        quarantined = supervisor.quarantined
        if quarantined:
            record["quarantined"] = quarantined
        return record

    def _emit_telemetry(self, channel: FrameChannel, request_id: int) -> None:
        record = self._fleet_snapshot(self._telemetry_per_device)
        if self._telemetry is not None:
            self._telemetry.record(record)
        channel.send(make_event("telemetry", record, request_id))

    def _dispatch(
        self,
        request_type: str,
        request_id: int,
        params: dict,
        channel: FrameChannel,
    ):
        supervisor = self._supervisor
        if request_type == "hello":
            return self._hello()
        if request_type == "ping":
            return {"pong": True, "tick": supervisor.tick}
        if request_type == "info":
            return supervisor.info()
        if request_type == "register_group":
            group = params.get("group")
            if not isinstance(group, dict):
                raise ProtocolError(
                    "register_group needs a 'group' mapping parameter"
                )
            group_index = params.get("group_index")
            if group_index is None:
                group_index = self._next_group_index
            devices = build_group_devices(
                group,
                group_index=int(group_index),
                base_seed=int(params.get("base_seed", 0)),
                lp_backend=supervisor.lp_backend,
                cache=self._cache,
            )
            device_ids = supervisor.register_devices(devices)
            self._next_group_index = max(
                self._next_group_index, int(group_index) + 1
            )
            return {
                "device_ids": device_ids,
                "n_devices": supervisor.n_devices,
                "group_index": int(group_index),
            }
        if request_type == "remove_device":
            device_id = str(params.get("device_id", ""))
            supervisor.remove_device(device_id)
            return {
                "device_id": device_id,
                "n_devices": supervisor.n_devices,
            }
        if request_type == "update_policy":
            device_id = str(params.get("device_id", ""))
            agent_spec = params.get("agent")
            if not isinstance(agent_spec, dict):
                raise ProtocolError(
                    "update_policy needs an 'agent' mapping parameter"
                )
            system, costs = supervisor.canonical_model(device_id)
            agent = build_agent_from_spec(
                agent_spec,
                system,
                costs,
                cache=self._cache,
                lp_backend=supervisor.lp_backend,
            )
            supervisor.replace_agents([(device_id, agent)])
            return {"device_id": device_id, "agent": agent.describe()}
        if request_type == "step":
            n_ticks = int(params.get("ticks", 1))
            if n_ticks < 0:
                raise ProtocolError(f"ticks must be >= 0, got {n_ticks}")
            for _ in range(n_ticks):
                supervisor.step_tick()
                if supervisor.tick % self._telemetry_every == 0:
                    self._emit_telemetry(channel, request_id)
            return {"tick": supervisor.tick, "ticks_run": n_ticks}
        if request_type == "snapshot":
            return self._fleet_snapshot(bool(params.get("per_device", False)))
        if request_type == "checkpoint":
            path = params.get("path")
            if not path:
                raise ProtocolError("checkpoint needs a 'path' parameter")
            supervisor.save_checkpoint(
                path,
                telemetry_every=int(
                    params.get("telemetry_every", self._telemetry_every)
                ),
                telemetry_per_device=bool(
                    params.get(
                        "telemetry_per_device", self._telemetry_per_device
                    )
                ),
            )
            return {"path": str(path), "tick": supervisor.tick}
        raise ProtocolError(  # pragma: no cover - validate_request gates
            f"unhandled request type {request_type!r}"
        )
