"""Shard workers: one process, one fleet partition, full determinism.

A shard worker owns a slice of the fleet — the devices, their RNG
streams, their agents — and steps it with a private
:class:`~repro.runtime.controller.FleetController`.  Because device
randomness is per-device (``device_rng`` spawn keys) and the
controller's grouped stepping is bitwise grouping-invariant, a device
produces *exactly* the same state trajectory inside any shard as it
would in the single-process controller: sharding buys wall-clock
parallelism for the per-device uniform fan-in without touching a
single byte of the results.  The supervisor's ``uniform_source`` knob
passes through to every worker's controller unchanged — the batched
and serial uniform producers are byte-identical, so re-partitioning a
fleet or flipping the knob never changes what any device consumes.

Partitioning is content-addressed: :func:`shard_signature` reduces a
device to its batching signature (system content, costs content,
policy determinism — or the loop marker for devices the batch kernel
cannot express) and :class:`Partitioner` deals equal-signature devices
round-robin across shards.  Equal-signature devices are the ones that
batch together, so the deal keeps every shard's batches big while the
ordinal counters make assignment a pure function of registration
order — live registrations continue the sequence deterministically.

Workers talk to the supervisor over a ``multiprocessing`` pipe with
pickled ``(command, payload)`` tuples — the JSON protocol is for
clients; fleet state (Device records, agents, generators) moves
between daemon and workers in its native object form.  After every
membership change and on the supervisor's checkpoint cadence the
worker spools its partition to a per-shard checkpoint file, which is
what the supervisor replays from when a worker dies mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro import faults
from repro.faults.plan import FaultPlan
from repro.runtime.checkpoint import checkpoint_payload
from repro.runtime.controller import FLEET_CHUNK_SLICES, FleetController
from repro.runtime.fleet import Device, Fleet
from repro.runtime.policy_cache import costs_signature, system_signature
from repro.runtime.telemetry import device_record
from repro.service.spool import SpoolSlot
from repro.util.validation import ValidationError

__all__ = [
    "Partitioner",
    "ShardConfig",
    "shard_signature",
    "shard_worker_main",
    "spool_path",
]

#: Telemetry cadence no run reaches: shard controllers never emit —
#: the daemon aggregates device records itself, in global order.
_NEVER_EMIT = 2**62


def shard_signature(device: Device) -> str:
    """A device's content-addressed partitioning key.

    Vector-eligible devices use their batching ``group_key`` (system
    content, costs content, policy-determinism flag); loop-path
    devices use the model content plus a ``loop`` marker so trace- or
    heuristic-driven devices of one kind also spread evenly.
    """
    if device.vector_eligible:
        system_sig, costs_sig, deterministic = device.group_key()
        flavor = "det" if deterministic else "stoch"
    else:
        system_sig = system_signature(device.system)
        costs_sig = costs_signature(device.costs)
        flavor = "loop"
    return "|".join((system_sig, costs_sig, flavor))


class Partitioner:
    """Stateful round-robin dealer of equal-signature devices.

    Assignment is ``ordinal(signature) % n_shards`` where the ordinal
    counts devices of that signature ever assigned — a pure function
    of registration order, so re-running the same registrations always
    produces the same partition, and a later live registration slots
    in exactly where a longer initial fleet would have put it.
    """

    def __init__(self, n_shards: int):
        n_shards = int(n_shards)
        if n_shards <= 0:
            raise ValidationError(f"n_shards must be > 0, got {n_shards}")
        self._n_shards = n_shards
        self._ordinals: dict[str, int] = {}
        self._memo: dict[tuple, tuple] = {}

    @property
    def n_shards(self) -> int:
        """Number of shards devices are dealt across."""
        return self._n_shards

    def _signature(self, device: Device) -> str:
        """Memoized :func:`shard_signature`.

        Devices of one group share their model objects, so the content
        hashes behind the signature are computed once per group rather
        than once per device — at 100k devices that is the difference
        between a sub-second and a ten-second fleet deal.  The memo
        entry pins the keyed objects, so the ``id()`` keys stay valid
        for the partitioner's lifetime.
        """
        if device.vector_eligible:
            policy = device.agent.stationary_policy(device.system)
            key = (
                True,
                id(device.system),
                id(device.costs),
                id(policy),
            )
            pins: tuple = (device.system, device.costs, policy)
        else:
            key = (False, id(device.system), id(device.costs))
            pins = (device.system, device.costs)
        entry = self._memo.get(key)
        if entry is None:
            entry = (pins, shard_signature(device))
            self._memo[key] = entry
        return entry[1]

    def assign(self, device: Device) -> int:
        """Deal one device; returns its shard index."""
        signature = self._signature(device)
        ordinal = self._ordinals.get(signature, 0)
        self._ordinals[signature] = ordinal + 1
        return ordinal % self._n_shards


def spool_path(spool_dir, index: int) -> Path:
    """The legacy single-file per-shard spool path.

    Superseded by the CRC-stamped generation files of
    :mod:`repro.service.spool` (``shard-N.g0.ckpt`` / ``.g1.ckpt``);
    kept as the stable base name shards are spooled under.
    """
    return Path(spool_dir) / f"shard-{int(index)}.ckpt"


@dataclass(frozen=True)
class ShardConfig:
    """Everything a worker needs to rebuild its controller.

    ``spool_dir`` is where the worker writes its alternating
    restart-checkpoint generations (see
    :class:`~repro.service.spool.SpoolSlot`), or ``None`` when
    spooling is disabled (``checkpoint_every=0`` — worker death then
    loses the run).  ``fault_plan`` / ``fault_ledger`` carry the
    supervisor's chaos script into the worker process so injected
    faults fire in exactly one process per scripted fault regardless
    of the multiprocessing start method.
    """

    index: int
    slices_per_tick: int
    backend: str = "auto"
    chunk_slices: int | None = None
    uniform_source: str = "auto"
    spool_dir: str | None = None
    fault_plan: FaultPlan | None = None
    fault_ledger: str | None = None


class _ShardWorker:
    """The in-process side of one shard: a sub-fleet plus dispatch.

    The controller is built lazily (a shard may start — or become —
    empty) with ``initial_tick`` set to the worker's own tick counter,
    so telemetry cadence and slice accounting continue seamlessly
    across membership changes and restarts.
    """

    def __init__(self, config: ShardConfig, devices, tick: int):
        self._config = config
        self._fleet = Fleet()
        for device in devices:
            self._fleet.adopt_device(device)
        self._tick = int(tick)
        self._controller: FleetController | None = None
        self._spool = (
            SpoolSlot(config.spool_dir, config.index)
            if config.spool_dir is not None
            else None
        )
        #: Spool writes lost to I/O failure (degraded durability: the
        #: previous generation still restores, one tick older).
        self._spool_failures = 0

    # ------------------------------------------------------------------
    # controller lifecycle
    # ------------------------------------------------------------------
    def _controller_for_step(self) -> FleetController | None:
        if len(self._fleet) == 0:
            self._controller = None
            return None
        if self._controller is None:
            self._controller = FleetController(
                self._fleet,
                slices_per_tick=self._config.slices_per_tick,
                backend=self._config.backend,
                telemetry_every=_NEVER_EMIT,
                chunk_slices=self._config.chunk_slices,
                uniform_source=self._config.uniform_source,
                initial_tick=self._tick,
            )
        return self._controller

    def _write_spool(self) -> None:
        if self._spool is None:
            return
        chunk = self._config.chunk_slices
        payload = checkpoint_payload(
            self._fleet,
            self._tick,
            self._config.slices_per_tick,
            self._config.backend,
            FLEET_CHUNK_SLICES if chunk is None else chunk,
            1,
            False,
            uniform_source=self._config.uniform_source,
        )
        try:
            path = self._spool.write(payload)
        except OSError:
            # A spool generation lost to an I/O failure is degraded
            # durability, not a dead shard: the previous generation
            # still restores (one tick of extra replay).
            self._spool_failures += 1
            return
        # Post-write corruption hook: chaos plans truncate/bit-flip
        # the landed generation here to prove the CRC fall-back.
        faults.SPOOL_WRITTEN.fire(
            shard=self._config.index, tick=self._tick, path=str(path)
        )

    # ------------------------------------------------------------------
    # command handlers
    # ------------------------------------------------------------------
    def _handle_step(self, payload: dict):
        controller = self._controller_for_step()
        if controller is not None:
            controller.step_tick()
            self._tick = controller.tick
        else:
            self._tick += 1
        if payload.get("spool"):
            self._write_spool()
        return self._tick

    def _handle_records(self, payload):
        return [device_record(device) for device in self._fleet]

    def _handle_gather(self, payload):
        return list(self._fleet)

    def _handle_add_devices(self, payload):
        for device in payload:
            self._fleet.adopt_device(device)
        self._write_spool()
        return len(self._fleet)

    def _handle_remove_device(self, payload):
        self._fleet.remove_device(payload)
        self._write_spool()
        return len(self._fleet)

    def _handle_replace_agents(self, payload):
        for device_id, agent in payload:
            self._fleet.replace_agent(device_id, agent)
        self._write_spool()
        return len(payload)

    def _handle_ping(self, payload):
        return {
            "tick": self._tick,
            "n_devices": len(self._fleet),
            "spool_failures": self._spool_failures,
        }

    def dispatch(self, command: str, payload):
        """Route one pipe command to its handler."""
        handler = getattr(self, f"_handle_{command}", None)
        if handler is None:
            raise ValidationError(f"unknown shard command {command!r}")
        return handler(payload)

    def serve(self, conn) -> None:
        """Blocking command loop over the supervisor pipe.

        Every command gets exactly one ``("ok", result)`` or
        ``("error", text)`` reply; handler failures are reported, not
        fatal, so one bad request cannot kill a shard.
        """
        self._write_spool()
        while True:
            try:
                command, payload = conn.recv()
            except (EOFError, OSError):
                break
            if command == "stop":
                conn.send(("ok", None))
                break
            # The chaos hook: scripted kills SIGKILL here, hangs sleep
            # past the supervisor deadline, injected errors propagate
            # and crash the worker (a clean worker-internal-fault
            # death, distinct from SIGKILL) — all before the command
            # touches fleet state, so a restarted worker replays it
            # deterministically.
            faults.WORKER_COMMAND.fire(
                shard=self._config.index,
                command=command,
                tick=self._tick + 1 if command == "step" else self._tick,
            )
            try:
                result = self.dispatch(command, payload)
            except Exception as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", result))
        conn.close()


def shard_worker_main(conn, config: ShardConfig, devices, tick: int) -> None:
    """Process entry point: adopt the partition, serve the pipe.

    Fault injection is (re)installed from the config — not inherited
    ambiently — so the worker's injector state is the same whether the
    process was forked or spawned.
    """
    if config.fault_plan is not None and config.fault_ledger is not None:
        faults.install(config.fault_plan, config.fault_ledger)
    else:
        faults.uninstall()
    _ShardWorker(config, devices, tick).serve(conn)
