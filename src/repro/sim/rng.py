"""Random-number management and categorical sampling for simulations.

All stochastic code in :mod:`repro` takes an explicit
:class:`numpy.random.Generator`; the ``make_rng``/``spawn_rngs`` helpers
centralize construction so experiments are reproducible end to end from
a single seed.

The module also defines the :class:`UniformSource` protocol — the
first-class form of the ``random(shape)`` contract the batch kernels
consume.  A source produces ``(chunk, kinds, lanes)`` uniform blocks;
*which stream* each lane draws from is the source's business:

* :class:`GeneratorSource` — every lane shares one generator (the
  single-stream semantics of passing a bare ``Generator``);
* :class:`FanInSource` — lane ``l`` draws from its own device
  generator, serially (the reference fleet fan-in, with shape
  validation and an optional process pool);
* :class:`~repro.sim.rng_batched.BatchedPCG64Source` — the vectorized
  PCG64 implementation, byte-identical to :class:`FanInSource` for
  PCG64 streams at a fraction of the per-device overhead.

A plain :class:`numpy.random.Generator` satisfies the protocol
structurally, so existing call sites keep working unchanged.

The module also owns the shared categorical-sampling semantics: a
distribution is compiled once into a normalized cumulative row
(:func:`categorical_cumsum`) and sampled with inverse-CDF lookups — one
uniform per draw, ``side="right"`` (the first index whose cumulative
mass strictly exceeds the uniform).  This is the same scheme
:meth:`numpy.random.Generator.choice` uses internally, so a scalar draw
consumes exactly one ``rng.random()`` and is stream- and
value-compatible with ``choice``.  :func:`sample_categorical` is the
loop backend's (and StationaryPolicyAgent's) sampler;
:func:`sample_categorical_batch` is the *reference* batched form whose
semantics the vector backend's fused offset-cumsum ``searchsorted``
sampling must reproduce — the equivalence suite cross-checks the two.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.util.validation import ValidationError

__all__ = [
    "FanInSource",
    "GeneratorSource",
    "UniformSource",
    "categorical_cumsum",
    "child_rngs",
    "make_rng",
    "sample_categorical",
    "sample_categorical_batch",
    "spawn_rngs",
]


@runtime_checkable
class UniformSource(Protocol):
    """Anything that can fill a ``(chunk, kinds, lanes)`` uniform block.

    The batch kernels (:func:`repro.sim.backends.vector.step_lanes` and
    the jit rendition) are generic over this protocol: they request one
    float64 block of uniforms in ``[0, 1)`` per chunk and never touch
    generator state directly.  Implementations define the stream
    topology — one shared stream, one private stream per lane, or a
    vectorized stack of per-lane streams — and own the consistency of
    any backing :class:`numpy.random.Generator` objects.

    ``random(shape)`` must return a float64 array of exactly ``shape``,
    consuming each backing stream in ``(slice, kind)`` order for its
    lane(s).  Implementations that carry per-lane generators should
    raise :class:`~repro.util.validation.ValidationError` on a request
    whose dimensions disagree with their declared geometry instead of
    silently desynchronizing streams.
    """

    def random(self, shape: tuple) -> np.ndarray:
        """Return a float64 block of ``shape`` uniforms in ``[0, 1)``."""
        ...  # pragma: no cover - protocol stub


def _validate_block_shape(
    shape, n_lanes: int, n_kinds: int | None, max_chunk: int | None, label: str
) -> tuple[int, int, int]:
    """Shared request validation for per-lane uniform sources.

    A mismatched kernel request against a per-lane source is never
    recoverable — the wrong lanes would consume the wrong draws and
    every stream after the call would be silently desynchronized — so
    the contract is to fail loudly *before* drawing anything.
    """
    shape = tuple(int(v) for v in shape)
    if len(shape) != 3:
        raise ValidationError(
            f"{label} serves (chunk, kinds, lanes) blocks; "
            f"got request shape {shape}"
        )
    chunk, kinds, lanes = shape
    if lanes != n_lanes:
        raise ValidationError(
            f"{label} built for {n_lanes} lanes, kernel asked for {lanes}"
        )
    if chunk <= 0:
        raise ValidationError(f"{label}: chunk must be > 0, got {chunk}")
    if kinds <= 0:
        raise ValidationError(f"{label}: kinds must be > 0, got {kinds}")
    if n_kinds is not None and kinds != n_kinds:
        raise ValidationError(
            f"{label} declared {n_kinds} uniform kinds per slice, kernel "
            f"asked for {kinds} — a mismatched request would "
            f"desynchronize every lane's stream"
        )
    if max_chunk is not None and chunk > max_chunk:
        raise ValidationError(
            f"{label} declared a chunk cap of {max_chunk} slices, kernel "
            f"asked for {chunk}"
        )
    return chunk, kinds, lanes


class GeneratorSource:
    """A :class:`UniformSource` over one shared generator.

    Wraps the classic single-stream semantics (every lane draws from
    the same ``Generator``) in the protocol's explicit form.  The
    wrapped generator stays authoritative: draws go straight through,
    so interleaving direct generator use with source use is safe.
    """

    def __init__(self, generator: np.random.Generator):
        self._generator = generator

    @property
    def generator(self) -> np.random.Generator:
        """The wrapped generator (authoritative stream state)."""
        return self._generator

    def random(self, shape) -> np.ndarray:
        """Draw ``shape`` uniforms from the shared stream."""
        return self._generator.random(shape)


def _fan_in_band(generators, chunk: int, n_kinds: int):
    """Pool-worker task: serial fan-in over one band of generators.

    Receives pickled generator copies, draws each lane's block, and
    returns the block *plus the advanced generators* so the parent can
    restore stream state — the band round-trips bitwise because
    generator pickling is exact.
    """
    out = np.empty((chunk, n_kinds, len(generators)))
    for lane, generator in enumerate(generators):
        out[:, :, lane] = generator.random((chunk, n_kinds))
    return out, generators


class FanInSource:
    """Per-lane fan-in: lane ``l`` draws from its own device generator.

    The reference :class:`UniformSource` for heterogeneous streams —
    it works with *any* :class:`numpy.random.Generator` (PCG64 or
    foreign bit generators) by looping lanes serially, which is also
    what makes it the fleet's fallback when the vectorized
    :class:`~repro.sim.rng_batched.BatchedPCG64Source` is not
    applicable.  Draws continue each device's private stream in
    ``(slice, kind)`` order — exactly the order a single-device batch
    would consume.

    Parameters
    ----------
    generators:
        One generator per lane, lane order.
    n_kinds:
        Declared uniform kinds per slice (3 for fully deterministic
        policy batches, 4 otherwise).  When given, a request with a
        different kind count raises
        :class:`~repro.util.validation.ValidationError` instead of
        silently feeding every stream the wrong draws.
    max_chunk:
        Declared chunk cap (the controller's pinned ``chunk_slices``);
        oversized requests are rejected the same way.
    processes:
        Fan the serial loop out across a process pool in bands (device
        streams are independent, so banding is bitwise neutral).  Only
        worth it for very large lane counts on multi-core machines —
        each call ships generator state both ways.  ``None`` (default)
        keeps the in-process loop.
    """

    def __init__(
        self,
        generators,
        n_kinds: int | None = None,
        max_chunk: int | None = None,
        processes: int | None = None,
    ):
        self._generators = list(generators)
        self._n_kinds = None if n_kinds is None else int(n_kinds)
        self._max_chunk = None if max_chunk is None else int(max_chunk)
        if processes is not None:
            processes = int(processes)
            if processes <= 0:
                raise ValidationError(
                    f"processes must be > 0, got {processes}"
                )
        self._processes = processes
        self._executor = None

    @property
    def generators(self) -> list:
        """The per-lane generators (authoritative stream state)."""
        return self._generators

    @property
    def n_lanes(self) -> int:
        """Number of lanes served."""
        return len(self._generators)

    def _pool(self):
        if self._executor is None:
            import concurrent.futures
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._processes, mp_context=context
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "FanInSource":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def random(self, shape) -> np.ndarray:
        """Fill a ``(chunk, kinds, lanes)`` block, one lane per stream."""
        chunk, n_kinds, n_lanes = _validate_block_shape(
            shape, len(self._generators), self._n_kinds, self._max_chunk,
            type(self).__name__,
        )
        if self._processes is not None and n_lanes > self._processes:
            return self._random_pooled(chunk, n_kinds, n_lanes)
        out = np.empty(shape)
        for lane, generator in enumerate(self._generators):
            out[:, :, lane] = generator.random((chunk, n_kinds))
        return out

    def _random_pooled(
        self, chunk: int, n_kinds: int, n_lanes: int
    ) -> np.ndarray:
        """Banded pool fan-in; restores advanced generator state."""
        band = -(-n_lanes // self._processes)  # ceil division
        bounds = [
            (lo, min(lo + band, n_lanes)) for lo in range(0, n_lanes, band)
        ]
        futures = [
            self._pool().submit(
                _fan_in_band, self._generators[lo:hi], chunk, n_kinds
            )
            for lo, hi in bounds
        ]
        out = np.empty((chunk, n_kinds, n_lanes))
        for (lo, hi), future in zip(bounds, futures):
            block, advanced = future.result()
            out[:, :, lo:hi] = block
            # The parent's generator objects stay canonical: copy the
            # advanced bit-generator state back instead of swapping in
            # the pickled copies (devices hold references to ours).
            for lane, worker_generator in zip(range(lo, hi), advanced):
                self._generators[lane].bit_generator.state = (
                    worker_generator.bit_generator.state
                )
        return out


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a PCG64 generator from ``seed`` (fresh entropy if None)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so parallel
    replications of an experiment never share streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(int(count))]


def child_rngs(
    rng: np.random.Generator | int | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``rng``.

    Accepts either a seed (``int`` or ``None``, forwarded to
    :func:`spawn_rngs`) or an existing generator, whose stream is used to
    draw one child seed per generator.  Batch simulation helpers use
    this so each agent/replication gets its own stream regardless of how
    the caller specified randomness.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if rng is None or isinstance(rng, (int, np.integer)):
        return spawn_rngs(None if rng is None else int(rng), count)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=int(count))
    return [np.random.default_rng(int(seed)) for seed in seeds]


def categorical_cumsum(probabilities: np.ndarray, axis: int = -1) -> np.ndarray:
    """Compile distributions into normalized cumulative rows.

    The cumulative sum along ``axis`` is divided by its final entry so
    the last value is exactly 1.0 — without this, floating-point dust in
    the row sum could make the final state unreachable (or reachable
    with the wrong mass) at the very top of the unit interval.
    """
    arr = np.asarray(probabilities, dtype=float)
    cum = np.cumsum(arr, axis=axis)
    last = np.take(cum, [-1], axis=axis)
    if not np.all(last > 0):
        raise ValueError("each distribution must have positive total mass")
    return cum / last


def sample_categorical(cumsum: np.ndarray, rng: np.random.Generator) -> int:
    """Draw one category index from a compiled cumulative row.

    Consumes exactly one uniform; ``side="right"`` makes zero-probability
    leading categories unreachable even for a draw of exactly 0.0.
    """
    index = int(np.searchsorted(cumsum, rng.random(), side="right"))
    if index >= cumsum.shape[-1]:  # u landed beyond the last entry
        index = cumsum.shape[-1] - 1
    return index


def sample_categorical_batch(
    cumsum_rows: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Vectorized inverse-CDF draw: one row and one uniform per lane.

    This is the reference implementation of the batched ``side="right"``
    semantics; the vector backend's hot loop samples equivalently (but
    faster) via offset cumsums and a single ``searchsorted`` — see
    :mod:`repro.sim.backends.vector`.

    Parameters
    ----------
    cumsum_rows:
        ``(n_lanes, n_categories)`` compiled cumulative rows.
    uniforms:
        ``(n_lanes,)`` uniforms in ``[0, 1)``.

    Returns
    -------
    numpy.ndarray
        ``(n_lanes,)`` int64 category indices with the same
        ``side="right"`` semantics as :func:`sample_categorical`.
    """
    # Counting entries <= u is exactly searchsorted(..., side="right")
    # applied row-wise; category counts here are small (system
    # components), so the dense comparison beats per-row searchsorted.
    indices = np.sum(cumsum_rows <= uniforms[:, None], axis=1, dtype=np.int64)
    np.clip(indices, 0, cumsum_rows.shape[1] - 1, out=indices)
    return indices
