"""Random-number-generator management for reproducible simulations.

All stochastic code in :mod:`repro` takes an explicit
:class:`numpy.random.Generator`; these helpers centralize construction
so experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a PCG64 generator from ``seed`` (fresh entropy if None)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so parallel
    replications of an experiment never share streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(int(count))]
