"""Random-number management and categorical sampling for simulations.

All stochastic code in :mod:`repro` takes an explicit
:class:`numpy.random.Generator`; the ``make_rng``/``spawn_rngs`` helpers
centralize construction so experiments are reproducible end to end from
a single seed.

The module also owns the shared categorical-sampling semantics: a
distribution is compiled once into a normalized cumulative row
(:func:`categorical_cumsum`) and sampled with inverse-CDF lookups — one
uniform per draw, ``side="right"`` (the first index whose cumulative
mass strictly exceeds the uniform).  This is the same scheme
:meth:`numpy.random.Generator.choice` uses internally, so a scalar draw
consumes exactly one ``rng.random()`` and is stream- and
value-compatible with ``choice``.  :func:`sample_categorical` is the
loop backend's (and StationaryPolicyAgent's) sampler;
:func:`sample_categorical_batch` is the *reference* batched form whose
semantics the vector backend's fused offset-cumsum ``searchsorted``
sampling must reproduce — the equivalence suite cross-checks the two.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a PCG64 generator from ``seed`` (fresh entropy if None)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so parallel
    replications of an experiment never share streams.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(int(count))]


def child_rngs(
    rng: np.random.Generator | int | None, count: int
) -> list[np.random.Generator]:
    """``count`` independent generators derived from ``rng``.

    Accepts either a seed (``int`` or ``None``, forwarded to
    :func:`spawn_rngs`) or an existing generator, whose stream is used to
    draw one child seed per generator.  Batch simulation helpers use
    this so each agent/replication gets its own stream regardless of how
    the caller specified randomness.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if rng is None or isinstance(rng, (int, np.integer)):
        return spawn_rngs(None if rng is None else int(rng), count)
    seeds = rng.integers(0, np.iinfo(np.int64).max, size=int(count))
    return [np.random.default_rng(int(seed)) for seed in seeds]


def categorical_cumsum(probabilities: np.ndarray, axis: int = -1) -> np.ndarray:
    """Compile distributions into normalized cumulative rows.

    The cumulative sum along ``axis`` is divided by its final entry so
    the last value is exactly 1.0 — without this, floating-point dust in
    the row sum could make the final state unreachable (or reachable
    with the wrong mass) at the very top of the unit interval.
    """
    arr = np.asarray(probabilities, dtype=float)
    cum = np.cumsum(arr, axis=axis)
    last = np.take(cum, [-1], axis=axis)
    if not np.all(last > 0):
        raise ValueError("each distribution must have positive total mass")
    return cum / last


def sample_categorical(cumsum: np.ndarray, rng: np.random.Generator) -> int:
    """Draw one category index from a compiled cumulative row.

    Consumes exactly one uniform; ``side="right"`` makes zero-probability
    leading categories unreachable even for a draw of exactly 0.0.
    """
    index = int(np.searchsorted(cumsum, rng.random(), side="right"))
    if index >= cumsum.shape[-1]:  # u landed beyond the last entry
        index = cumsum.shape[-1] - 1
    return index


def sample_categorical_batch(
    cumsum_rows: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Vectorized inverse-CDF draw: one row and one uniform per lane.

    This is the reference implementation of the batched ``side="right"``
    semantics; the vector backend's hot loop samples equivalently (but
    faster) via offset cumsums and a single ``searchsorted`` — see
    :mod:`repro.sim.backends.vector`.

    Parameters
    ----------
    cumsum_rows:
        ``(n_lanes, n_categories)`` compiled cumulative rows.
    uniforms:
        ``(n_lanes,)`` uniforms in ``[0, 1)``.

    Returns
    -------
    numpy.ndarray
        ``(n_lanes,)`` int64 category indices with the same
        ``side="right"`` semantics as :func:`sample_categorical`.
    """
    # Counting entries <= u is exactly searchsorted(..., side="right")
    # applied row-wise; category counts here are small (system
    # components), so the dense comparison beats per-row searchsorted.
    indices = np.sum(cumsum_rows <= uniforms[:, None], axis=1, dtype=np.int64)
    np.clip(indices, 0, cumsum_rows.shape[1] - 1, out=indices)
    return indices
