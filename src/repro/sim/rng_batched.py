"""Vectorized PCG64: advance thousands of device streams as array ops.

The fleet's determinism contract gives every device a private
:class:`numpy.random.PCG64` stream, and the batch kernels consume those
streams through a ``(chunk, kinds, lanes)`` uniform block.  The
reference producer (:class:`~repro.sim.rng.FanInSource`) loops the
lanes serially — one ``Generator.random`` call per device per chunk —
which at 100k devices turns randomness plumbing into the tick's
dominant cost.  This module replaces the loop with the *same math in
stacked form*:

* Per-lane state lives in one ``(n_lanes, 4)`` uint64 array holding
  ``[state_hi, state_lo, inc_hi, inc_lo]`` — the 128-bit LCG state and
  increment of each device's PCG64, imported from and exported to the
  exact ``bit_generator.state`` dicts numpy uses for pickling,
  checkpointing and shard transport.
* One draw advances every lane at once: the 128-bit multiply-add
  ``state = state * MULT + inc (mod 2**128)`` is computed with 32-bit
  limb products in uint64 arrays, then the XSL-RR output function
  ``rotr64(hi ^ lo, hi >> 58)`` and the ``Generator.random`` double
  conversion ``(next64 >> 11) * 2**-53`` are applied row by row, so the
  working set stays cache-resident at any chunk length.
* The ``(draws, lanes)`` output grid *is* the ``(chunk, kinds, lanes)``
  block in row-major order — lane ``l``'s draws appear in ``(slice,
  kind)`` order, exactly the order the serial fan-in produces — so the
  final reshape is zero-copy and there is no per-lane scatter at all.

The result is **byte-identical per lane** to each device's private
stream: the same doubles the device's own ``Generator.random`` would
return, and the same final ``bit_generator.state`` afterwards.  The
equivalence is self-checked at import of the first source
(:func:`batched_available`): the PCG64 multiplier is derived from
observed state transitions rather than hard-coded, so a numpy build
with a different PCG variant degrades to ``available() == False`` (and
the fleet falls back to the serial fan-in) instead of corrupting
streams.

Generators stay canonical through *advance-based writeback*:
:class:`BatchedPCG64Source` counts the draws it has served and
:meth:`~BatchedPCG64Source.sync` jumps every backing generator forward
with ``PCG64.advance`` — a C-level ``O(log n)`` state jump that lands
on exactly the state ``n`` serial draws would reach.  The fleet calls
``sync`` after every block step, so checkpoint/resume, shard
adopt/gather and the per-device reference loop observe the same
generator objects, in the same states, as a serial run would leave.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import ValidationError

__all__ = [
    "BatchedDeviceStreams",
    "BatchedPCG64Source",
    "batched_available",
    "batched_unavailable_reason",
    "derive_pcg64_multiplier",
    "supports_generator",
]

#: Lanes per pool band (and per internal slab): mirrors the fleet's
#: lane-block size so one band's draw buffer stays bounded, and gives
#: the process pool its unit of parallelism.
LANE_BAND = 16_384

_M32 = np.uint64(0xFFFFFFFF)
_S32 = np.uint64(32)
_S11 = np.uint64(11)
_S58 = np.uint64(58)
_S63 = np.uint64(63)
_U64 = np.uint64(64)
_MOD128 = 1 << 128
_MASK64 = (1 << 64) - 1
#: ``Generator.random`` double conversion: ``(next64 >> 11) * 2**-53``.
_DOUBLE_SCALE = 1.0 / 9007199254740992.0


def derive_pcg64_multiplier() -> int | None:
    """Solve this numpy build's PCG64 LCG multiplier from observed state.

    PCG64 advances ``state' = state * m + inc (mod 2**128)`` with a
    build-dependent constant ``m`` (upstream numpy has shipped more
    than one).  Two observed transitions give
    ``m = (s2 - s1) / (s1 - s0) (mod 2**128)``; the divisor is odd
    (hence invertible) whenever the two raw outputs differ in parity of
    the step, so a handful of seeds always yields a solution.  The
    candidate is verified against a third transition and an
    independently seeded stream before being trusted; ``None`` means no
    consistent multiplier exists and the vectorized path must stay off.
    """
    for seed in range(8):
        bit_generator = np.random.PCG64(seed)
        inc = bit_generator.state["state"]["inc"]
        s0 = bit_generator.state["state"]["state"]
        bit_generator.random_raw(1)
        s1 = bit_generator.state["state"]["state"]
        bit_generator.random_raw(1)
        s2 = bit_generator.state["state"]["state"]
        step = (s1 - s0) % _MOD128
        if step % 2 == 0:
            continue
        mult = ((s2 - s1) * pow(step, -1, _MOD128)) % _MOD128
        if (s1 * mult + inc) % _MOD128 != s2:
            continue
        # Cross-check on a third transition and a different stream.
        bit_generator.random_raw(1)
        s3 = bit_generator.state["state"]["state"]
        if (s2 * mult + inc) % _MOD128 != s3:
            return None
        other = np.random.PCG64(seed + 101)
        o_inc = other.state["state"]["inc"]
        o0 = other.state["state"]["state"]
        other.random_raw(1)
        if (o0 * mult + o_inc) % _MOD128 != other.state["state"]["state"]:
            return None
        return mult
    return None


#: Lazily derived multiplier and availability verdict (module cache).
_DERIVED: dict | None = None


def _derived() -> dict:
    global _DERIVED
    if _DERIVED is not None:
        return _DERIVED
    mult = derive_pcg64_multiplier()
    if mult is None:
        _DERIVED = {
            "mult": None,
            "reason": (
                "could not derive a consistent PCG64 LCG multiplier from "
                "observed state transitions (unsupported numpy build)"
            ),
        }
        return _DERIVED
    # End-to-end self-check: a stacked draw must be byte-identical to
    # the serial per-generator draws *and* land on the same final
    # bit-generator states.
    reference = [np.random.default_rng(20_000 + i) for i in range(3)]
    stacked = BatchedDeviceStreams.from_generators(reference, _mult=mult)
    block = stacked.uniform_block(5, 4)
    expected = np.empty_like(block)
    for lane, generator in enumerate(reference):
        expected[:, :, lane] = generator.random((5, 4))
    states_match = all(
        stacked.export_state(lane)
        == reference[lane].bit_generator.state["state"]
        for lane in range(3)
    )
    if not (block == expected).all() or not states_match:
        _DERIVED = {
            "mult": None,
            "reason": (
                "vectorized PCG64 self-check diverged from "
                "Generator.random on this numpy build"
            ),
        }
    else:
        _DERIVED = {"mult": mult, "reason": None}
    return _DERIVED


def batched_available() -> bool:
    """Can the vectorized PCG64 path run on this numpy build?

    True only after the derived multiplier passes the byte-identity
    self-check against ``Generator.random``.  The verdict is cached;
    a False here makes ``uniform_source="auto"`` fall back to the
    serial fan-in and ``uniform_source="batched"`` fail loudly.
    """
    return _derived()["mult"] is not None


def batched_unavailable_reason() -> str | None:
    """Why :func:`batched_available` is False (None when available)."""
    return _derived()["reason"]


def supports_generator(generator) -> bool:
    """Is ``generator`` a stream the vectorized path can carry?

    Requires a PCG64 bit generator with no buffered half-draw
    (``has_uint32 == 0`` — the fleet only ever draws doubles, but a
    user-injected generator could arrive mid-``integers`` call, and
    the batched path must not discard its buffered word).
    """
    try:
        state = generator.bit_generator.state
    except AttributeError:
        return False
    return (
        state.get("bit_generator") == "PCG64"
        and not state.get("has_uint32", 0)
    )


def _split_mult(mult: int) -> tuple:
    """The multiplier's uint64 scalar limbs for the stacked kernel."""
    return (
        np.uint64(mult >> 64),
        np.uint64(mult & _MASK64),
        np.uint64((mult >> 32) & 0xFFFFFFFF),
        np.uint64(mult & 0xFFFFFFFF),
    )


def _draw_block(state: np.ndarray, chunk: int, n_kinds: int, mult: int):
    """Advance every lane ``chunk * n_kinds`` steps, collecting outputs.

    ``state`` is the ``(n_lanes, 4)`` uint64 stack (mutated in place to
    the post-draw states).  Returns the ``(chunk, n_kinds, n_lanes)``
    float64 block.  All arithmetic runs on contiguous per-column
    copies; each draw is ~35 ufunc passes over ``n_lanes``-sized
    arrays, and the XSL-RR output + double conversion happen row by row
    so the working set never leaves cache.
    """
    n_lanes = state.shape[0]
    total = chunk * n_kinds
    m_hi, m_lo, m_lo_hi, m_lo_lo = _split_mult(mult)
    s_hi = np.ascontiguousarray(state[:, 0])
    s_lo = np.ascontiguousarray(state[:, 1])
    inc_hi = np.ascontiguousarray(state[:, 2])
    inc_lo = np.ascontiguousarray(state[:, 3])
    a_lo = np.empty(n_lanes, dtype=np.uint64)
    a_hi = np.empty(n_lanes, dtype=np.uint64)
    ll = np.empty(n_lanes, dtype=np.uint64)
    lh = np.empty(n_lanes, dtype=np.uint64)
    hl = np.empty(n_lanes, dtype=np.uint64)
    t = np.empty(n_lanes, dtype=np.uint64)
    hh = np.empty(n_lanes, dtype=np.uint64)
    lo = np.empty(n_lanes, dtype=np.uint64)
    out = np.empty((total, n_lanes))
    for row in range(total):
        # --- state * MULT (128-bit schoolbook, 32-bit limbs) ---
        np.bitwise_and(s_lo, _M32, out=a_lo)
        np.right_shift(s_lo, _S32, out=a_hi)
        np.multiply(a_lo, m_lo_lo, out=ll)
        np.multiply(a_lo, m_lo_hi, out=lh)
        np.multiply(a_hi, m_lo_lo, out=hl)
        np.multiply(a_hi, m_lo_hi, out=hh)
        np.right_shift(ll, _S32, out=t)
        np.bitwise_and(lh, _M32, out=a_lo)
        t += a_lo
        np.bitwise_and(hl, _M32, out=a_lo)
        t += a_lo
        np.bitwise_and(ll, _M32, out=lo)
        np.left_shift(t, _S32, out=a_lo)  # (t & M32) << 32 == t << 32
        lo |= a_lo
        lh >>= _S32
        hh += lh
        hl >>= _S32
        hh += hl
        t >>= _S32
        hh += t
        np.multiply(s_lo, m_hi, out=a_lo)  # cross terms into the hi limb
        hh += a_lo
        np.multiply(s_hi, m_lo, out=a_lo)
        hh += a_lo
        # --- + inc (with carry) ---
        lo += inc_lo
        carry = lo < inc_lo
        hh += inc_hi
        hh += carry
        # --- XSL-RR output + double conversion, this row only ---
        np.bitwise_xor(hh, lo, out=a_lo)  # xored halves
        np.right_shift(hh, _S58, out=a_hi)  # rotation counts
        np.right_shift(a_lo, a_hi, out=ll)
        np.subtract(_U64, a_hi, out=t)
        t &= _S63
        a_lo <<= t
        ll |= a_lo
        ll >>= _S11
        np.multiply(ll, _DOUBLE_SCALE, out=out[row])
        # The freshly advanced (hh, lo) become the state; the old state
        # buffers are recycled as next iteration's scratch.
        s_hi, s_lo, hh, lo = hh, lo, s_hi, s_lo
    state[:, 0] = s_hi
    state[:, 1] = s_lo
    # Lane l's rows are its draws in (slice, kind) order, so the
    # (total, lanes) grid *is* the (chunk, kinds, lanes) block.
    return out.reshape(chunk, n_kinds, n_lanes)


class BatchedDeviceStreams:
    """A stacked ``(n_lanes, 4)`` uint64 array of PCG64 device streams.

    The import/export boundary of the vectorized path: states come in
    from (and go back out as) the exact ``bit_generator.state["state"]``
    dicts numpy pickles, so ``device_rng`` spawn keys, checkpoint
    payloads and shard gather/adopt transport interoperate without
    knowing the stack exists.
    """

    def __init__(self, state: np.ndarray, _mult: int | None = None):
        state = np.asarray(state, dtype=np.uint64)
        if state.ndim != 2 or state.shape[1] != 4:
            raise ValidationError(
                f"stream stack must be (n_lanes, 4) uint64, "
                f"got shape {tuple(state.shape)}"
            )
        self._state = state
        if _mult is None:
            if not batched_available():
                raise ValidationError(
                    f"vectorized PCG64 unavailable: "
                    f"{batched_unavailable_reason()}"
                )
            _mult = _derived()["mult"]
        self._mult = _mult

    @classmethod
    def from_generators(
        cls, generators, _mult: int | None = None
    ) -> "BatchedDeviceStreams":
        """Stack the PCG64 states of ``generators`` (lane order).

        Raises :class:`~repro.util.validation.ValidationError` naming
        the first lane whose generator the vectorized path cannot
        carry (non-PCG64 bit generator, or a buffered half-draw).
        """
        generators = list(generators)
        state = np.empty((len(generators), 4), dtype=np.uint64)
        for lane, generator in enumerate(generators):
            if not supports_generator(generator):
                raise ValidationError(
                    f"lane {lane}: generator is not a clean PCG64 stream "
                    f"(batched fan-in carries PCG64 with no buffered "
                    f"uint32); use the serial fan-in for this group"
                )
            raw = generator.bit_generator.state["state"]
            state[lane, 0] = (raw["state"] >> 64) & _MASK64
            state[lane, 1] = raw["state"] & _MASK64
            state[lane, 2] = (raw["inc"] >> 64) & _MASK64
            state[lane, 3] = raw["inc"] & _MASK64
        return cls(state, _mult=_mult)

    @property
    def n_lanes(self) -> int:
        """Number of stacked streams."""
        return self._state.shape[0]

    @property
    def state(self) -> np.ndarray:
        """The live ``(n_lanes, 4)`` uint64 state stack."""
        return self._state

    def export_state(self, lane: int) -> dict:
        """Lane ``lane``'s state as a PCG64 ``state["state"]`` dict."""
        row = self._state[int(lane)]
        return {
            "state": (int(row[0]) << 64) | int(row[1]),
            "inc": (int(row[2]) << 64) | int(row[3]),
        }

    def uniform_block(self, chunk: int, n_kinds: int) -> np.ndarray:
        """Draw the next ``(chunk, n_kinds, n_lanes)`` uniform block.

        Advances every stacked stream by ``chunk * n_kinds`` steps;
        byte-identical to each lane's own ``Generator.random((chunk,
        n_kinds))``.
        """
        chunk = int(chunk)
        n_kinds = int(n_kinds)
        if chunk <= 0 or n_kinds <= 0:
            raise ValidationError(
                f"uniform_block needs chunk > 0 and n_kinds > 0, "
                f"got ({chunk}, {n_kinds})"
            )
        return _draw_block(self._state, chunk, n_kinds, self._mult)


def _batched_band(state, chunk, n_kinds, mult, shm_name, offset):
    """Pool-worker task: draw one lane band into shared memory.

    The band's block is written straight into the parent's shared
    segment (no pickled payload on the return path); only the small
    advanced ``(band, 4)`` state array rides back over the pipe.
    """
    from multiprocessing import shared_memory

    block = _draw_block(state, chunk, n_kinds, mult)
    segment = shared_memory.SharedMemory(name=shm_name)
    try:
        flat = np.ndarray(
            block.size, dtype=np.float64, buffer=segment.buf, offset=offset
        )
        flat[:] = block.reshape(-1)
    finally:
        segment.close()
    return state


class BatchedPCG64Source:
    """The vectorized :class:`~repro.sim.rng.UniformSource`.

    Wraps a list of per-device PCG64 generators: draws are produced by
    :class:`BatchedDeviceStreams` array math (byte-identical to each
    device's private stream), and the backing generator objects are
    kept canonical by :meth:`sync`, which jumps them forward with
    ``PCG64.advance`` — so everything downstream (checkpointing, shard
    transport, direct draws) sees exactly the states a serial fan-in
    would have left.

    Call :meth:`sync` after consuming a batch of blocks; the fleet's
    grouped stepper does this at the end of every block step.  Between
    ``random`` and ``sync`` the stacked state is authoritative and the
    generator objects lag by :attr:`pending_draws` draws.

    Parameters
    ----------
    generators:
        One clean PCG64 generator per lane (lane order).
    n_kinds / max_chunk:
        Declared request geometry, enforced like
        :class:`~repro.sim.rng.FanInSource` — a mismatched kernel
        request raises instead of desynchronizing streams.
    processes:
        Draw :data:`LANE_BAND`-lane bands in a process pool, assembling
        blocks through shared memory.  Lanes are banded, not
        interleaved, so pool output is byte-identical to the
        in-process path.  Pays off for fleets spanning multiple bands
        on multi-core machines.
    """

    def __init__(
        self,
        generators,
        n_kinds: int | None = None,
        max_chunk: int | None = None,
        processes: int | None = None,
    ):
        if not batched_available():
            raise ValidationError(
                f"vectorized PCG64 unavailable: "
                f"{batched_unavailable_reason()}"
            )
        self._generators = list(generators)
        self._streams = BatchedDeviceStreams.from_generators(self._generators)
        self._n_kinds = None if n_kinds is None else int(n_kinds)
        self._max_chunk = None if max_chunk is None else int(max_chunk)
        if processes is not None:
            processes = int(processes)
            if processes <= 0:
                raise ValidationError(
                    f"processes must be > 0, got {processes}"
                )
        self._processes = processes
        self._executor = None
        self._pending = 0

    @property
    def generators(self) -> list:
        """The backing generators (canonical after :meth:`sync`)."""
        return self._generators

    @property
    def n_lanes(self) -> int:
        """Number of lanes served."""
        return len(self._generators)

    @property
    def pending_draws(self) -> int:
        """Draws served since the last :meth:`sync` (per lane)."""
        return self._pending

    @property
    def streams(self) -> BatchedDeviceStreams:
        """The stacked stream state (authoritative between syncs)."""
        return self._streams

    def _pool(self):
        if self._executor is None:
            import concurrent.futures
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._processes, mp_context=context
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool, if one was started."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "BatchedPCG64Source":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def random(self, shape) -> np.ndarray:
        """Fill a ``(chunk, kinds, lanes)`` block from the stacked streams."""
        chunk, n_kinds, n_lanes = _validate_shape(
            shape, len(self._generators), self._n_kinds, self._max_chunk
        )
        if (
            self._processes is not None
            and self._processes > 1
            and n_lanes > LANE_BAND
        ):
            block = self._random_pooled(chunk, n_kinds, n_lanes)
        else:
            block = self._streams.uniform_block(chunk, n_kinds)
        self._pending += chunk * n_kinds
        return block

    def _random_pooled(
        self, chunk: int, n_kinds: int, n_lanes: int
    ) -> np.ndarray:
        """Band-parallel draw through shared memory.

        Each band is an independent sub-stack (streams never interact),
        so banding is bitwise neutral; the bands' blocks land in one
        shared segment in lane order and are copied out as the
        ``(chunk, kinds, lanes)`` result.
        """
        from multiprocessing import shared_memory

        mult = self._streams._mult
        state = self._streams.state
        bounds = [
            (lo, min(lo + LANE_BAND, n_lanes))
            for lo in range(0, n_lanes, LANE_BAND)
        ]
        block_floats = chunk * n_kinds
        segment = shared_memory.SharedMemory(
            create=True, size=block_floats * n_lanes * 8
        )
        try:
            offsets = [lo * block_floats * 8 for lo, _ in bounds]
            futures = [
                self._pool().submit(
                    _batched_band,
                    state[lo:hi].copy(),
                    chunk,
                    n_kinds,
                    mult,
                    segment.name,
                    offset,
                )
                for (lo, hi), offset in zip(bounds, offsets)
            ]
            out = np.empty((chunk, n_kinds, n_lanes))
            for (lo, hi), offset, future in zip(bounds, offsets, futures):
                state[lo:hi] = future.result()
                band_block = np.ndarray(
                    (chunk, n_kinds, hi - lo),
                    dtype=np.float64,
                    buffer=segment.buf,
                    offset=offset,
                )
                out[:, :, lo:hi] = band_block
        finally:
            segment.close()
            segment.unlink()
        return out

    def sync(self) -> None:
        """Advance the backing generators to the stacked state.

        ``PCG64.advance(n)`` computes the same state ``n`` serial draws
        reach (in ``O(log n)`` C), so after a sync the generator
        objects are byte-for-byte what the serial fan-in would have
        left — checkpoints, pickles and direct draws all agree.
        """
        if not self._pending:
            return
        pending = self._pending
        for generator in self._generators:
            generator.bit_generator.advance(pending)
        self._pending = 0


def _validate_shape(shape, n_lanes, n_kinds, max_chunk):
    from repro.sim.rng import _validate_block_shape

    return _validate_block_shape(
        shape, n_lanes, n_kinds, max_chunk, "BatchedPCG64Source"
    )
