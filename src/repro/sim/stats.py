"""Sample statistics for simulation output.

Monte-Carlo estimates of power and performance come with sampling
error; the paper plots simulated points against analytic curves
("circles ... lie almost perfectly on the theoretical tradeoff curve").
These helpers quantify that agreement with normal-approximation
confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


@dataclass(frozen=True)
class SampleStats:
    """Summary of a sample of scalar observations.

    Attributes
    ----------
    count:
        Number of observations.
    mean / std / stderr:
        Sample mean, standard deviation (ddof=1) and standard error.
    """

    count: int
    mean: float
    std: float
    stderr: float

    @classmethod
    def from_samples(cls, samples) -> "SampleStats":
        """Compute statistics from a 1-D sample array."""
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(
                f"samples must be a non-empty 1-D array, got shape {arr.shape}"
            )
        count = int(arr.size)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if count > 1 else 0.0
        stderr = std / np.sqrt(count) if count > 1 else 0.0
        return cls(count=count, mean=mean, std=std, stderr=stderr)

    def interval(self, confidence: float = 0.95) -> tuple[float, float]:
        """Two-sided confidence interval for the mean (t-distribution)."""
        if self.count < 2 or self.stderr == 0.0:
            return (self.mean, self.mean)
        half = (
            scipy_stats.t.ppf(0.5 + confidence / 2.0, df=self.count - 1)
            * self.stderr
        )
        return (self.mean - half, self.mean + half)

    def agrees_with(self, reference: float, confidence: float = 0.99) -> bool:
        """True when ``reference`` lies inside the confidence interval."""
        low, high = self.interval(confidence)
        return low <= reference <= high


def confidence_interval(
    samples, confidence: float = 0.95
) -> tuple[float, float]:
    """Convenience wrapper: CI of the mean of ``samples``."""
    return SampleStats.from_samples(samples).interval(confidence)
