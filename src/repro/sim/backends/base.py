"""The pluggable simulation-backend protocol.

A backend turns ``(system, costs, agent(s), n_slices, rng)`` into
:class:`~repro.sim.result.SimulationResult` records.  Two
implementations ship with the package:

* :class:`~repro.sim.backends.loop.LoopBackend` — the reference
  per-slice interpreter; supports *any*
  :class:`~repro.policies.base.PolicyAgent`, including stateful
  heuristics (timeouts, predictors), and defines the semantics the
  other backends must reproduce.
* :class:`~repro.sim.backends.vector.VectorBackend` — a compiled,
  batched stepper for stationary Markov policies
  (:class:`~repro.policies.base.StationaryAgent`) that advances many
  independent replications per NumPy operation.

Both backends draw from the same compiled
:class:`SimulationTables`, so per-run setup (metric stacking, transition
cumsums) is computed once and shared — including across the geometric
sessions of ``simulate_sessions``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.policies.base import PolicyAgent, StationaryAgent
from repro.sim.result import SimulationResult
from repro.sim.stats import SampleStats
from repro.util.validation import ValidationError


@dataclass(frozen=True)
class SimulationTables:
    """Precompiled per-(system, costs) arrays shared by all backends.

    Building these is O(states x commands) and used to be repeated for
    every run — in session mode once *per geometric session*.  Compiling
    once and passing the tables down removes that setup cost from the
    hot path.

    Attributes
    ----------
    metric_names:
        Metric order used for the ``totals`` rows.
    metric_stack:
        ``(n_metrics, n_states, n_commands)`` cost tensor.
    sp_cum / sr_cum:
        Normalized transition cumsums of the provider tensor
        ``(A, S, S)`` and requester matrix ``(R, R)``.
    rates:
        ``(S, A)`` service probabilities ``sigma(s, a)``.
    arrivals_of:
        Per-SR-state arrival counts ``z(r)``.
    issuing:
        Boolean mask of SR states with ``z(r) > 0``.
    capacity / n_sp / n_sr / n_sq / n_commands:
        Component dimensions.
    """

    metric_names: tuple[str, ...]
    metric_stack: np.ndarray
    sp_cum: np.ndarray
    sr_cum: np.ndarray
    rates: np.ndarray
    arrivals_of: np.ndarray
    issuing: np.ndarray
    capacity: int
    n_sp: int
    n_sr: int
    n_sq: int
    n_commands: int

    @classmethod
    def compile(
        cls, system: PowerManagedSystem, costs: CostModel
    ) -> "SimulationTables":
        """Compile the simulation tables for one (system, costs) pair."""
        from repro.sim.rng import categorical_cumsum

        metric_names = tuple(costs.metric_names)
        metric_stack = np.stack(
            [costs.metric(name) for name in metric_names], axis=0
        )
        arrivals_of = system.requester.arrival_counts
        return cls(
            metric_names=metric_names,
            metric_stack=metric_stack,
            sp_cum=categorical_cumsum(system.provider.chain.tensor, axis=2),
            sr_cum=categorical_cumsum(system.requester.chain.matrix, axis=1),
            rates=system.provider.service_rate_matrix,
            arrivals_of=arrivals_of,
            issuing=arrivals_of > 0,
            capacity=system.queue.capacity,
            n_sp=system.provider.n_states,
            n_sr=system.requester.n_states,
            n_sq=system.queue.n_states,
            n_commands=system.n_commands,
        )


def resolve_initial_state(
    system: PowerManagedSystem, initial_state
) -> tuple[int, int, int]:
    """Resolve ``(provider, requester, queue)`` names/indices to indices."""
    if initial_state is None:
        return 0, 0, 0
    provider, requester, queue = initial_state
    s = system.provider.chain.state_index(provider)
    r = system.requester.chain.state_index(requester)
    q = int(queue)
    if not 0 <= q <= system.queue.capacity:
        raise ValidationError(
            f"queue length {q} out of range [0, {system.queue.capacity}]"
        )
    return s, r, q


class SimulationBackend(abc.ABC):
    """Abstract interface every simulation backend implements."""

    #: Registry name (``"loop"``, ``"vector"``).
    name: str = "abstract"

    def supports(self, agent: PolicyAgent) -> bool:
        """Whether this backend can simulate ``agent``."""
        return isinstance(agent, PolicyAgent)

    @abc.abstractmethod
    def simulate(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        n_slices: int,
        rng: np.random.Generator,
        initial_state=None,
        tables: SimulationTables | None = None,
        chunk_slices: int | None = None,
    ) -> SimulationResult:
        """Run one simulation of ``n_slices`` slices.

        ``chunk_slices`` pins the batch tier's chunk length; backends
        without a chunked stepper accept and ignore it.
        """

    def simulate_many(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agents: Sequence[PolicyAgent],
        n_slices: int,
        rngs: Sequence[np.random.Generator],
        initial_state=None,
        n_replications: int = 1,
    ) -> list[list[SimulationResult]]:
        """Simulate each agent ``n_replications`` times.

        Returns one list of replication results per agent.  The default
        implementation runs each (agent, replication) pair through
        :meth:`simulate` with its own generator from ``rngs`` (flat,
        agent-major: ``len(agents) * n_replications`` entries);
        vectorized backends override this with a single batched run.
        """
        expected = len(agents) * int(n_replications)
        if len(rngs) != expected:
            raise ValidationError(
                f"need {expected} generators (agents x replications), "
                f"got {len(rngs)}"
            )
        tables = SimulationTables.compile(system, costs)
        results: list[list[SimulationResult]] = []
        lane = 0
        for agent in agents:
            replications = []
            for _ in range(int(n_replications)):
                replications.append(
                    self.simulate(
                        system,
                        costs,
                        agent,
                        n_slices,
                        rngs[lane],
                        initial_state,
                        tables=tables,
                    )
                )
                lane += 1
            results.append(replications)
        return results

    @abc.abstractmethod
    def simulate_sessions(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        gamma: float,
        n_sessions: int,
        rng: np.random.Generator,
        initial_state=None,
        max_session_slices: int | None = None,
        chunk_slices: int | None = None,
    ) -> dict[str, SampleStats]:
        """Estimate discounted totals via geometric-length sessions.

        ``chunk_slices`` pins the batch tier's chunk length; backends
        without a chunked stepper accept and ignore it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def is_vectorizable(agent: PolicyAgent) -> bool:
    """True when ``agent`` provably executes a stationary Markov policy."""
    return isinstance(agent, StationaryAgent)
