"""Compiled (numba) tier of the joint-state batch stepper.

:class:`JitBackend` is the third simulation backend: the same
joint-state chunk stepper as :class:`~repro.sim.backends.vector.
VectorBackend`, with the per-chunk stepping *and* the history folds
fused into one ``@njit``-compiled kernel.  The vector backend pays
O(slices) NumPy dispatches per lane batch (a dozen fused array ops per
slice, then gather/bincount/einsum folds per chunk); the kernel pays
none, which is worth another order of magnitude on the fleet hot path
and on replication studies whose batches are tens of lanes wide.

**The contract is byte-identity with the vector backend**, not just
statistical agreement:

* uniforms are drawn *by the host* from the caller's generator in the
  exact same ``(chunk, kinds, lanes)`` blocks (so the RNG stream
  contract — and the fleet's per-device fan-in — carries over
  verbatim; the kernel never owns a bit generator);
* chunk boundaries come from the shared
  :func:`~repro.sim.backends.vector.resolve_chunk` rule, including the
  pinned ``chunk_slices`` fleet mode;
* categorical draws replicate ``np.searchsorted(side="right")`` over
  the same offset cumsums — a binary search with the identical
  ``flat[mid] <= value`` comparison, hence identical integer results;
* float metric totals accumulate per lane in ascending slice order
  into a chunk-local buffer that is then added to the running
  accumulator — the same summation tree NumPy's ``sum(axis=1)`` /
  masked ``einsum`` folds produce (dead session lanes contribute
  exact zeros there, so skipping them is bitwise equivalent);
* lane masking, compaction and final-state capture mirror the host
  loop of ``vector._step_lanes`` line for line.

``tests/test_sim_jit.py`` pins all of this: the kernel also runs as
plain Python when numba is absent (the ``@njit`` decorator degrades to
identity), so the equivalence suite exercises the *algorithm* on every
environment and the compiled artifact wherever numba installs.

numba is an optional dependency (``pip install repro-dpm[jit]``).
Without it, :func:`repro.sim.backends.get_backend` refuses ``"jit"``
with an actionable message and ``backend="auto"`` quietly keeps
resolving to the vector tier.
"""

from __future__ import annotations

import numpy as np

from repro.sim.backends.base import SimulationTables
from repro.sim.backends.vector import (
    CompiledPolicyBatch,
    VectorBackend,
    _CompiledSystem,
    _LaneAccumulators,
    resolve_chunk,
)
from repro.util.validation import ValidationError

try:  # pragma: no cover - exercised via the CI numba/no-numba legs
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
    UNAVAILABLE_REASON = None
except ImportError:  # pragma: no cover
    NUMBA_AVAILABLE = False
    UNAVAILABLE_REASON = (
        "the optional numba dependency is not installed "
        "(pip install repro-dpm[jit])"
    )

    def _numba_njit(*args, **kwargs):
        """Degrade ``@njit`` to identity so kernels stay importable.

        The interpreted kernels keep the exact compiled semantics
        (same Python source), which is what lets the equivalence suite
        validate the algorithm on numba-less environments.
        """
        if args and callable(args[0]):
            return args[0]

        def decorate(function):
            return function

        return decorate


@_numba_njit(cache=True, nogil=True)
def _searchsorted_right(flat: np.ndarray, value: float) -> int:
    """``np.searchsorted(flat, value, side="right")`` for one scalar.

    The comparison is ``flat[mid] <= value`` — the count of entries
    ``<= value`` — which is precisely NumPy's ``side="right"``
    semantics, so the offset-cumsum categorical draws land on the same
    integer index bit for bit.
    """
    lo = 0
    hi = flat.shape[0]
    while lo < hi:
        mid = (lo + hi) >> 1
        if flat[mid] <= value:
            lo = mid + 1
        else:
            hi = mid
    return lo


@_numba_njit(cache=True, nogil=True)
def _step_fold_chunk(
    uniforms,  # (chunk, n_kinds, n_lanes) host-drawn uniform block
    x,  # (n_lanes,) int64 joint state, updated in place
    r,  # (n_lanes,) int64 SR state, updated in place
    q,  # (n_lanes,) int64 queue length, updated in place
    pol_base,  # (n_lanes,) int64 policy row offset (policy * n_states)
    remaining,  # (n_lanes,) int64 slices still counted per lane
    pol_offset,  # policy offset cumsum (flattened)
    greedy,  # argmax command per (policy, state)
    det_row,  # rows with all mass on one command
    sp_row_det,  # deterministic fast path: SP row per (policy, state)
    sigma_det,  # deterministic fast path: service prob per (policy, state)
    sp_offset,  # SP offset cumsum
    sr_offset,  # SR offset cumsum
    rates_flat,  # (A * S,) service probabilities
    s_of,  # (J,) joint -> SP state
    metric_flat,  # (n_metrics, n_states * n_commands) cost rows
    arrivals_of,  # (n_sr,) arrival counts
    issuing,  # (n_sr,) bool issuing mask
    n_commands,
    n_sp,
    n_sr,
    n_sq,
    capacity,
    deterministic,  # bool: 3-uniform-kind batch (no policy draws)
    single_policy,  # bool: pol_base identically zero
    any_det,  # bool: some (not all) rows deterministic
    totals,  # (n_metrics, n_lanes) float64 chunk-local, zeroed by host
    cmd,  # (n_lanes, n_commands) int64 chunk-local
    occ,  # (n_lanes, n_sp) int64 chunk-local
    arr,  # (n_lanes,) int64 chunk-local
    srv,  # (n_lanes,) int64 chunk-local
    lost,  # (n_lanes,) int64 chunk-local
    evt,  # (n_lanes,) int64 chunk-local
    fin_x,  # (n_lanes,) int64: joint state when a lane finishes mid-chunk
) -> None:
    """Step one uniform block and fold it into the chunk-local counters.

    One fused pass replaces the vector backend's history buffers and
    post-chunk gather/bincount/einsum reductions.  Dead lanes (session
    mode: ``remaining <= k``) still advance state and consume uniforms
    — exactly like the masked vector fold — they just stop counting.
    """
    chunk = uniforms.shape[0]
    n_kinds = uniforms.shape[1]
    n_lanes = uniforms.shape[2]
    n_metrics = metric_flat.shape[0]
    sr_sq = n_sr * n_sq
    for k in range(chunk):
        for lane in range(n_lanes):
            xl = x[lane]
            rl = r[lane]
            ql = q[lane]
            rowx = xl if single_policy else pol_base[lane] + xl
            if deterministic:
                a = greedy[rowx]
                sp_row = sp_row_det[rowx]
                sigma = sigma_det[rowx]
            else:
                a = (
                    _searchsorted_right(pol_offset, rowx + uniforms[k, 0, lane])
                    - rowx * n_commands
                )
                if a > n_commands - 1:
                    a = n_commands - 1
                if any_det and det_row[rowx]:
                    a = greedy[rowx]
                sp_row = a * n_sp + s_of[xl]
                sigma = rates_flat[sp_row]
            s_next = (
                _searchsorted_right(
                    sp_offset, sp_row + uniforms[k, n_kinds - 3, lane]
                )
                - sp_row * n_sp
            )
            if s_next > n_sp - 1:
                s_next = n_sp - 1
            r_next = (
                _searchsorted_right(
                    sr_offset, rl + uniforms[k, n_kinds - 2, lane]
                )
                - rl * n_sr
            )
            if r_next > n_sr - 1:
                r_next = n_sr - 1
            z = arrivals_of[r_next]
            pending = ql + z
            served = (
                1
                if (pending > 0 and uniforms[k, n_kinds - 1, lane] < sigma)
                else 0
            )
            q_next = pending - served
            if q_next > capacity:
                q_next = capacity

            if remaining[lane] > k:
                base = xl * n_commands + a
                for m in range(n_metrics):
                    totals[m, lane] += metric_flat[m, base]
                cmd[lane, a] += 1
                occ[lane, xl // sr_sq] += 1
                arr[lane] += z
                srv[lane] += served
                lost[lane] += pending - served - q_next
                if issuing[rl] and ql == capacity:
                    evt[lane] += 1

            xn = (s_next * n_sr + r_next) * n_sq + q_next
            x[lane] = xn
            r[lane] = r_next
            q[lane] = q_next
            if remaining[lane] == k + 1:
                fin_x[lane] = xn


def _step_lanes_jit(
    tables: SimulationTables,
    compiled: CompiledPolicyBatch,
    policy_of_lane: np.ndarray,
    lengths: np.ndarray,
    start: tuple,
    rng,
    chunk_slices: int | None = None,
) -> _LaneAccumulators:
    """The jit rendition of ``vector._step_lanes`` — same contract.

    The host side (chunk sizing, uniform block draws, lane compaction,
    final-state capture) mirrors the vector backend exactly — ``rng``
    is any :class:`~repro.sim.rng.UniformSource`, as there; only the
    per-chunk stepping-and-folding is delegated to the compiled kernel.
    Keeping the host loop in Python costs one kernel call per chunk —
    negligible — and guarantees the RNG stream, masking and compaction
    semantics cannot drift between the two tiers.
    """
    n_metrics = tables.metric_stack.shape[0]
    n_commands = tables.n_commands
    n_sp, n_sr, n_sq = tables.n_sp, tables.n_sr, tables.n_sq
    n_states = n_sp * n_sr * n_sq
    capacity = tables.capacity
    n_total = int(policy_of_lane.shape[0])
    system_flat = _CompiledSystem.compile(tables)

    acc = _LaneAccumulators(
        totals=np.zeros((n_metrics, n_total)),
        command_counts=np.zeros((n_total, n_commands), dtype=np.int64),
        provider_occupancy=np.zeros((n_total, n_sp), dtype=np.int64),
        arrivals=np.zeros(n_total, dtype=np.int64),
        serviced=np.zeros(n_total, dtype=np.int64),
        lost=np.zeros(n_total, dtype=np.int64),
        loss_events=np.zeros(n_total, dtype=np.int64),
        final_state=np.zeros((n_total, 3), dtype=np.int64),
    )

    lane_ids = np.arange(n_total)
    remaining = lengths.astype(np.int64).copy()
    pol_base = policy_of_lane.astype(np.int64) * n_states
    s0 = np.broadcast_to(np.asarray(start[0], dtype=np.int64), (n_total,))
    # .copy(): broadcast_to yields read-only views (aliasing the caller's
    # start arrays when they are already full-size) and the kernel
    # advances r/q in place.
    r = np.broadcast_to(np.asarray(start[1], dtype=np.int64), (n_total,)).copy()
    q = np.broadcast_to(np.asarray(start[2], dtype=np.int64), (n_total,)).copy()
    x = (s0 * n_sr + r) * n_sq + q

    deterministic = compiled.fully_deterministic
    n_kinds = 3 if deterministic else 4
    metric_flat = np.ascontiguousarray(
        tables.metric_stack.reshape(n_metrics, -1), dtype=np.float64
    )
    arrivals_of = np.ascontiguousarray(tables.arrivals_of, dtype=np.int64)
    issuing = np.ascontiguousarray(tables.issuing, dtype=np.bool_)
    sp_offset = np.ascontiguousarray(system_flat.sp_offset, dtype=np.float64)
    sr_offset = np.ascontiguousarray(system_flat.sr_offset, dtype=np.float64)
    rates_flat = np.ascontiguousarray(system_flat.rates_flat, dtype=np.float64)
    s_of = np.ascontiguousarray(system_flat.s_of, dtype=np.int64)
    pol_offset = np.ascontiguousarray(compiled.offset_cumsum, dtype=np.float64)
    greedy = np.ascontiguousarray(compiled.greedy, dtype=np.int64)
    det_row = np.ascontiguousarray(compiled.deterministic_row, dtype=np.bool_)
    sp_row_det = np.ascontiguousarray(compiled.sp_row, dtype=np.int64)
    sigma_det = np.ascontiguousarray(compiled.sigma, dtype=np.float64)
    any_det = bool(det_row.any()) and not deterministic

    while lane_ids.size:
        n_lanes = lane_ids.size
        single_policy = bool(pol_base[0] == 0 and (pol_base == 0).all())
        chunk = resolve_chunk(
            n_lanes, n_kinds, int(remaining.max()), chunk_slices
        )
        uniforms = np.ascontiguousarray(rng.random((chunk, n_kinds, n_lanes)))

        totals_local = np.zeros((n_metrics, n_lanes))
        cmd_local = np.zeros((n_lanes, n_commands), dtype=np.int64)
        occ_local = np.zeros((n_lanes, n_sp), dtype=np.int64)
        arr_local = np.zeros(n_lanes, dtype=np.int64)
        srv_local = np.zeros(n_lanes, dtype=np.int64)
        lost_local = np.zeros(n_lanes, dtype=np.int64)
        evt_local = np.zeros(n_lanes, dtype=np.int64)
        fin_x = np.zeros(n_lanes, dtype=np.int64)

        _step_fold_chunk(
            uniforms,
            x,
            r,
            q,
            pol_base,
            remaining,
            pol_offset,
            greedy,
            det_row,
            sp_row_det,
            sigma_det,
            sp_offset,
            sr_offset,
            rates_flat,
            s_of,
            metric_flat,
            arrivals_of,
            issuing,
            n_commands,
            n_sp,
            n_sr,
            n_sq,
            capacity,
            deterministic,
            single_policy,
            any_det,
            totals_local,
            cmd_local,
            occ_local,
            arr_local,
            srv_local,
            lost_local,
            evt_local,
            fin_x,
        )

        acc.totals[:, lane_ids] += totals_local
        acc.command_counts[lane_ids] += cmd_local
        acc.provider_occupancy[lane_ids] += occ_local
        acc.arrivals[lane_ids] += arr_local
        acc.serviced[lane_ids] += srv_local
        acc.lost[lane_ids] += lost_local
        acc.loss_events[lane_ids] += evt_local

        finished = remaining <= chunk
        if finished.any():
            idx = np.nonzero(finished)[0]
            x_fin = fin_x[idx]
            fin_ids = lane_ids[idx]
            acc.final_state[fin_ids, 0] = x_fin // (n_sr * n_sq)
            acc.final_state[fin_ids, 1] = (x_fin // n_sq) % n_sr
            acc.final_state[fin_ids, 2] = x_fin % n_sq

        remaining -= chunk
        if finished.any():
            keep = ~finished
            lane_ids = lane_ids[keep]
            remaining = remaining[keep]
            pol_base = np.ascontiguousarray(pol_base[keep])
            x = np.ascontiguousarray(x[keep])
            r = np.ascontiguousarray(r[keep])
            q = np.ascontiguousarray(q[keep])
    return acc


class JitBackend(VectorBackend):
    """numba-compiled joint-state batch stepper (byte-identical tier).

    Inherits every batch entry point from
    :class:`~repro.sim.backends.vector.VectorBackend` and swaps in the
    compiled chunk kernel via :meth:`step_lanes`.

    Parameters
    ----------
    interpreted_ok:
        Permit running the kernels as plain Python when numba is not
        installed.  The default (``False``) refuses instead — an
        interpreted "jit" backend is orders of magnitude *slower* than
        the vector tier, so silently degrading would be a performance
        trap.  The equivalence test suite opts in to validate the
        kernel algorithm without numba.
    """

    name = "jit"

    def __init__(self, interpreted_ok: bool = False):
        self._interpreted_ok = bool(interpreted_ok)

    @property
    def compiled(self) -> bool:
        """True when the numba-compiled kernels are in use."""
        return NUMBA_AVAILABLE

    def step_lanes(
        self,
        tables: SimulationTables,
        compiled: CompiledPolicyBatch,
        policy_of_lane: np.ndarray,
        lengths: np.ndarray,
        start: tuple,
        rng,
        chunk_slices: int | None = None,
    ) -> _LaneAccumulators:
        if not NUMBA_AVAILABLE and not self._interpreted_ok:
            raise ValidationError(
                f"the jit simulation backend is unavailable: "
                f"{UNAVAILABLE_REASON}; use backend='vector' (identical "
                f"results) or backend='auto'"
            )
        return _step_lanes_jit(
            tables,
            compiled,
            policy_of_lane,
            lengths,
            start,
            rng,
            chunk_slices=chunk_slices,
        )
