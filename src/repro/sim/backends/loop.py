"""The reference per-slice simulation loop.

Reproduces the composed chain's semantics *component by component* so
that heuristic agents with internal state (timeouts, predictors) can be
simulated alongside stationary policies:

at each slice ``t`` with joint state ``X_t = (s, r, q)``:

1. the agent observes ``X_t`` and issues command ``a``;
2. every cost metric accrues its ``matrix[X_t, a]`` value;
3. the SP moves ``s -> s'`` with ``P_SP^a``, the SR moves ``r -> r'``
   with ``P_SR`` and ``z(r')`` requests arrive;
4. the queue updates with service probability ``sigma(s, a)`` applied
   to ``q + z(r')`` pending requests (paper Eq. 3); overflow is counted
   as lost.

For a stationary Markov policy this is distributed identically to the
joint chain of :class:`~repro.core.system.PowerManagedSystem` — the
equivalence is verified in the test suite against both the closed-form
evaluation and the vectorized backend.

This backend defines the engine's semantics, including the order in
which uniforms are consumed from the generator (agent draw if any, then
SP, then SR, then the service Bernoulli *only when work is pending*);
the seeded-equivalence suite relies on that order staying fixed.
"""

from __future__ import annotations

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, PolicyAgent
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationTables,
    resolve_initial_state,
)
from repro.sim.result import SimulationResult
from repro.sim.rng import sample_categorical
from repro.sim.stats import SampleStats
from repro.util.validation import ValidationError


class LoopBackend(SimulationBackend):
    """Pure-Python reference interpreter; supports every agent."""

    name = "loop"

    def simulate(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        n_slices: int,
        rng: np.random.Generator,
        initial_state=None,
        tables: SimulationTables | None = None,
        chunk_slices: int | None = None,
    ) -> SimulationResult:
        del chunk_slices  # batch-tier knob; the per-slice loop has none
        # Interface parity with the batch tiers' UniformSource support:
        # a GeneratorSource unwraps to its single generator (the loop
        # draws scalars and hands the rng to agents, so it needs the
        # real Generator, not just the block protocol).
        rng = getattr(rng, "generator", rng)
        if tables is None:
            tables = SimulationTables.compile(system, costs)
        s, r, q = resolve_initial_state(system, initial_state)
        agent.reset()

        metric_stack = tables.metric_stack
        sp_cum = tables.sp_cum
        sr_cum = tables.sr_cum
        rates = tables.rates
        arrivals_of = tables.arrivals_of
        issuing = tables.issuing
        capacity = tables.capacity
        n_sr = tables.n_sr
        n_sq = tables.n_sq
        n_commands = tables.n_commands

        totals = np.zeros(len(tables.metric_names))
        command_counts = np.zeros(n_commands, dtype=np.int64)
        provider_occupancy = np.zeros(tables.n_sp, dtype=np.int64)
        total_arrivals = 0
        total_serviced = 0
        total_lost = 0
        loss_event_slices = 0
        prev_arrivals = 0

        for t in range(n_slices):
            observation = Observation(
                provider_state=s,
                requester_state=r,
                queue_length=q,
                arrivals=prev_arrivals,
                slice_index=t,
            )
            a = int(agent.select_command(observation, rng))
            if not 0 <= a < n_commands:
                raise ValidationError(
                    f"agent returned command {a}, valid range is "
                    f"[0, {n_commands})"
                )

            joint = (s * n_sr + r) * n_sq + q
            totals += metric_stack[:, joint, a]
            command_counts[a] += 1
            provider_occupancy[s] += 1
            if issuing[r] and q == capacity:
                loss_event_slices += 1

            # --- transition ---------------------------------------------
            s_next = sample_categorical(sp_cum[a, s], rng)
            r_next = sample_categorical(sr_cum[r], rng)
            z = int(arrivals_of[r_next])
            pending = q + z
            served = 0
            if pending > 0 and rng.random() < rates[s, a]:
                served = 1
            q_next = min(pending - served, capacity)
            lost = max(pending - served - capacity, 0)

            total_arrivals += z
            total_serviced += served
            total_lost += lost
            prev_arrivals = z
            s, r, q = s_next, r_next, q_next

        metric_names = tables.metric_names
        averages = {
            name: float(totals[i]) / n_slices
            for i, name in enumerate(metric_names)
        }
        return SimulationResult(
            n_slices=n_slices,
            averages=averages,
            totals={
                name: float(totals[i]) for i, name in enumerate(metric_names)
            },
            arrivals=total_arrivals,
            serviced=total_serviced,
            lost=total_lost,
            loss_event_slices=loss_event_slices,
            command_counts=command_counts,
            provider_occupancy=provider_occupancy,
            final_state=(s, r, q),
        )

    def simulate_sessions(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        gamma: float,
        n_sessions: int,
        rng: np.random.Generator,
        initial_state=None,
        max_session_slices: int | None = None,
        chunk_slices: int | None = None,
    ) -> dict[str, SampleStats]:
        # chunk_slices is a batch-tier knob; the per-slice loop has no
        # chunking to pin, so it is accepted for interface parity only.
        del chunk_slices
        rng = getattr(rng, "generator", rng)
        # Compile once for all sessions: the metric stack and transition
        # cumsums used to be rebuilt inside every geometric session.
        tables = SimulationTables.compile(system, costs)
        samples: dict[str, list[float]] = {
            name: [] for name in tables.metric_names
        }
        for _ in range(int(n_sessions)):
            length = int(rng.geometric(1.0 - gamma))
            if max_session_slices is not None:
                length = min(length, int(max_session_slices))
            length = max(length, 1)
            result = self.simulate(
                system, costs, agent, length, rng, initial_state, tables=tables
            )
            for name in samples:
                samples[name].append(result.totals[name])
        return {
            name: SampleStats.from_samples(values)
            for name, values in samples.items()
        }
