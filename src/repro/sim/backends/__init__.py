"""Pluggable simulation backends and their dispatch rules.

Backends are registered by name; callers normally go through
:func:`repro.sim.engine.simulate` /
:func:`repro.sim.engine.simulate_many` with ``backend="auto"`` and let
:func:`resolve_backend` pick:

* ``"loop"`` — the reference interpreter; any agent, one trajectory at
  a time.  Single runs of heuristic *and* stationary agents default
  here so existing seeded results stay bit-identical.
* ``"vector"`` — compiled batch stepping for stationary Markov
  policies.  ``auto`` selects the batch tier whenever a run is batched
  (many replications, many policies, or many sessions) and every agent
  is provably stationary; with a single lane the compiled stepper has
  no batch to amortize over and the loop is faster.
* ``"jit"`` — the numba-compiled chunk kernel
  (:mod:`repro.sim.backends.jit`), byte-identical to ``"vector"`` and
  roughly an order of magnitude faster.  Optional: it needs the
  ``[jit]`` extra (``pip install repro-dpm[jit]``); ``auto`` prefers
  it when numba imports and falls back to ``"vector"`` cleanly when it
  does not.

:func:`available_backends` reports which names are importable right
now, and :func:`get_backend` raises an actionable
:class:`~repro.util.validation.ValidationError` (listing what *is*
available and how to install the rest) instead of a raw ImportError
when an optional backend is requested on an environment that lacks it.
"""

from __future__ import annotations

from repro.policies.base import PolicyAgent
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationTables,
    is_vectorizable,
)
from repro.sim.backends.loop import LoopBackend
from repro.sim.backends.vector import CompiledPolicyBatch, VectorBackend
from repro.util.validation import ValidationError

#: Registry of always-available backend name -> singleton instance.
BACKENDS: dict[str, SimulationBackend] = {
    LoopBackend.name: LoopBackend(),
    VectorBackend.name: VectorBackend(),
}

#: Optional backends resolved lazily (importing numba is not free and
#: must not be a hard requirement of ``import repro.sim``).
OPTIONAL_BACKEND_NAMES = ("jit",)

#: Names accepted by the ``backend=`` parameters and the CLI flag.
#: Optional backends are always *accepted* — requesting one that is
#: not importable fails with an actionable message at resolution time.
BACKEND_CHOICES = ("auto", *BACKENDS, *OPTIONAL_BACKEND_NAMES)

#: Cached JitBackend singleton (created on first successful lookup).
_JIT_BACKEND: SimulationBackend | None = None


def _jit_module():
    """Import :mod:`repro.sim.backends.jit` (tolerates missing numba)."""
    from repro.sim.backends import jit

    return jit


def jit_available() -> bool:
    """True when the numba-compiled jit backend can actually run."""
    return bool(_jit_module().NUMBA_AVAILABLE)


def available_backends() -> dict[str, str | None]:
    """Importability of every known backend.

    Returns
    -------
    dict[str, str | None]
        ``{name: None}`` for backends ready to use, ``{name: reason}``
        for optional backends that cannot run in this environment.
        Iteration order is the dispatch order ``auto`` considers.
    """
    report: dict[str, str | None] = {name: None for name in BACKENDS}
    jit = _jit_module()
    report["jit"] = None if jit.NUMBA_AVAILABLE else jit.UNAVAILABLE_REASON
    return report


def _usable_backend_names() -> list[str]:
    return [name for name, reason in available_backends().items() if reason is None]


def get_backend(name: str) -> SimulationBackend:
    """Look up a backend instance by registry name.

    Raises
    ------
    ValidationError
        For unknown names, and for optional backends whose dependency
        is missing — the message lists what is importable right now.
    """
    global _JIT_BACKEND
    if name in BACKENDS:
        return BACKENDS[name]
    if name == "jit":
        jit = _jit_module()
        if not jit.NUMBA_AVAILABLE:
            raise ValidationError(
                f"simulation backend 'jit' is unavailable: "
                f"{jit.UNAVAILABLE_REASON}; available backends: "
                f"{', '.join(_usable_backend_names())} (results are "
                f"byte-identical across vector and jit)"
            )
        if _JIT_BACKEND is None:
            _JIT_BACKEND = jit.JitBackend()
        return _JIT_BACKEND
    raise ValidationError(
        f"unknown simulation backend {name!r}; "
        f"choose from {sorted((*BACKENDS, *OPTIONAL_BACKEND_NAMES))} or 'auto'"
    )


def preferred_batch_backend() -> SimulationBackend:
    """The batch tier ``auto`` resolves to: jit if importable, else vector."""
    if jit_available():
        return get_backend("jit")
    return BACKENDS[VectorBackend.name]


def resolve_backend(
    backend: str, agents, batch_size: int = 1
) -> SimulationBackend:
    """Resolve a backend request against the agents and batch shape.

    Parameters
    ----------
    backend:
        ``"auto"``, ``"loop"``, ``"vector"`` or ``"jit"``.
    agents:
        The agent(s) the run will simulate (a single agent or a
        sequence).
    batch_size:
        Number of independent lanes the run would step together
        (replications x agents, or sessions).  ``auto`` only
        vectorizes batched runs.
    """
    if isinstance(agents, PolicyAgent):
        agents = [agents]
    if backend == "auto":
        if int(batch_size) > 1 and all(is_vectorizable(a) for a in agents):
            return preferred_batch_backend()
        return BACKENDS[LoopBackend.name]
    chosen = get_backend(backend)
    for agent in agents:
        if not chosen.supports(agent):
            raise ValidationError(
                f"backend {chosen.name!r} does not support "
                f"{agent.describe()}; use backend='loop'"
            )
    return chosen


__all__ = [
    "BACKENDS",
    "BACKEND_CHOICES",
    "OPTIONAL_BACKEND_NAMES",
    "CompiledPolicyBatch",
    "LoopBackend",
    "SimulationBackend",
    "SimulationTables",
    "VectorBackend",
    "available_backends",
    "get_backend",
    "is_vectorizable",
    "jit_available",
    "preferred_batch_backend",
    "resolve_backend",
]
