"""Pluggable simulation backends and their dispatch rules.

Backends are registered by name; callers normally go through
:func:`repro.sim.engine.simulate` /
:func:`repro.sim.engine.simulate_many` with ``backend="auto"`` and let
:func:`resolve_backend` pick:

* ``"loop"`` — the reference interpreter; any agent, one trajectory at
  a time.  Single runs of heuristic *and* stationary agents default
  here so existing seeded results stay bit-identical.
* ``"vector"`` — compiled batch stepping for stationary Markov
  policies.  ``auto`` selects it whenever a run is batched (many
  replications, many policies, or many sessions) and every agent is
  provably stationary; with a single lane the compiled stepper has no
  batch to amortize over and the loop is faster.
"""

from __future__ import annotations

from repro.policies.base import PolicyAgent
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationTables,
    is_vectorizable,
)
from repro.sim.backends.loop import LoopBackend
from repro.sim.backends.vector import CompiledPolicyBatch, VectorBackend
from repro.util.validation import ValidationError

#: Registry of backend name -> singleton instance.
BACKENDS: dict[str, SimulationBackend] = {
    LoopBackend.name: LoopBackend(),
    VectorBackend.name: VectorBackend(),
}

#: Names accepted by the ``backend=`` parameters and the CLI flag.
BACKEND_CHOICES = ("auto", *BACKENDS)


def get_backend(name: str) -> SimulationBackend:
    """Look up a backend instance by registry name."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValidationError(
            f"unknown simulation backend {name!r}; "
            f"choose from {sorted(BACKENDS)} or 'auto'"
        ) from None


def resolve_backend(
    backend: str, agents, batch_size: int = 1
) -> SimulationBackend:
    """Resolve a backend request against the agents and batch shape.

    Parameters
    ----------
    backend:
        ``"auto"``, ``"loop"`` or ``"vector"``.
    agents:
        The agent(s) the run will simulate (a single agent or a
        sequence).
    batch_size:
        Number of independent lanes the run would step together
        (replications x agents, or sessions).  ``auto`` only
        vectorizes batched runs.
    """
    if isinstance(agents, PolicyAgent):
        agents = [agents]
    if backend == "auto":
        if int(batch_size) > 1 and all(is_vectorizable(a) for a in agents):
            return BACKENDS[VectorBackend.name]
        return BACKENDS[LoopBackend.name]
    chosen = get_backend(backend)
    for agent in agents:
        if not chosen.supports(agent):
            raise ValidationError(
                f"backend {chosen.name!r} does not support "
                f"{agent.describe()}; use backend='loop'"
            )
    return chosen


__all__ = [
    "BACKENDS",
    "BACKEND_CHOICES",
    "CompiledPolicyBatch",
    "LoopBackend",
    "SimulationBackend",
    "SimulationTables",
    "VectorBackend",
    "get_backend",
    "is_vectorizable",
    "resolve_backend",
]
