"""Vectorized batch simulation of stationary Markov policies.

For a :class:`~repro.policies.base.StationaryAgent` the per-slice
decision is a pure function of the joint state, so the composed system
and the policy can be *compiled* ahead of time into flat joint-state
tables — policy cumulative rows, greedy commands, per-joint-state cost
rows, and the arrival/service bookkeeping arrays — and many independent
replications stepped at once:

* one NumPy operation advances the whole batch one slice;
* uniforms are drawn in chunked blocks (``(chunk, kinds, lanes)``) so
  generator overhead is amortized over thousands of draws;
* categorical draws use *offset cumsums*: every cumulative row is
  shifted by its integer row id and the rows concatenated into one
  globally non-decreasing array, so a whole batch of row-dependent
  draws is a single :func:`numpy.searchsorted` call
  (``index = searchsorted(flat, row_id + u) - row_id * width``);
* per-slice bookkeeping is reduced to recording the joint-state /
  command / service histories, which are folded into totals, command
  counts, occupancies and loss counters once per chunk with fancy
  gathers and ``bincount``.

The joint transition row ``T_a[x, ·]`` is sampled in factorized form
(SP row, then SR row, then the queue's service Bernoulli) rather than
as one ``|X|``-wide categorical: the factor rows are exactly the product
measure of paper Eq. 4, cost O(log(S) + log(R)) instead of O(S·R·Q) per
draw, and — unlike a collapsed joint draw — keep the physical
arrival/service/loss counters exact (a joint next-state alone cannot
distinguish "serviced" from "lost" when the queue ends full).

Within one slice the batch consumes uniforms in the same order as the
reference loop (policy, SP, SR, service), which the seeded-equivalence
suite exploits: with one lane, an always-issuing workload and a fully
randomized policy, loop and vector trajectories coincide draw for draw.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import CostModel
from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.policies.base import PolicyAgent, StationaryAgent
from repro.sim.backends.base import (
    SimulationBackend,
    SimulationTables,
    resolve_initial_state,
)
from repro.sim.result import SimulationResult
from repro.sim.rng import categorical_cumsum
from repro.sim.stats import SampleStats
from repro.util.validation import ValidationError

#: Deterministic-row threshold, matching StationaryPolicyAgent.
_DETERMINISTIC_TOL = 1e-12

#: Target uniform-block size (doubles) per chunk draw.
_CHUNK_BUDGET = 16_384

#: Slice cap per chunk (bounds history buffers for tiny batches).
_MAX_CHUNK = 2_048


def resolve_chunk(
    n_lanes: int,
    n_kinds: int,
    remaining_max: int,
    chunk_slices: int | None,
) -> int:
    """Slices the next chunk should step.

    The shared chunk-sizing rule for every batch backend (vector and
    jit step identical chunks so their uniform blocks — and therefore
    their RNG streams and float-summation trees — coincide):

    * ``chunk_slices`` pinned: exactly that many slices, capped by the
      longest remaining lane.  This is the power-user/fleet mode —
      results are bitwise reproducible *for a fixed pin*, but changing
      the pin regroups the chunk-local partial sums of the float
      metric totals (integer counters and trajectories are
      chunk-invariant because uniforms are consumed in ``(slice, kind,
      lane)`` order regardless of chunking).
    * otherwise: the lane-count-scaled uniform budget
      (``_CHUNK_BUDGET`` doubles per draw), capped at ``_MAX_CHUNK``
      slices so history buffers stay small for tiny batches.
    """
    if chunk_slices is not None:
        chunk_slices = int(chunk_slices)
        if chunk_slices <= 0:
            raise ValidationError(
                f"chunk_slices must be > 0, got {chunk_slices}"
            )
        return int(min(chunk_slices, remaining_max))
    budget = max(1, _CHUNK_BUDGET // (n_kinds * n_lanes))
    return int(min(_MAX_CHUNK, budget, remaining_max))


def _offset_cumsum(cumsum_rows: np.ndarray) -> np.ndarray:
    """Concatenate cumulative rows into one sorted offset array.

    Row ``i`` (ending at exactly 1.0) is shifted to span ``(i, i + 1]``,
    so ``searchsorted(flat, i + u, side="right") - i * width`` is the
    row-local ``side="right"`` categorical index.  The shifted
    comparison can differ from the unshifted one only when ``u`` lies
    within one rounding ulp of a cumulative entry — a measure-~1e-13
    event per draw that the equivalence suite bounds.
    """
    rows = cumsum_rows.reshape(-1, cumsum_rows.shape[-1])
    return (rows + np.arange(rows.shape[0])[:, None]).ravel()


@dataclass(frozen=True)
class CompiledPolicyBatch:
    """Policy matrices compiled for batched joint-state lookup.

    All arrays are flattened policy-major (index ``p * n_states + x``)
    so a single gather resolves any (policy, joint-state) pair.

    Attributes
    ----------
    n_states / n_commands:
        System dimensions the batch was compiled against.
    offset_cumsum:
        ``(n_policies * n_states * n_commands,)`` offset cumulative
        rows for one-searchsorted command sampling.
    greedy:
        Argmax command per (policy, state).
    deterministic_row:
        Rows carrying all mass on one command (no uniform consumed by
        the reference agent).
    fully_deterministic:
        True when *no* row anywhere in the batch needs a draw.
    sp_row / sigma:
        For the fully-deterministic fast path: the SP transition row id
        ``a(x) * n_sp + s(x)`` and service probability of the greedy
        command, per (policy, state).
    """

    n_states: int
    n_commands: int
    offset_cumsum: np.ndarray
    greedy: np.ndarray
    deterministic_row: np.ndarray
    fully_deterministic: bool
    sp_row: np.ndarray
    sigma: np.ndarray

    @classmethod
    def compile(
        cls,
        system: PowerManagedSystem,
        policies: list[MarkovPolicy],
    ) -> "CompiledPolicyBatch":
        """Stack and compile ``policies`` against ``system``."""
        matrices = []
        for policy in policies:
            if (
                policy.n_states != system.n_states
                or policy.n_commands != system.n_commands
            ):
                raise ValidationError(
                    f"policy shape ({policy.n_states}, {policy.n_commands}) "
                    f"does not match system "
                    f"({system.n_states}, {system.n_commands})"
                )
            matrices.append(policy.matrix)
        stack = np.stack(matrices, axis=0)
        deterministic = stack.max(axis=2) > 1.0 - _DETERMINISTIC_TOL
        greedy = np.argmax(stack, axis=2)
        n_sp = system.provider.n_states
        s_of = np.arange(system.n_states) // (
            system.requester.n_states * system.queue.n_states
        )
        rates = system.provider.service_rate_matrix
        return cls(
            n_states=system.n_states,
            n_commands=system.n_commands,
            offset_cumsum=_offset_cumsum(categorical_cumsum(stack, axis=2)),
            greedy=greedy.reshape(-1),
            deterministic_row=deterministic.reshape(-1),
            fully_deterministic=bool(deterministic.all()),
            sp_row=(greedy * n_sp + s_of[None, :]).reshape(-1),
            sigma=rates[s_of[None, :], greedy].reshape(-1),
        )


@dataclass(frozen=True)
class _CompiledSystem:
    """System arrays flattened for the batched stepper."""

    sp_offset: np.ndarray  # ((A * S) * S,) offset cumsum, row a * S + s
    sr_offset: np.ndarray  # (R * R,) offset cumsum, row r
    rates_flat: np.ndarray  # (A * S,), index a * S + s
    s_of: np.ndarray  # (J,) joint -> SP state

    @classmethod
    def compile(cls, tables: SimulationTables) -> "_CompiledSystem":
        joint = np.arange(tables.n_sp * tables.n_sr * tables.n_sq)
        return cls(
            sp_offset=_offset_cumsum(tables.sp_cum),
            sr_offset=_offset_cumsum(tables.sr_cum),
            rates_flat=tables.rates.T.ravel(),
            s_of=joint // (tables.n_sr * tables.n_sq),
        )


class VectorBackend(SimulationBackend):
    """Compiled batch stepper for stationary Markov policies."""

    name = "vector"

    def supports(self, agent: PolicyAgent) -> bool:
        return isinstance(agent, StationaryAgent)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def simulate(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        n_slices: int,
        rng: np.random.Generator,
        initial_state=None,
        tables: SimulationTables | None = None,
        chunk_slices: int | None = None,
    ) -> SimulationResult:
        policy = self._require_stationary(agent, system)
        return self.simulate_batch(
            system,
            costs,
            [policy],
            n_slices,
            rng,
            initial_state=initial_state,
            n_replications=1,
            tables=tables,
            chunk_slices=chunk_slices,
        )[0][0]

    def simulate_batch(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        policies: list[MarkovPolicy],
        n_slices: int,
        rng: np.random.Generator,
        initial_state=None,
        n_replications: int = 1,
        tables: SimulationTables | None = None,
        chunk_slices: int | None = None,
    ) -> list[list[SimulationResult]]:
        """Simulate every policy ``n_replications`` times in one batch.

        All ``len(policies) * n_replications`` lanes advance together;
        the return value is one list of replication results per policy,
        in input order.
        """
        n_slices = int(n_slices)
        n_replications = int(n_replications)
        if n_slices <= 0:
            raise ValidationError(f"n_slices must be > 0, got {n_slices}")
        if n_replications <= 0:
            raise ValidationError(
                f"n_replications must be > 0, got {n_replications}"
            )
        if not policies:
            return []
        if tables is None:
            tables = SimulationTables.compile(system, costs)
        compiled = CompiledPolicyBatch.compile(system, policies)
        n_lanes = len(policies) * n_replications
        policy_of_lane = np.repeat(np.arange(len(policies)), n_replications)
        s0, r0, q0 = resolve_initial_state(system, initial_state)
        lengths = np.full(n_lanes, n_slices, dtype=np.int64)
        acc = self.step_lanes(
            tables,
            compiled,
            policy_of_lane,
            lengths,
            (s0, r0, q0),
            rng,
            chunk_slices=chunk_slices,
        )
        results = [
            _lane_result(tables, acc, lane, n_slices)
            for lane in range(n_lanes)
        ]
        return [
            results[p * n_replications : (p + 1) * n_replications]
            for p in range(len(policies))
        ]

    def simulate_sessions(
        self,
        system: PowerManagedSystem,
        costs: CostModel,
        agent: PolicyAgent,
        gamma: float,
        n_sessions: int,
        rng: np.random.Generator,
        initial_state=None,
        max_session_slices: int | None = None,
        chunk_slices: int | None = None,
    ) -> dict[str, SampleStats]:
        """Geometric sessions, packed into the batch dimension.

        All session lengths are drawn up front; every session then runs
        as one lane of a single batch, with finished lanes compacted
        away chunk by chunk, so the whole estimate costs one compiled
        stepping pass instead of ``n_sessions`` separate runs.
        """
        policy = self._require_stationary(agent, system)
        tables = SimulationTables.compile(system, costs)
        compiled = CompiledPolicyBatch.compile(system, [policy])
        n_sessions = int(n_sessions)
        lengths = rng.geometric(1.0 - gamma, size=n_sessions).astype(np.int64)
        if max_session_slices is not None:
            np.minimum(lengths, int(max_session_slices), out=lengths)
        np.maximum(lengths, 1, out=lengths)
        s0, r0, q0 = resolve_initial_state(system, initial_state)
        policy_of_lane = np.zeros(n_sessions, dtype=np.int64)
        acc = self.step_lanes(
            tables,
            compiled,
            policy_of_lane,
            lengths,
            (s0, r0, q0),
            rng,
            chunk_slices=chunk_slices,
        )
        return {
            name: SampleStats.from_samples(acc.totals[i])
            for i, name in enumerate(tables.metric_names)
        }

    # ------------------------------------------------------------------
    # the stepping entry point (overridden by the jit tier)
    # ------------------------------------------------------------------
    def step_lanes(
        self,
        tables: SimulationTables,
        compiled: CompiledPolicyBatch,
        policy_of_lane: np.ndarray,
        lengths: np.ndarray,
        start: tuple,
        rng,
        chunk_slices: int | None = None,
    ) -> "_LaneAccumulators":
        """Advance every lane; see :func:`_step_lanes` for the contract.

        Routing the batch APIs through this method is what lets
        :class:`~repro.sim.backends.jit.JitBackend` reuse them wholesale
        — it overrides only this hook with the compiled kernel.
        """
        return _step_lanes(
            tables,
            compiled,
            policy_of_lane,
            lengths,
            start,
            rng,
            chunk_slices=chunk_slices,
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _require_stationary(
        agent: PolicyAgent, system: PowerManagedSystem
    ) -> MarkovPolicy:
        if not isinstance(agent, StationaryAgent):
            raise ValidationError(
                f"the vector backend requires a stationary Markov policy; "
                f"{agent.describe()} is not marked StationaryAgent — "
                f"use the loop backend"
            )
        agent.reset()
        return agent.stationary_policy(system)


@dataclass
class _LaneAccumulators:
    """Per-lane counters collected by :func:`_step_lanes`."""

    totals: np.ndarray  # (n_metrics, n_lanes)
    command_counts: np.ndarray  # (n_lanes, n_commands)
    provider_occupancy: np.ndarray  # (n_lanes, n_sp)
    arrivals: np.ndarray  # (n_lanes,)
    serviced: np.ndarray  # (n_lanes,)
    lost: np.ndarray  # (n_lanes,)
    loss_events: np.ndarray  # (n_lanes,)
    final_state: np.ndarray  # (n_lanes, 3)


def _lane_result(
    tables: SimulationTables, acc: _LaneAccumulators, lane: int, n_slices: int
) -> SimulationResult:
    totals = acc.totals[:, lane]
    names = tables.metric_names
    return SimulationResult(
        n_slices=n_slices,
        averages={
            name: float(totals[i]) / n_slices for i, name in enumerate(names)
        },
        totals={name: float(totals[i]) for i, name in enumerate(names)},
        arrivals=int(acc.arrivals[lane]),
        serviced=int(acc.serviced[lane]),
        lost=int(acc.lost[lane]),
        loss_event_slices=int(acc.loss_events[lane]),
        command_counts=acc.command_counts[lane].copy(),
        provider_occupancy=acc.provider_occupancy[lane].copy(),
        final_state=tuple(int(v) for v in acc.final_state[lane]),
    )


def _step_lanes(
    tables: SimulationTables,
    compiled: CompiledPolicyBatch,
    policy_of_lane: np.ndarray,
    lengths: np.ndarray,
    start: tuple,
    rng: np.random.Generator,
    chunk_slices: int | None = None,
) -> _LaneAccumulators:
    """Advance every lane through its own number of slices.

    Equal lengths run with no masking; ragged lengths (session mode)
    mask finished lanes within a chunk and compact them away between
    chunks, so wasted work is bounded by one chunk per lane.

    ``start`` may hold scalars (every lane begins in the same
    ``(provider, requester, queue)`` state) or int arrays of one entry
    per lane — the fleet runtime resumes each device from wherever it
    stopped.  ``chunk_slices`` pins the chunk length instead of the
    lane-count-dependent uniform budget; the fleet runtime uses this so
    a device consumes its stream through identical reduction boundaries
    no matter how many lanes it is grouped with (fleet determinism is
    bitwise, not just statistical).  ``rng`` is anything satisfying the
    :class:`~repro.sim.rng.UniformSource` protocol — a plain generator,
    or a per-lane producer like :class:`~repro.sim.rng.FanInSource` /
    :class:`~repro.sim.rng_batched.BatchedPCG64Source` drawing each
    lane's uniforms from that device's own stream.
    """
    n_metrics = tables.metric_stack.shape[0]
    n_commands = tables.n_commands
    n_sp, n_sr, n_sq = tables.n_sp, tables.n_sr, tables.n_sq
    n_states = n_sp * n_sr * n_sq
    capacity = tables.capacity
    n_total = int(policy_of_lane.shape[0])
    system_flat = _CompiledSystem.compile(tables)

    acc = _LaneAccumulators(
        totals=np.zeros((n_metrics, n_total)),
        command_counts=np.zeros((n_total, n_commands), dtype=np.int64),
        provider_occupancy=np.zeros((n_total, n_sp), dtype=np.int64),
        arrivals=np.zeros(n_total, dtype=np.int64),
        serviced=np.zeros(n_total, dtype=np.int64),
        lost=np.zeros(n_total, dtype=np.int64),
        loss_events=np.zeros(n_total, dtype=np.int64),
        final_state=np.zeros((n_total, 3), dtype=np.int64),
    )

    # Live lane state; lanes are compacted away as they finish.
    lane_ids = np.arange(n_total)
    remaining = lengths.astype(np.int64).copy()
    pol_base = policy_of_lane.astype(np.int64) * n_states
    s0 = np.broadcast_to(np.asarray(start[0], dtype=np.int64), (n_total,))
    r = np.broadcast_to(np.asarray(start[1], dtype=np.int64), (n_total,))
    q = np.broadcast_to(np.asarray(start[2], dtype=np.int64), (n_total,))
    x = (s0 * n_sr + r) * n_sq + q

    deterministic = compiled.fully_deterministic
    n_kinds = 3 if deterministic else 4
    metric_flat = tables.metric_stack.reshape(n_metrics, -1)  # (M, X*A)
    arrivals_of = tables.arrivals_of
    issuing = tables.issuing
    sp_offset = system_flat.sp_offset
    sr_offset = system_flat.sr_offset
    rates_flat = system_flat.rates_flat
    s_of = system_flat.s_of
    pol_offset = compiled.offset_cumsum
    greedy = compiled.greedy
    det_row = compiled.deterministic_row
    sp_row_det = compiled.sp_row
    sigma_det = compiled.sigma
    any_det_rows = bool(det_row.any())

    while lane_ids.size:
        n_lanes = lane_ids.size
        single_policy = bool(pol_base[0] == 0 and (pol_base == 0).all())
        chunk = resolve_chunk(
            n_lanes, n_kinds, int(remaining.max()), chunk_slices
        )
        uniforms = rng.random((chunk, n_kinds, n_lanes))
        # Joint-state/command/service histories, folded in after the
        # chunk; x_hist has one extra row holding the post-chunk state.
        x_hist = np.empty((chunk + 1, n_lanes), dtype=np.int64)
        served_hist = np.empty((chunk, n_lanes), dtype=bool)
        a_hist = (
            None if deterministic else np.empty((chunk, n_lanes), dtype=np.int64)
        )

        for k in range(chunk):
            x_hist[k] = x
            rowx = x if single_policy else pol_base + x
            if deterministic:
                sp_row = sp_row_det[rowx]
                sigma = sigma_det[rowx]
            else:
                a = (
                    np.searchsorted(
                        pol_offset, rowx + uniforms[k, 0], side="right"
                    )
                    - rowx * n_commands
                )
                # Row-local indices are provably >= 0; only the top end
                # needs a rounding guard (np.clip is ~7x costlier).
                np.minimum(a, n_commands - 1, out=a)
                if any_det_rows:
                    det = det_row[rowx]
                    a = np.where(det, greedy[rowx], a)
                a_hist[k] = a
                sp_row = a * n_sp + s_of[x]
                sigma = rates_flat[sp_row]
            s_next = (
                np.searchsorted(
                    sp_offset, sp_row + uniforms[k, n_kinds - 3], side="right"
                )
                - sp_row * n_sp
            )
            np.minimum(s_next, n_sp - 1, out=s_next)
            r_next = (
                np.searchsorted(
                    sr_offset, r + uniforms[k, n_kinds - 2], side="right"
                )
                - r * n_sr
            )
            np.minimum(r_next, n_sr - 1, out=r_next)
            pending = q + arrivals_of[r_next]
            served = (uniforms[k, n_kinds - 1] < sigma) & (pending > 0)
            served_hist[k] = served
            q = np.minimum(pending - served, capacity)
            x = (s_next * n_sr + r_next) * n_sq + q
            r = r_next
        x_hist[chunk] = x

        # --- fold the chunk histories into the per-lane accumulators ---
        alive = remaining > np.arange(chunk, dtype=np.int64)[:, None]
        full = bool(alive.all())
        weights = None if full else alive.ravel().astype(np.float64)
        x_cur = x_hist[:-1]
        if deterministic:
            a_hist = greedy[x_cur if single_policy else pol_base + x_cur]
        q_cur = x_cur % n_sq
        r_cur = (x_cur // n_sq) % n_sr
        s_cur = x_cur // (n_sr * n_sq)
        q_next = x_hist[1:] % n_sq
        r_next_h = (x_hist[1:] // n_sq) % n_sr

        cost_rows = metric_flat[:, x_cur * n_commands + a_hist]
        if full:
            acc.totals[:, lane_ids] += cost_rows.sum(axis=1)
        else:
            acc.totals[:, lane_ids] += np.einsum(
                "mkl,kl->ml", cost_rows, alive.astype(np.float64)
            )

        lane_local = np.arange(n_lanes)
        cmd_flat = np.bincount(
            (lane_local[None, :] * n_commands + a_hist).ravel(),
            weights=weights,
            minlength=n_lanes * n_commands,
        )
        acc.command_counts[lane_ids] += np.rint(cmd_flat).astype(
            np.int64
        ).reshape(n_lanes, n_commands)
        occ_flat = np.bincount(
            (lane_local[None, :] * n_sp + s_cur).ravel(),
            weights=weights,
            minlength=n_lanes * n_sp,
        )
        acc.provider_occupancy[lane_ids] += np.rint(occ_flat).astype(
            np.int64
        ).reshape(n_lanes, n_sp)

        z = arrivals_of[r_next_h]
        pending_h = q_cur + z
        lost_h = pending_h - served_hist - q_next
        events = issuing[r_cur] & (q_cur == capacity)
        if not full:
            z = z * alive
            served_w = served_hist * alive
            lost_h = lost_h * alive
            events = events & alive
        else:
            served_w = served_hist
        acc.arrivals[lane_ids] += z.sum(axis=0)
        acc.serviced[lane_ids] += served_w.sum(axis=0)
        acc.lost[lane_ids] += lost_h.sum(axis=0)
        acc.loss_events[lane_ids] += events.sum(axis=0)

        # Record final states of lanes that finished inside this chunk
        # (their state at remaining slices is x_hist[remaining]).
        finished = remaining <= chunk
        if finished.any():
            idx = np.nonzero(finished)[0]
            x_fin = x_hist[remaining[idx], idx]
            fin_ids = lane_ids[idx]
            acc.final_state[fin_ids, 0] = x_fin // (n_sr * n_sq)
            acc.final_state[fin_ids, 1] = (x_fin // n_sq) % n_sr
            acc.final_state[fin_ids, 2] = x_fin % n_sq

        remaining -= chunk
        if finished.any():
            keep = ~finished
            lane_ids = lane_ids[keep]
            remaining = remaining[keep]
            pol_base = pol_base[keep]
            x = x[keep]
            r = r[keep]
            q = q[keep]
    return acc


#: Public entry points for :mod:`repro.runtime`, which drives the
#: joint-state kernel directly (per-lane resume states, pinned chunk
#: length, per-device uniform fan-in) instead of going through the
#: one-shot ``simulate_batch`` API.
step_lanes = _step_lanes
LaneAccumulators = _LaneAccumulators
