"""Markov-driven simulation of a power-managed system under a policy.

The engine reproduces the composed chain's semantics *component by
component* so that heuristic agents with internal state (timeouts,
predictors) can be simulated alongside stationary policies:

at each slice ``t`` with joint state ``X_t = (s, r, q)``:

1. the agent observes ``X_t`` and issues command ``a``;
2. every cost metric accrues its ``matrix[X_t, a]`` value;
3. the SP moves ``s -> s'`` with ``P_SP^a``, the SR moves ``r -> r'``
   with ``P_SR`` and ``z(r')`` requests arrive;
4. the queue updates with service probability ``sigma(s, a)`` applied
   to ``q + z(r')`` pending requests (paper Eq. 3); overflow is counted
   as lost.

For a stationary Markov policy this is distributed identically to the
joint chain of :class:`~repro.core.system.PowerManagedSystem` — the
equivalence is verified in the test suite against the closed-form
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostModel
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, PolicyAgent
from repro.sim.stats import SampleStats
from repro.util.validation import ValidationError, check_probability


@dataclass
class SimulationResult:
    """Aggregate output of a Markov-driven simulation run.

    Attributes
    ----------
    n_slices:
        Simulated slices.
    averages:
        Metric name -> per-slice average of the accumulated metric
        (directly comparable to the optimizer's per-slice averages).
    totals:
        Metric name -> undiscounted sum over the run.
    arrivals / serviced / lost:
        Physical request counters: requests that arrived, completed
        service, and overflowed the queue.
    loss_event_slices:
        Slices in which the loss-risk condition held (SR issuing with a
        full queue) — the paper's request-loss metric.
    command_counts:
        Times each command was issued.
    provider_occupancy:
        Slices spent in each SP state.
    final_state:
        Joint ``(provider, requester, queue)`` indices after the run.
    """

    n_slices: int
    averages: dict[str, float]
    totals: dict[str, float]
    arrivals: int
    serviced: int
    lost: int
    loss_event_slices: int
    command_counts: np.ndarray = field(repr=False)
    provider_occupancy: np.ndarray = field(repr=False)
    final_state: tuple[int, int, int] = (0, 0, 0)


def _resolve_initial_state(system: PowerManagedSystem, initial_state):
    if initial_state is None:
        return 0, 0, 0
    provider, requester, queue = initial_state
    s = system.provider.chain.state_index(provider)
    r = system.requester.chain.state_index(requester)
    q = int(queue)
    if not 0 <= q <= system.queue.capacity:
        raise ValidationError(
            f"queue length {q} out of range [0, {system.queue.capacity}]"
        )
    return s, r, q


def simulate(
    system: PowerManagedSystem,
    costs: CostModel,
    agent: PolicyAgent,
    n_slices: int,
    rng: np.random.Generator,
    initial_state=None,
) -> SimulationResult:
    """Simulate ``agent`` on ``system`` for ``n_slices`` slices.

    Parameters
    ----------
    system:
        The composed system to simulate.
    costs:
        Metrics to accumulate (every registered metric is reported).
    agent:
        The power-management policy; ``agent.reset()`` is called first.
    n_slices:
        Number of slices to run.
    rng:
        Random generator driving all stochastic choices.
    initial_state:
        ``(provider, requester, queue)`` start (names or indices);
        defaults to all components in their first state, empty queue.
    """
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")

    s, r, q = _resolve_initial_state(system, initial_state)
    agent.reset()

    metric_names = list(costs.metric_names)
    metric_stack = np.stack([costs.metric(name) for name in metric_names], axis=0)

    sp_cum = np.cumsum(system.provider.chain.tensor, axis=2)  # (A, S, S)
    sr_cum = np.cumsum(system.requester.chain.matrix, axis=1)  # (R, R)
    rates = system.provider.service_rate_matrix  # (S, A)
    arrivals_of = system.requester.arrival_counts  # (R,)
    capacity = system.queue.capacity
    n_sr = system.requester.n_states
    n_sq = system.queue.n_states
    n_sp_states = system.provider.n_states
    issuing = arrivals_of > 0

    totals = np.zeros(len(metric_names))
    command_counts = np.zeros(system.n_commands, dtype=np.int64)
    provider_occupancy = np.zeros(n_sp_states, dtype=np.int64)
    total_arrivals = 0
    total_serviced = 0
    total_lost = 0
    loss_event_slices = 0
    prev_arrivals = 0

    for t in range(n_slices):
        observation = Observation(
            provider_state=s,
            requester_state=r,
            queue_length=q,
            arrivals=prev_arrivals,
            slice_index=t,
        )
        a = int(agent.select_command(observation, rng))
        if not 0 <= a < system.n_commands:
            raise ValidationError(
                f"agent returned command {a}, valid range is "
                f"[0, {system.n_commands})"
            )

        joint = (s * n_sr + r) * n_sq + q
        totals += metric_stack[:, joint, a]
        command_counts[a] += 1
        provider_occupancy[s] += 1
        if issuing[r] and q == capacity:
            loss_event_slices += 1

        # --- transition -------------------------------------------------
        s_next = int(np.searchsorted(sp_cum[a, s], rng.random()))
        if s_next >= n_sp_states:  # cumsum rounding guard
            s_next = n_sp_states - 1
        r_next = int(np.searchsorted(sr_cum[r], rng.random()))
        if r_next >= n_sr:
            r_next = n_sr - 1
        z = int(arrivals_of[r_next])
        pending = q + z
        served = 0
        if pending > 0 and rng.random() < rates[s, a]:
            served = 1
        q_next = min(pending - served, capacity)
        lost = max(pending - served - capacity, 0)

        total_arrivals += z
        total_serviced += served
        total_lost += lost
        prev_arrivals = z
        s, r, q = s_next, r_next, q_next

    averages = {
        name: float(totals[i]) / n_slices for i, name in enumerate(metric_names)
    }
    return SimulationResult(
        n_slices=n_slices,
        averages=averages,
        totals={name: float(totals[i]) for i, name in enumerate(metric_names)},
        arrivals=total_arrivals,
        serviced=total_serviced,
        lost=total_lost,
        loss_event_slices=loss_event_slices,
        command_counts=command_counts,
        provider_occupancy=provider_occupancy,
        final_state=(s, r, q),
    )


def simulate_sessions(
    system: PowerManagedSystem,
    costs: CostModel,
    agent: PolicyAgent,
    gamma: float,
    n_sessions: int,
    rng: np.random.Generator,
    initial_state=None,
    max_session_slices: int | None = None,
) -> dict[str, SampleStats]:
    """Estimate *discounted* totals by simulating geometric sessions.

    The discounted formulation of Section IV equals the expected
    undiscounted sum over a session of geometric length with mean
    ``1/(1-gamma)`` (the trap-state construction, Fig. 5).  Each session
    draws its length accordingly, runs the engine, and contributes one
    sample of each metric's session total; the returned statistics
    estimate the LP's discounted objective values.

    Parameters
    ----------
    gamma:
        Discount factor in (0, 1).
    n_sessions:
        Independent sessions to run (each resets the agent and state).
    max_session_slices:
        Optional cap on a single session's length (guards runaway
        budgets when ``gamma`` is very close to one).
    """
    gamma = check_probability(gamma, "gamma")
    if not 0.0 < gamma < 1.0:
        raise ValidationError(f"gamma must be in (0, 1), got {gamma!r}")
    n_sessions = int(n_sessions)
    if n_sessions <= 0:
        raise ValidationError(f"n_sessions must be > 0, got {n_sessions}")

    samples: dict[str, list[float]] = {name: [] for name in costs.metric_names}
    for _ in range(n_sessions):
        length = int(rng.geometric(1.0 - gamma))
        if max_session_slices is not None:
            length = min(length, int(max_session_slices))
        length = max(length, 1)
        result = simulate(system, costs, agent, length, rng, initial_state)
        for name in samples:
            samples[name].append(result.totals[name])
    return {
        name: SampleStats.from_samples(values) for name, values in samples.items()
    }
