"""Simulation entry points: backend dispatch and the batch API.

The actual stepping lives in :mod:`repro.sim.backends`; this module is
the single dispatch point every caller (experiments, Pareto sweeps, the
CLI pipeline, benchmarks) routes through:

* :func:`simulate` — one agent, one trajectory.  ``backend="auto"``
  always resolves to the reference loop: a single lane gives the
  vectorized stepper nothing to amortize over, and keeping the default
  on the loop preserves seeded results bit for bit.
* :func:`simulate_many` / :func:`simulate_replications` — the batch
  API.  Stationary Markov policies are grouped into one vectorized
  batch (many policies x many replications stepped together);
  stateful heuristics fall back to per-run loops, each with its own
  child generator.
* :func:`simulate_sessions` — geometric-session estimates of the
  discounted totals (paper Section IV).  For stationary policies the
  sessions are packed into the batch dimension and stepped by the
  batch tier.

Every function accepts ``backend`` in ``{"auto", "loop", "vector",
"jit"}``; requesting ``"vector"``/``"jit"`` for an agent that is not
provably stationary raises
:class:`~repro.util.validation.ValidationError`, and requesting
``"jit"`` without numba installed fails with a message listing the
importable backends.  ``"auto"`` prefers the jit tier for batched
stationary runs when numba imports and falls back to ``"vector"``
(byte-identical results) when it does not.

The batch entry points also expose ``chunk_slices``: the number of
slices stepped per uniform-block draw.  ``None`` (default) keeps the
lane-count-scaled heuristic.  Pinning it is what the fleet runtime
does for bitwise grouping-invariance; note that *changing* the pin
regroups the chunk-local partial sums of the float metric totals, so
results are chunk-invariant only at the integer-trajectory level
(uniform consumption, counters, final states) — the documented
reproducibility caveat.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.core.policy import MarkovPolicy
from repro.core.system import PowerManagedSystem
from repro.policies.base import PolicyAgent
from repro.sim.backends import (
    get_backend,
    is_vectorizable,
    preferred_batch_backend,
    resolve_backend,
)
from repro.sim.backends.base import resolve_initial_state
from repro.sim.result import SimulationResult
from repro.sim.rng import child_rngs
from repro.sim.stats import SampleStats
from repro.util.validation import ValidationError, check_probability

__all__ = [
    "SimulationResult",
    "simulate",
    "simulate_many",
    "simulate_replications",
    "simulate_sessions",
]

# Backwards-compatible alias (pre-backend refactor name).
_resolve_initial_state = resolve_initial_state


def _check_n_slices(n_slices: int) -> int:
    n_slices = int(n_slices)
    if n_slices <= 0:
        raise ValidationError(f"n_slices must be > 0, got {n_slices}")
    return n_slices


def _as_agent(candidate, system: PowerManagedSystem) -> PolicyAgent:
    """Accept agents or bare policy matrices in batch entry points."""
    if isinstance(candidate, PolicyAgent):
        return candidate
    if isinstance(candidate, MarkovPolicy):
        from repro.policies.stochastic import StationaryPolicyAgent

        return StationaryPolicyAgent(system, candidate)
    raise ValidationError(
        f"expected a PolicyAgent or MarkovPolicy, got {type(candidate).__name__}"
    )


def simulate(
    system: PowerManagedSystem,
    costs: CostModel,
    agent: PolicyAgent,
    n_slices: int,
    rng: np.random.Generator,
    initial_state=None,
    backend: str = "auto",
    chunk_slices: int | None = None,
) -> SimulationResult:
    """Simulate ``agent`` on ``system`` for ``n_slices`` slices.

    Parameters
    ----------
    system:
        The composed system to simulate.
    costs:
        Metrics to accumulate (every registered metric is reported).
    agent:
        The power-management policy; ``agent.reset()`` is called first.
    n_slices:
        Number of slices to run.
    rng:
        Random generator driving all stochastic choices.
    initial_state:
        ``(provider, requester, queue)`` start (names or indices);
        defaults to all components in their first state, empty queue.
    backend:
        ``"auto"`` (the reference loop for single runs), ``"loop"``,
        ``"vector"``, or ``"jit"`` (stationary policies only).
    chunk_slices:
        Pin the batch tier's chunk length (see :func:`simulate_many`);
        ignored by the loop backend.
    """
    n_slices = _check_n_slices(n_slices)
    chosen = resolve_backend(backend, agent, batch_size=1)
    return chosen.simulate(
        system, costs, agent, n_slices, rng, initial_state,
        chunk_slices=chunk_slices,
    )


def simulate_many(
    system: PowerManagedSystem,
    costs: CostModel,
    agents: Sequence[PolicyAgent | MarkovPolicy],
    n_slices: int,
    rng: np.random.Generator | int | None = None,
    *,
    n_replications: int = 1,
    initial_state=None,
    backend: str = "auto",
    chunk_slices: int | None = None,
) -> list[list[SimulationResult]]:
    """Simulate many agents/policies, ``n_replications`` runs each.

    The workhorse behind policy sweeps and replication studies: all
    stationary Markov policies in ``agents`` are compiled into a single
    vectorized batch (one lane per policy x replication), while
    stateful heuristics run through the reference loop one trajectory
    at a time.  Bare :class:`~repro.core.policy.MarkovPolicy` entries
    are wrapped automatically.

    Parameters
    ----------
    rng:
        A generator, a seed, or ``None`` (fresh entropy).  Each loop
        run and the vector batch get independent child streams, so
        results are reproducible from one seed.  Note that streams are
        assigned by position: reordering the agent list, changing the
        backend grouping, or moving an agent between groups changes the
        uniforms each run consumes (the estimates stay exchangeable,
        the trajectories do not).
    backend:
        ``"auto"`` (batch what can be proven stationary, when the run
        is actually batched, through the preferred batch tier — jit if
        numba imports, else vector), ``"loop"`` (everything through
        the reference loop), or ``"vector"``/``"jit"`` (require every
        agent to be stationary).
    chunk_slices:
        Pin the batch tier's chunk length (slices per uniform-block
        draw) instead of the lane-count-scaled heuristic.  Integer
        trajectories and counters are chunk-invariant; float metric
        totals are bitwise-reproducible only for a *fixed* pin (see
        the module docstring).  Ignored by the loop backend.

    Returns
    -------
    list[list[SimulationResult]]
        One list of ``n_replications`` results per agent, input order.
    """
    n_slices = _check_n_slices(n_slices)
    n_replications = int(n_replications)
    if n_replications <= 0:
        raise ValidationError(
            f"n_replications must be > 0, got {n_replications}"
        )
    resolved = [_as_agent(a, system) for a in agents]
    if not resolved:
        return []

    batch_backend = None
    if backend in ("vector", "jit"):
        batch_backend = get_backend(backend)
        for agent in resolved:
            if not batch_backend.supports(agent):
                raise ValidationError(
                    f"backend {backend!r} does not support "
                    f"{agent.describe()}; use backend='loop'"
                )
        vector_idx = list(range(len(resolved)))
    elif backend == "loop":
        vector_idx = []
    elif backend == "auto":
        vector_idx = [
            i for i, agent in enumerate(resolved) if is_vectorizable(agent)
        ]
        # A single-lane "batch" has nothing to amortize; keep it on the
        # loop, consistent with resolve_backend() and simulate().
        if len(vector_idx) * n_replications <= 1:
            vector_idx = []
        if vector_idx:
            batch_backend = preferred_batch_backend()
    else:
        get_backend(backend)  # raises with the canonical message
        vector_idx = []

    vectorized = set(vector_idx)
    loop_idx = [i for i in range(len(resolved)) if i not in vectorized]
    # Child streams: one for the whole batched run, then one per
    # (loop agent, replication) pair in agent-major order.
    streams = child_rngs(rng, 1 + len(loop_idx) * n_replications)
    results: list[list[SimulationResult] | None] = [None] * len(resolved)

    if vector_idx:
        policies = [
            resolved[i].stationary_policy(system) for i in vector_idx
        ]
        batched = batch_backend.simulate_batch(
            system,
            costs,
            policies,
            n_slices,
            streams[0],
            initial_state=initial_state,
            n_replications=n_replications,
            chunk_slices=chunk_slices,
        )
        for slot, replications in zip(vector_idx, batched):
            results[slot] = replications
    if loop_idx:
        loop = get_backend("loop")
        loop_results = loop.simulate_many(
            system,
            costs,
            [resolved[i] for i in loop_idx],
            n_slices,
            streams[1:],
            initial_state=initial_state,
            n_replications=n_replications,
        )
        for slot, replications in zip(loop_idx, loop_results):
            results[slot] = replications
    return results  # type: ignore[return-value]


def simulate_replications(
    system: PowerManagedSystem,
    costs: CostModel,
    agent: PolicyAgent | MarkovPolicy,
    n_slices: int,
    n_replications: int,
    rng: np.random.Generator | int | None = None,
    *,
    initial_state=None,
    backend: str = "auto",
    chunk_slices: int | None = None,
) -> list[SimulationResult]:
    """Independent replications of one agent (batched when possible)."""
    return simulate_many(
        system,
        costs,
        [agent],
        n_slices,
        rng,
        n_replications=n_replications,
        initial_state=initial_state,
        backend=backend,
        chunk_slices=chunk_slices,
    )[0]


def simulate_sessions(
    system: PowerManagedSystem,
    costs: CostModel,
    agent: PolicyAgent,
    gamma: float,
    n_sessions: int,
    rng: np.random.Generator,
    initial_state=None,
    max_session_slices: int | None = None,
    backend: str = "auto",
    chunk_slices: int | None = None,
) -> dict[str, SampleStats]:
    """Estimate *discounted* totals by simulating geometric sessions.

    The discounted formulation of Section IV equals the expected
    undiscounted sum over a session of geometric length with mean
    ``1/(1-gamma)`` (the trap-state construction, Fig. 5).  Each session
    draws its length accordingly, runs the engine, and contributes one
    sample of each metric's session total; the returned statistics
    estimate the LP's discounted objective values.

    For stationary Markov policies ``backend="auto"`` packs all the
    sessions into the batch dimension of the vector backend (lengths
    drawn up front, finished sessions compacted away); heuristics run
    session by session through the loop.

    Parameters
    ----------
    gamma:
        Discount factor in (0, 1).
    n_sessions:
        Independent sessions to run (each resets the agent and state).
    max_session_slices:
        Optional cap on a single session's length (guards runaway
        budgets when ``gamma`` is very close to one).
    backend:
        ``"auto"``, ``"loop"``, ``"vector"``, or ``"jit"``.
    chunk_slices:
        Pin the batch tier's chunk length (see :func:`simulate_many`);
        ignored by the loop backend.
    """
    gamma = check_probability(gamma, "gamma")
    if not 0.0 < gamma < 1.0:
        raise ValidationError(f"gamma must be in (0, 1), got {gamma!r}")
    n_sessions = int(n_sessions)
    if n_sessions <= 0:
        raise ValidationError(f"n_sessions must be > 0, got {n_sessions}")

    chosen = resolve_backend(backend, agent, batch_size=n_sessions)
    return chosen.simulate_sessions(
        system,
        costs,
        agent,
        gamma,
        n_sessions,
        rng,
        initial_state=initial_state,
        max_session_slices=max_session_slices,
        chunk_slices=chunk_slices,
    )
