"""Slotted-time stochastic simulation of power-managed systems.

The paper's tool verifies every optimized policy by simulation (Fig. 7):
once against the Markov workload model ("to check consistency") and
once driven by the actual request trace ("to check the quality of the
Markov model of the service provider").  This package implements both
modes, behind pluggable backends (:mod:`repro.sim.backends`):

* :func:`~repro.sim.engine.simulate` — Markov-driven simulation of the
  composed system under any :class:`~repro.policies.base.PolicyAgent`;
* :func:`~repro.sim.engine.simulate_many` /
  :func:`~repro.sim.engine.simulate_replications` — the batch API:
  policy sweeps and replication studies, vectorized for stationary
  Markov policies;
* :func:`~repro.sim.engine.simulate_sessions` — geometric-session
  simulation estimating the *discounted* totals of Section IV directly;
* :func:`~repro.sim.trace_sim.simulate_trace` — trace-driven simulation
  where arrivals are replayed from a discretized request trace.
"""

from repro.sim.backends import (
    BACKEND_CHOICES,
    BACKENDS,
    OPTIONAL_BACKEND_NAMES,
    LoopBackend,
    SimulationBackend,
    VectorBackend,
    available_backends,
    get_backend,
    jit_available,
    preferred_batch_backend,
    resolve_backend,
)
from repro.sim.engine import (
    SimulationResult,
    simulate,
    simulate_many,
    simulate_replications,
    simulate_sessions,
)
from repro.sim.rng import (
    categorical_cumsum,
    child_rngs,
    make_rng,
    sample_categorical,
    sample_categorical_batch,
    spawn_rngs,
)
from repro.sim.stats import SampleStats, confidence_interval
from repro.sim.trace_sim import TraceSimulationResult, simulate_trace

__all__ = [
    "simulate",
    "simulate_many",
    "simulate_replications",
    "simulate_sessions",
    "simulate_trace",
    "SimulationResult",
    "TraceSimulationResult",
    "SampleStats",
    "confidence_interval",
    "make_rng",
    "spawn_rngs",
    "child_rngs",
    "categorical_cumsum",
    "sample_categorical",
    "sample_categorical_batch",
    "BACKENDS",
    "BACKEND_CHOICES",
    "OPTIONAL_BACKEND_NAMES",
    "SimulationBackend",
    "LoopBackend",
    "VectorBackend",
    "available_backends",
    "get_backend",
    "jit_available",
    "preferred_batch_backend",
    "resolve_backend",
]
