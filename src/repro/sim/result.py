"""The result record shared by every simulation backend.

Kept in its own module so the backend implementations and the
dispatching :mod:`repro.sim.engine` can both import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SimulationResult:
    """Aggregate output of a Markov-driven simulation run.

    Attributes
    ----------
    n_slices:
        Simulated slices.
    averages:
        Metric name -> per-slice average of the accumulated metric
        (directly comparable to the optimizer's per-slice averages).
    totals:
        Metric name -> undiscounted sum over the run.
    arrivals / serviced / lost:
        Physical request counters: requests that arrived, completed
        service, and overflowed the queue.
    loss_event_slices:
        Slices in which the loss-risk condition held (SR issuing with a
        full queue) — the paper's request-loss metric.
    command_counts:
        Times each command was issued.
    provider_occupancy:
        Slices spent in each SP state.
    final_state:
        Joint ``(provider, requester, queue)`` indices after the run.
    """

    n_slices: int
    averages: dict[str, float]
    totals: dict[str, float]
    arrivals: int
    serviced: int
    lost: int
    loss_event_slices: int
    command_counts: np.ndarray = field(repr=False)
    provider_occupancy: np.ndarray = field(repr=False)
    final_state: tuple[int, int, int] = (0, 0, 0)
