"""Trace-driven simulation (paper Section V, second simulation mode).

"A second simulation mode is available, where the request trace can be
used to directly drive the simulation.  This type of simulation is
employed to check the quality of the Markov model of the service
provider."

Arrivals are replayed from a discretized request trace instead of being
drawn from the SR chain.  The power manager still needs an SR state to
index its policy, so an :class:`ArrivalTracker` infers the "observed"
requester state from the arrival history — for k-memory extracted
models this is exactly the last-k-arrivals state of paper Example 5.1.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.components import ServiceRequester
from repro.core.system import PowerManagedSystem
from repro.policies.base import Observation, PolicyAgent
from repro.util.validation import ValidationError


class ArrivalTracker(abc.ABC):
    """Maps the observed arrival stream to an SR-model state index."""

    @abc.abstractmethod
    def reset(self) -> int:
        """Reset history; return the initial SR state index."""

    @abc.abstractmethod
    def update(self, arrivals: int) -> int:
        """Fold one slice's arrival count in; return the new state index."""


class NearestArrivalTracker(ArrivalTracker):
    """Track the SR state whose arrival count is nearest the observation.

    The right tracker for memoryless multi-level SR models: each slice
    maps to the state generating the closest request count (exact for
    the common ``z in {0, 1}`` two-state workloads).
    """

    def __init__(self, requester: ServiceRequester):
        self._counts = requester.arrival_counts
        self._initial = int(np.argmin(self._counts))

    def reset(self) -> int:
        return self._initial

    def update(self, arrivals: int) -> int:
        return int(np.argmin(np.abs(self._counts - int(arrivals))))


@dataclass
class TraceSimulationResult:
    """Aggregate output of a trace-driven simulation.

    Attributes
    ----------
    n_slices:
        Replayed slices (= length of the discretized trace).
    mean_power:
        Average power per slice (from the SP power table).
    mean_queue_length:
        Average queue occupancy at slice starts (the paper's default
        performance penalty).
    mean_penalty:
        Average of the custom penalty function (equals
        ``mean_queue_length`` when no custom penalty is given).
    arrivals / serviced / lost:
        Physical request counters.
    loss_event_slices:
        Slices where arrivals hit a full queue.
    command_counts / provider_occupancy:
        Usage histograms, as in the Markov engine.
    """

    n_slices: int
    mean_power: float
    mean_queue_length: float
    mean_penalty: float
    arrivals: int
    serviced: int
    lost: int
    loss_event_slices: int
    command_counts: np.ndarray = field(repr=False)
    provider_occupancy: np.ndarray = field(repr=False)


def simulate_trace(
    system: PowerManagedSystem,
    agent: PolicyAgent,
    arrival_counts,
    rng: np.random.Generator,
    tracker: ArrivalTracker | None = None,
    penalty_fn: Callable[[int, int, int], float] | None = None,
    initial_provider_state=None,
) -> TraceSimulationResult:
    """Replay a discretized arrival trace against the system and agent.

    Parameters
    ----------
    system:
        The composed system; only its SP dynamics and queue are
        exercised (arrivals come from the trace).
    agent:
        The power-management policy under test.
    arrival_counts:
        Integer array: requests arriving in each slice (the output of
        :func:`repro.traces.discretize.discretize_timestamps`).
    rng:
        Drives SP transitions and service Bernoullis.
    tracker:
        SR-state inference from arrivals; defaults to
        :class:`NearestArrivalTracker` on the system's requester.
    penalty_fn:
        ``f(provider_state_index, queue_length, arrivals_this_slice)``
        accumulated each slice; defaults to the queue length (the
        paper's standard penalty).
    initial_provider_state:
        SP start state (name or index); defaults to state 0.
    """
    trace = np.asarray(arrival_counts, dtype=int)
    if trace.ndim != 1 or trace.size == 0:
        raise ValidationError(
            f"arrival_counts must be a non-empty 1-D array, got shape {trace.shape}"
        )
    if np.any(trace < 0):
        raise ValidationError("arrival_counts must be non-negative")

    if tracker is None:
        tracker = NearestArrivalTracker(system.requester)
    if penalty_fn is None:
        penalty_fn = lambda s, q, z: float(q)  # noqa: E731 - default penalty

    s = (
        0
        if initial_provider_state is None
        else system.provider.chain.state_index(initial_provider_state)
    )
    agent.reset()
    r_obs = tracker.reset()

    sp_cum = np.cumsum(system.provider.chain.tensor, axis=2)
    rates = system.provider.service_rate_matrix
    power = system.provider.power_matrix
    capacity = system.queue.capacity
    n_sp_states = system.provider.n_states

    q = 0
    prev_arrivals = 0
    total_power = 0.0
    total_queue = 0.0
    total_penalty = 0.0
    total_serviced = 0
    total_lost = 0
    loss_event_slices = 0
    command_counts = np.zeros(system.n_commands, dtype=np.int64)
    provider_occupancy = np.zeros(n_sp_states, dtype=np.int64)

    for t in range(trace.size):
        observation = Observation(
            provider_state=s,
            requester_state=r_obs,
            queue_length=q,
            arrivals=prev_arrivals,
            slice_index=t,
        )
        a = int(agent.select_command(observation, rng))
        if not 0 <= a < system.n_commands:
            raise ValidationError(
                f"agent returned command {a}, valid range is "
                f"[0, {system.n_commands})"
            )

        total_power += power[s, a]
        total_queue += q
        total_penalty += penalty_fn(s, q, prev_arrivals)
        command_counts[a] += 1
        provider_occupancy[s] += 1
        if prev_arrivals > 0 and q == capacity:
            loss_event_slices += 1

        # --- transition driven by the trace ---------------------------
        z = int(trace[t])
        s_next = int(np.searchsorted(sp_cum[a, s], rng.random()))
        if s_next >= n_sp_states:
            s_next = n_sp_states - 1
        pending = q + z
        served = 0
        if pending > 0 and rng.random() < rates[s, a]:
            served = 1
        q_next = min(pending - served, capacity)
        total_lost += max(pending - served - capacity, 0)
        total_serviced += served

        r_obs = tracker.update(z)
        prev_arrivals = z
        s, q = s_next, q_next

    n = trace.size
    return TraceSimulationResult(
        n_slices=n,
        mean_power=total_power / n,
        mean_queue_length=total_queue / n,
        mean_penalty=total_penalty / n,
        arrivals=int(trace.sum()),
        serviced=total_serviced,
        lost=total_lost,
        loss_event_slices=loss_event_slices,
        command_counts=command_counts,
        provider_occupancy=provider_occupancy,
    )
