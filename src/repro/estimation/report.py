"""Model validation: goodness-of-fit, stationarity, confidence bounds.

The paper validates extracted SR models by simulating them and eyeing
the metrics ("to check the quality of the Markov model").  The
estimation layer makes that check numeric:

* :func:`chi_square_transitions` — Pearson chi-square of a fitted
  chain's transition rows against an observed stream (held-out data
  makes this a proper goodness-of-fit test);
* :func:`split_half_stationarity` — fit the first and second halves of
  the stream independently and z-test every shared transition
  probability; a regime switch (paper Example 7.1) shows up as a large
  maximum z-score;
* :func:`transition_confidence_intervals` — Wilson-score half-widths
  for every fitted transition probability;
* :class:`FitReport` — the bundle of all checks for one fitted
  workload, JSON-able for the ``fit`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.stats import chi2 as chi2_distribution

from repro.estimation.chain_fit import ChainFit, ChainSelection
from repro.estimation.mmpp_fit import MMPP2Fit, PoissonFit
from repro.traces.extractor import KMemoryModel, SRExtractor, _window_indices
from repro.util.tables import format_table
from repro.util.validation import ValidationError

__all__ = [
    "ChiSquareResult",
    "FitReport",
    "StationarityResult",
    "chi_square_transitions",
    "split_half_stationarity",
    "transition_confidence_intervals",
]


def _count_transitions(model: KMemoryModel, counts) -> np.ndarray:
    """Transition counts of a stream under ``model``'s state encoding."""
    levels = np.clip(
        np.asarray(counts, dtype=int).reshape(-1), 0, model.max_level
    )
    n = model.n_states
    if levels.size <= model.memory:
        return np.zeros((n, n))
    indices = _window_indices(levels, model.memory, model.max_level + 1)
    pairs = indices[:-1] * n + indices[1:]
    return np.bincount(pairs, minlength=n * n).reshape(n, n).astype(float)


@dataclass(frozen=True)
class ChiSquareResult:
    """Pearson chi-square of fitted rows against observed transitions.

    Attributes
    ----------
    statistic / dof / p_value:
        The pooled chi-square statistic, its degrees of freedom and the
        upper-tail p-value (1.0 when no cell had enough data).
    n_cells:
        Transition cells that met the expected-count threshold.
    passed:
        ``p_value >= alpha`` — the observed stream is consistent with
        the fitted chain.
    alpha:
        Significance level the verdict used.
    """

    statistic: float
    dof: int
    p_value: float
    n_cells: int
    passed: bool
    alpha: float

    def describe(self) -> str:
        """One-line verdict."""
        verdict = "consistent" if self.passed else "REJECTED"
        return (
            f"chi-square {self.statistic:.2f} on {self.dof} dof "
            f"(p={self.p_value:.3g}) -> {verdict} at alpha={self.alpha}"
        )


def chi_square_transitions(
    model: KMemoryModel,
    counts,
    alpha: float = 0.01,
    min_expected: float = 5.0,
) -> ChiSquareResult:
    """Chi-square test of ``model`` against an observed count stream.

    Expected cell counts are ``row_total * p`` under the fitted
    probabilities; cells below ``min_expected`` are excluded (the
    classical validity rule).  Degrees of freedom are
    ``sum_rows (used_cells - 1)``.  Testing the *training* stream is a
    smoothing sanity check; pass held-out data for a real test — the
    :class:`FitReport` builder fits the first half and tests the
    second.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.traces.extractor import SRExtractor
    >>> rng = np.random.default_rng(0)
    >>> stream = (rng.random(5000) < 0.3).astype(int)
    >>> model = SRExtractor(memory=1).fit(stream[:2500])
    >>> chi_square_transitions(model, stream[2500:]).passed
    True
    """
    if not 0.0 < alpha < 1.0:
        raise ValidationError(f"alpha must be in (0, 1), got {alpha!r}")
    observed = _count_transitions(model, counts)
    row_totals = observed.sum(axis=1, keepdims=True)
    expected = row_totals * model.matrix
    usable = expected >= float(min_expected)

    statistic = 0.0
    dof = 0
    n_cells = 0
    for row in range(observed.shape[0]):
        cells = usable[row]
        used = int(cells.sum())
        if used < 2:
            continue  # a single usable cell carries no test
        diff = observed[row, cells] - expected[row, cells]
        statistic += float((diff * diff / expected[row, cells]).sum())
        dof += used - 1
        n_cells += used
    if dof == 0:
        return ChiSquareResult(
            statistic=0.0, dof=0, p_value=1.0, n_cells=0,
            passed=True, alpha=float(alpha),
        )
    p_value = float(chi2_distribution.sf(statistic, dof))
    return ChiSquareResult(
        statistic=statistic,
        dof=dof,
        p_value=p_value,
        n_cells=n_cells,
        passed=p_value >= alpha,
        alpha=float(alpha),
    )


@dataclass(frozen=True)
class StationarityResult:
    """Split-half comparison of the fitted transition structure.

    Attributes
    ----------
    max_z_score:
        Largest two-proportion z-statistic over transitions observed in
        both halves.
    max_abs_difference:
        Largest absolute probability difference over those transitions.
    n_compared:
        Transitions compared.
    stationary:
        ``max_z_score <= z_threshold`` — no evidence of a regime change
        between the halves.
    z_threshold:
        The verdict threshold.
    """

    max_z_score: float
    max_abs_difference: float
    n_compared: int
    stationary: bool
    z_threshold: float

    def describe(self) -> str:
        """One-line verdict."""
        verdict = "stationary" if self.stationary else "NONSTATIONARY"
        return (
            f"split-half max |z| = {self.max_z_score:.2f} "
            f"(max |dp| = {self.max_abs_difference:.3f} over "
            f"{self.n_compared} transitions) -> {verdict}"
        )


def split_half_stationarity(
    counts,
    memory: int = 1,
    max_level: int = 1,
    z_threshold: float = 5.0,
    min_row_count: int = 10,
) -> StationarityResult:
    """Fit both halves of the stream and z-test every shared transition.

    For each transition observed at least ``min_row_count`` times from
    its source state in *both* halves, the two empirical probabilities
    are compared with a pooled two-proportion z-test.  A nonstationary
    stream — e.g. the paper's merged editing+compilation workload —
    produces z-scores far above any reasonable threshold.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(1)
    >>> calm = (rng.random(3000) < 0.1).astype(int)
    >>> split_half_stationarity(np.concatenate([calm, calm])).stationary
    True
    """
    arr = np.asarray(counts, dtype=int).reshape(-1)
    if arr.size < 4 * (memory + 1):
        raise ValidationError(
            f"need at least {4 * (memory + 1)} slices for a split-half "
            f"check, got {arr.size}"
        )
    half = arr.size // 2
    extractor = SRExtractor(memory=memory, max_level=max_level, smoothing=0.0)
    first = extractor.fit(arr[:half])
    second = extractor.fit(arr[half:])

    first_counts = _count_transitions(first, arr[:half])
    second_counts = _count_transitions(second, arr[half:])
    n1 = first_counts.sum(axis=1)
    n2 = second_counts.sum(axis=1)

    max_z = 0.0
    max_diff = 0.0
    compared = 0
    for row in range(first.n_states):
        if n1[row] < min_row_count or n2[row] < min_row_count:
            continue
        for col in range(first.n_states):
            if first_counts[row, col] == 0 and second_counts[row, col] == 0:
                continue
            p1 = first_counts[row, col] / n1[row]
            p2 = second_counts[row, col] / n2[row]
            pooled = (first_counts[row, col] + second_counts[row, col]) / (
                n1[row] + n2[row]
            )
            variance = pooled * (1.0 - pooled) * (1.0 / n1[row] + 1.0 / n2[row])
            if variance <= 0.0:
                continue
            z = abs(p1 - p2) / float(np.sqrt(variance))
            compared += 1
            max_z = max(max_z, z)
            max_diff = max(max_diff, abs(p1 - p2))
    return StationarityResult(
        max_z_score=float(max_z),
        max_abs_difference=float(max_diff),
        n_compared=compared,
        stationary=bool(max_z <= float(z_threshold)),
        z_threshold=float(z_threshold),
    )


def transition_confidence_intervals(
    model: KMemoryModel, confidence: float = 0.95
) -> np.ndarray:
    """Wilson-score half-widths for every fitted transition probability.

    Returns an ``(n_states, n_states)`` array; rows never observed get
    half-width 1 (no information).  The Wilson interval stays honest at
    the probability boundaries where the naive normal interval
    collapses to zero width.

    Examples
    --------
    >>> from repro.traces.extractor import SRExtractor
    >>> model = SRExtractor(memory=1).fit([0, 1] * 200)
    >>> float(transition_confidence_intervals(model)[0, 1]) < 0.1
    True
    """
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    # Two-sided normal quantile via the chi-square inverse CDF:
    # z^2 = chi2.ppf(confidence, df=1).
    z = float(np.sqrt(chi2_distribution.ppf(confidence, 1)))
    n = model.state_counts.astype(float)[:, None]
    p = model.matrix
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = 1.0 + z * z / n
        center = (p + z * z / (2.0 * n)) / denom
        spread = (
            z
            * np.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n))
            / denom
        )
        lower = np.maximum(center - spread, 0.0)
        upper = np.minimum(center + spread, 1.0)
        half_widths = (upper - lower) / 2.0
    half_widths = np.where(n > 0, half_widths, 1.0)
    return half_widths


@dataclass
class FitReport:
    """Everything the estimation layer learned about one workload.

    Attributes
    ----------
    n_slices / mean_rate:
        Stream length and mean requests per slice.
    selection:
        The chain structure search (BIC table included).
    chi_square:
        Held-out goodness-of-fit of the selected structure (fitted on
        the first half, tested on the second).
    stationarity:
        Split-half regime check.
    max_ci_half_width:
        Largest Wilson half-width over fitted transitions.
    confidence:
        Confidence level of the intervals.
    mmpp2 / poisson:
        Generator fits (``None`` when not requested or not fittable).
    """

    n_slices: int
    mean_rate: float
    selection: ChainSelection
    chi_square: ChiSquareResult
    stationarity: StationarityResult
    max_ci_half_width: float
    confidence: float
    mmpp2: MMPP2Fit | None = None
    poisson: PoissonFit | None = None
    warnings: list[str] = field(default_factory=list)

    @property
    def chain(self) -> ChainFit:
        """The selected chain fit."""
        return self.selection.best

    @property
    def model(self) -> KMemoryModel:
        """The selected arrival-chain model."""
        return self.selection.best.model

    @property
    def valid(self) -> bool:
        """True when both statistical checks passed."""
        return self.chi_square.passed and self.stationarity.stationary

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"fitted workload over {self.n_slices} slices "
            f"(mean rate {self.mean_rate:.4g} requests/slice)",
            self.selection.table(),
            f"  {self.chi_square.describe()}",
            f"  {self.stationarity.describe()}",
            f"  max transition CI half-width: "
            f"{self.max_ci_half_width:.4f} at {self.confidence:.0%}",
        ]
        generators = []
        if self.mmpp2 is not None:
            converged = "" if self.mmpp2.converged else " (NOT converged)"
            generators.append(
                (
                    "mmpp2",
                    self.mmpp2.describe() + converged,
                    round(self.mmpp2.bic, 2),
                )
            )
        if self.poisson is not None:
            generators.append(
                ("poisson", self.poisson.describe(), round(self.poisson.bic, 2))
            )
        if generators:
            lines.append(
                format_table(
                    ["generator", "parameters", "bic"],
                    generators,
                    title="generator fits",
                )
            )
        for warning in self.warnings:
            lines.append(f"  warning: {warning}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-able report (for the ``fit`` CLI's ``--report``)."""
        document = {
            "n_slices": self.n_slices,
            "mean_rate": self.mean_rate,
            "valid": self.valid,
            "selection": self.selection.to_dict(),
            "chi_square": {
                "statistic": self.chi_square.statistic,
                "dof": self.chi_square.dof,
                "p_value": self.chi_square.p_value,
                "passed": self.chi_square.passed,
                "alpha": self.chi_square.alpha,
            },
            "stationarity": {
                "max_z_score": self.stationarity.max_z_score,
                "max_abs_difference": self.stationarity.max_abs_difference,
                "n_compared": self.stationarity.n_compared,
                "stationary": self.stationarity.stationary,
                "z_threshold": self.stationarity.z_threshold,
            },
            "confidence_intervals": {
                "confidence": self.confidence,
                "max_half_width": self.max_ci_half_width,
            },
            "warnings": list(self.warnings),
        }
        if self.mmpp2 is not None:
            document["mmpp2"] = {
                **self.mmpp2.to_stream_spec(),
                "log_likelihood": self.mmpp2.log_likelihood,
                "bic": self.mmpp2.bic,
                "converged": self.mmpp2.converged,
                "n_iterations": self.mmpp2.n_iterations,
            }
        if self.poisson is not None:
            document["poisson"] = {
                **self.poisson.to_stream_spec(),
                "log_likelihood": self.poisson.log_likelihood,
                "bic": self.poisson.bic,
            }
        return document
