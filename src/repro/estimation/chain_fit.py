"""Maximum-likelihood fitting of arrival chains from discretized traces.

The paper's SR extractor (Section V) fits a k-memory Markov model for a
*given* memory ``k`` and arrival-level cap.  This module turns that
construction into proper model *identification*: candidate
``(memory, max_level)`` structures are fitted by MLE with Dirichlet
smoothing and scored with information criteria (BIC by default), so the
order and state count are chosen by the data instead of by hand — the
step Paleologo et al. performed manually when they fitted the
disk-drive and web-server workloads from measured traces.

* :func:`fit_arrival_chain` — one MLE fit, wrapped in a :class:`ChainFit`
  carrying the likelihood and the BIC/AIC scores;
* :func:`select_arrival_chain` — fit a candidate grid and pick the
  best-scoring structure (a :class:`ChainSelection`);
* :class:`ArrivalChainEstimator` — a picklable ``fit(counts) -> model``
  object with the same selection built in, pluggable into
  :class:`~repro.policies.adaptive.AdaptivePolicyAgent`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.extractor import KMemoryModel, SRExtractor
from repro.util.tables import format_table
from repro.util.validation import ValidationError

__all__ = [
    "ArrivalChainEstimator",
    "ChainFit",
    "ChainSelection",
    "fit_arrival_chain",
    "select_arrival_chain",
]


@dataclass(frozen=True)
class ChainFit:
    """One fitted arrival chain with its information-criterion scores.

    Attributes
    ----------
    model:
        The fitted :class:`~repro.traces.extractor.KMemoryModel`.
    log_likelihood:
        Log-likelihood of the training stream under the fitted model.
    n_parameters:
        Free parameters counted for the information criteria: every
        source state *observed* in training contributes
        ``max_level`` free probabilities (its legal successor row sums
        to one).  Unobserved padding states carry no data and are not
        charged.
    n_observations:
        Transitions counted during fitting.
    """

    model: KMemoryModel
    log_likelihood: float
    n_parameters: int
    n_observations: int

    @property
    def memory(self) -> int:
        """History length ``k`` of the fitted model."""
        return self.model.memory

    @property
    def max_level(self) -> int:
        """Arrival-level cap of the fitted model."""
        return self.model.max_level

    @property
    def bic(self) -> float:
        """Bayesian information criterion (lower is better)."""
        n = max(self.n_observations, 1)
        return self.n_parameters * float(np.log(n)) - 2.0 * self.log_likelihood

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_parameters - 2.0 * self.log_likelihood

    def describe(self) -> str:
        """One-line structure summary."""
        return (
            f"chain(memory={self.memory}, max_level={self.max_level}, "
            f"states={self.model.n_states})"
        )


def fit_arrival_chain(
    counts,
    memory: int = 1,
    max_level: int = 1,
    smoothing: float = 0.5,
) -> ChainFit:
    """MLE-fit one k-memory arrival chain and score it.

    Parameters
    ----------
    counts:
        Per-slice arrival counts (the output of
        :meth:`~repro.traces.trace.Trace.discretize`).
    memory / max_level:
        Structure of the candidate chain (see
        :class:`~repro.traces.extractor.SRExtractor`).
    smoothing:
        Dirichlet (add-alpha) pseudo-count applied to every legal
        successor; keeps rare transitions alive so the likelihood of
        the training stream stays finite.

    Examples
    --------
    >>> fit = fit_arrival_chain([0, 0, 1, 0, 1, 1, 0, 0], memory=1)
    >>> fit.memory, fit.n_parameters
    (1, 2)
    >>> fit.bic > 0
    True
    """
    extractor = SRExtractor(
        memory=memory, max_level=max_level, smoothing=smoothing
    )
    model = extractor.fit(counts)
    observed_sources = int((model.state_counts > 0).sum())
    n_parameters = max(observed_sources, 1) * model.max_level
    return ChainFit(
        model=model,
        log_likelihood=model.log_likelihood(counts),
        n_parameters=n_parameters,
        n_observations=model.n_observations,
    )


@dataclass(frozen=True)
class ChainSelection:
    """Result of a BIC/AIC model search over chain structures.

    Attributes
    ----------
    best:
        The winning :class:`ChainFit` under the requested criterion.
    candidates:
        Every fitted candidate, in search order.
    criterion:
        ``"bic"`` or ``"aic"``.
    """

    best: ChainFit
    candidates: tuple[ChainFit, ...]
    criterion: str

    def score(self, fit: ChainFit) -> float:
        """The selection score of one candidate (lower is better)."""
        return fit.bic if self.criterion == "bic" else fit.aic

    def table(self) -> str:
        """Render the candidate grid as a comparison table."""
        rows = [
            (
                fit.memory,
                fit.max_level,
                fit.model.n_states,
                fit.n_parameters,
                round(fit.log_likelihood, 2),
                round(self.score(fit), 2),
                "*" if fit is self.best else "",
            )
            for fit in self.candidates
        ]
        return format_table(
            ["memory", "max_level", "states", "params", "log_lik",
             self.criterion, "best"],
            rows,
            title=f"arrival-chain selection ({self.criterion})",
        )

    def to_dict(self) -> dict:
        """JSON-able summary of the search."""
        return {
            "criterion": self.criterion,
            "selected": {
                "memory": self.best.memory,
                "max_level": self.best.max_level,
                "score": self.score(self.best),
            },
            "candidates": [
                {
                    "memory": fit.memory,
                    "max_level": fit.max_level,
                    "n_states": fit.model.n_states,
                    "n_parameters": fit.n_parameters,
                    "log_likelihood": fit.log_likelihood,
                    "score": self.score(fit),
                }
                for fit in self.candidates
            ],
        }


def _default_max_levels(counts: np.ndarray, cap: int = 3) -> tuple[int, ...]:
    """Candidate level caps: 1 up to the observed maximum (bounded)."""
    observed = int(counts.max()) if counts.size else 1
    top = min(max(observed, 1), cap)
    return tuple(range(1, top + 1))


def select_arrival_chain(
    counts,
    memories=(1, 2, 3),
    max_levels=None,
    smoothing: float = 0.5,
    criterion: str = "bic",
    max_states: int = 64,
) -> ChainSelection:
    """Search chain structures and keep the best-scoring fit.

    Candidates whose state count exceeds ``max_states`` or that need
    more slices than the stream provides are skipped; at least one
    candidate must survive.

    Examples
    --------
    A memoryless stream should not pay for extra memory::

        >>> import numpy as np
        >>> rng = np.random.default_rng(0)
        >>> stream = (rng.random(4000) < 0.3).astype(int)
        >>> select_arrival_chain(stream, memories=(1, 2, 3)).best.memory
        1
    """
    if criterion not in ("bic", "aic"):
        raise ValidationError(
            f"criterion must be 'bic' or 'aic', got {criterion!r}"
        )
    arr = np.asarray(counts, dtype=int).reshape(-1)
    if max_levels is None:
        max_levels = _default_max_levels(arr)
    candidates: list[ChainFit] = []
    for max_level in max_levels:
        for memory in memories:
            if (int(max_level) + 1) ** int(memory) > max_states:
                continue
            try:
                candidates.append(
                    fit_arrival_chain(
                        arr,
                        memory=int(memory),
                        max_level=int(max_level),
                        smoothing=smoothing,
                    )
                )
            except ValidationError:
                continue  # stream too short for this memory
    if not candidates:
        raise ValidationError(
            f"no fittable chain structure for a {arr.size}-slice stream "
            f"(memories={tuple(memories)}, max_levels={tuple(max_levels)}, "
            f"max_states={max_states})"
        )
    key = (lambda f: f.bic) if criterion == "bic" else (lambda f: f.aic)
    best = min(candidates, key=key)
    return ChainSelection(
        best=best, candidates=tuple(candidates), criterion=criterion
    )


class ArrivalChainEstimator:
    """A reusable, picklable ``fit(counts) -> KMemoryModel`` estimator.

    This is the object the runtime plugs into
    :class:`~repro.policies.adaptive.AdaptivePolicyAgent`: each refit
    re-runs the BIC structure search over the sliding window, so the
    agent's model order adapts along with its parameters.  The last
    search is kept on :attr:`last_selection` for telemetry.

    Examples
    --------
    >>> estimator = ArrivalChainEstimator(memories=(1, 2))
    >>> model = estimator.fit([0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
    >>> estimator.last_selection.best.model is model
    True
    """

    def __init__(
        self,
        memories=(1, 2, 3),
        max_levels=None,
        smoothing: float = 0.5,
        criterion: str = "bic",
        max_states: int = 64,
    ):
        if criterion not in ("bic", "aic"):
            raise ValidationError(
                f"criterion must be 'bic' or 'aic', got {criterion!r}"
            )
        self.memories = tuple(int(m) for m in memories)
        self.max_levels = (
            None if max_levels is None else tuple(int(v) for v in max_levels)
        )
        self.smoothing = float(smoothing)
        self.criterion = str(criterion)
        self.max_states = int(max_states)
        self.last_selection: ChainSelection | None = None

    def fit(self, counts) -> KMemoryModel:
        """Run the structure search; return the winning model."""
        selection = select_arrival_chain(
            counts,
            memories=self.memories,
            max_levels=self.max_levels,
            smoothing=self.smoothing,
            criterion=self.criterion,
            max_states=self.max_states,
        )
        self.last_selection = selection
        return selection.best.model

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return (
            f"chain-estimator(memories={self.memories}, "
            f"criterion={self.criterion})"
        )
