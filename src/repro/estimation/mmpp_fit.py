"""EM fitting of arrival *generators*: MMPP(2) and Poisson streams.

A fitted k-memory chain reproduces slice-level statistics, but the
fleet runtime feeds devices from *online generators*
(:class:`~repro.runtime.streams.MMPP2Stream`,
:class:`~repro.runtime.streams.PoissonStream`).  This module estimates
those generators directly from a discretized trace so a measured
workload can drive arbitrarily long fleet campaigns:

* :func:`fit_poisson` — closed-form MLE of the per-slice rate;
* :func:`fit_mmpp2` — Baum-Welch EM for the slotted two-state
  Markov-modulated process of
  :func:`repro.traces.synthetic.mmpp2_trace`: a hidden idle/busy chain
  with stay probabilities ``p_ii`` / ``p_bb``; busy slices emit one
  request with probability ``e``, idle slices are silent.

Both fits expose ``to_stream_spec()`` returning exactly the fleet-spec
``workload`` mapping :func:`repro.runtime.streams.stream_from_spec`
consumes, so a fitted workload plugs into ``build_fleet`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln

from repro.traces.discretize import binarize
from repro.util.validation import ValidationError, check_probability

__all__ = ["MMPP2Fit", "PoissonFit", "fit_mmpp2", "fit_poisson"]

#: Probabilities are kept inside the open unit interval during EM so
#: the likelihood stays finite and every state remains reachable.
_PROB_FLOOR = 1e-6


def _clip_probability(value: float) -> float:
    return float(min(max(value, _PROB_FLOOR), 1.0 - _PROB_FLOOR))


@dataclass(frozen=True)
class PoissonFit:
    """MLE of a memoryless per-slice arrival process.

    Attributes
    ----------
    rate_per_slice:
        Mean requests per slice (the Poisson MLE).
    log_likelihood:
        Log-likelihood of the training counts.
    n_observations:
        Slices used for the fit.
    """

    rate_per_slice: float
    log_likelihood: float
    n_observations: int

    #: One free parameter: the rate.
    n_parameters: int = 1

    @property
    def bic(self) -> float:
        """Bayesian information criterion (lower is better)."""
        n = max(self.n_observations, 1)
        return self.n_parameters * float(np.log(n)) - 2.0 * self.log_likelihood

    def to_stream_spec(self) -> dict:
        """The fleet-spec ``workload`` mapping for this fit."""
        return {"type": "poisson", "rate_per_slice": self.rate_per_slice}

    def describe(self) -> str:
        """One-line summary."""
        return f"poisson(rate={self.rate_per_slice:.4g})"


def fit_poisson(counts) -> PoissonFit:
    """Closed-form Poisson MLE over per-slice arrival counts.

    Examples
    --------
    >>> fit = fit_poisson([0, 1, 0, 2, 1, 0])
    >>> round(fit.rate_per_slice, 4)
    0.6667
    """
    arr = np.asarray(counts, dtype=float).reshape(-1)
    if arr.size == 0:
        raise ValidationError("fit_poisson needs a non-empty count stream")
    if np.any(arr < 0):
        raise ValidationError("arrival counts must be non-negative")
    rate = float(arr.mean())
    if rate <= 0.0:
        # An all-silent stream: the MLE is rate 0 with certain outcome.
        return PoissonFit(
            rate_per_slice=0.0, log_likelihood=0.0, n_observations=arr.size
        )
    log_likelihood = float(
        np.sum(arr * np.log(rate) - rate - gammaln(arr + 1.0))
    )
    return PoissonFit(
        rate_per_slice=rate,
        log_likelihood=log_likelihood,
        n_observations=arr.size,
    )


@dataclass(frozen=True)
class MMPP2Fit:
    """An EM-fitted slotted two-state Markov-modulated process.

    Attributes
    ----------
    p_stay_idle / p_stay_busy:
        Self-transition probabilities of the hidden chain.
    busy_arrival_probability:
        Chance a busy slice emits a request.
    log_likelihood:
        Log-likelihood of the (binarized) training stream at the final
        parameters.
    n_iterations:
        EM iterations performed.
    converged:
        Whether the likelihood improvement fell below tolerance before
        the iteration cap.
    n_observations:
        Slices used for the fit.
    """

    p_stay_idle: float
    p_stay_busy: float
    busy_arrival_probability: float
    log_likelihood: float
    n_iterations: int
    converged: bool
    n_observations: int

    #: Three free parameters: two stay probabilities + emission.
    n_parameters: int = 3

    @property
    def bic(self) -> float:
        """Bayesian information criterion (lower is better)."""
        n = max(self.n_observations, 1)
        return self.n_parameters * float(np.log(n)) - 2.0 * self.log_likelihood

    def to_stream_spec(self) -> dict:
        """The fleet-spec ``workload`` mapping for this fit."""
        return {
            "type": "mmpp2",
            "p_stay_idle": self.p_stay_idle,
            "p_stay_busy": self.p_stay_busy,
            "busy_arrival_probability": self.busy_arrival_probability,
        }

    def to_requester(self):
        """The equivalent two-state :class:`ServiceRequester`.

        Exact when ``busy_arrival_probability`` is 1 (busy slices always
        emit); otherwise the marginal emission chain — the standard
        Markov approximation the paper's two-state SR models embody.
        """
        from repro.core.components import ServiceRequester
        from repro.markov.chain import MarkovChain

        chain = MarkovChain(
            [
                [self.p_stay_idle, 1.0 - self.p_stay_idle],
                [1.0 - self.p_stay_busy, self.p_stay_busy],
            ],
            ["0", "1"],
        )
        return ServiceRequester(chain, arrivals=[0, 1])

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"mmpp2(p_ii={self.p_stay_idle:.4g}, "
            f"p_bb={self.p_stay_busy:.4g}, "
            f"emit={self.busy_arrival_probability:.4g})"
        )


def _initial_parameters(obs: np.ndarray) -> tuple[float, float, float]:
    """Method-of-runs starting point: stay ≈ 1 - 1/(mean run length)."""
    edges = np.flatnonzero(np.diff(obs) != 0)
    boundaries = np.concatenate(([0], edges + 1, [obs.size]))
    lengths = np.diff(boundaries)
    values = obs[boundaries[:-1]]
    mean_zero = float(lengths[values == 0].mean()) if np.any(values == 0) else 2.0
    mean_one = float(lengths[values == 1].mean()) if np.any(values == 1) else 2.0
    p_ii = _clip_probability(1.0 - 1.0 / max(mean_zero, 1.25))
    p_bb = _clip_probability(1.0 - 1.0 / max(mean_one, 1.25))
    return p_ii, p_bb, 0.9


def fit_mmpp2(
    counts,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    init: tuple[float, float, float] | None = None,
    max_slices: int = 20_000,
) -> MMPP2Fit:
    """Baum-Welch EM for the slotted MMPP(2) arrival process.

    The stream is binarized (the process emits at most one request per
    slice) and, beyond ``max_slices``, truncated — EM is a sequential
    forward-backward pass, and 20k slices already put the parameter
    standard errors around the percent level.

    The hidden chain matches the generator in
    :func:`repro.traces.synthetic.mmpp2_trace` exactly: the chain starts
    idle, *transitions first* each slice, then the new state emits.

    Parameters
    ----------
    counts:
        Per-slice arrival counts.
    max_iterations / tolerance:
        EM stops when the log-likelihood gain drops below
        ``tolerance * (1 + |LL|)`` or the iteration cap is hit.
    init:
        Optional ``(p_stay_idle, p_stay_busy, emit)`` starting point;
        defaults to a method-of-runs estimate.
    max_slices:
        Truncation length for the EM pass.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.traces.synthetic import mmpp2_trace
    >>> trace = mmpp2_trace(0.95, 0.85, 8000, 1.0, np.random.default_rng(7))
    >>> fit = fit_mmpp2(trace.discretize(1.0))
    >>> abs(fit.p_stay_idle - 0.95) < 0.05
    True
    """
    obs = binarize(counts)
    if obs.size < 2:
        raise ValidationError(
            f"fit_mmpp2 needs at least 2 slices, got {obs.size}"
        )
    max_slices = int(max_slices)
    if max_slices < 2:
        raise ValidationError(f"max_slices must be >= 2, got {max_slices}")
    if obs.size > max_slices:
        obs = obs[:max_slices]
    if not np.any(obs):
        # No requests at all: the busy state is unidentifiable.  Report
        # the degenerate always-idle fit rather than letting EM wander.
        return MMPP2Fit(
            p_stay_idle=1.0 - _PROB_FLOOR,
            p_stay_busy=0.5,
            busy_arrival_probability=0.5,
            log_likelihood=0.0,
            n_iterations=0,
            converged=True,
            n_observations=obs.size,
        )

    if init is None:
        p_ii, p_bb, emit = _initial_parameters(obs)
    else:
        p_ii = _clip_probability(check_probability(init[0], "init p_stay_idle"))
        p_bb = _clip_probability(check_probability(init[1], "init p_stay_busy"))
        emit = _clip_probability(check_probability(init[2], "init emit"))

    o = obs.tolist()
    n = len(o)
    log_likelihood = float("-inf")
    converged = False
    iterations = 0
    while not converged and iterations < max_iterations:
        iterations += 1
        # --- forward pass (scaled).  State 0 = idle (emits nothing),
        # state 1 = busy (emits with probability `emit`).  The chain
        # transitions before emitting; the pre-trace state is idle.
        alpha0 = [0.0] * n
        alpha1 = [0.0] * n
        scale = [0.0] * n
        b0 = (1.0, 0.0)  # idle emission likelihood for o = 0 / 1
        b1 = (1.0 - emit, emit)
        a0 = p_ii * b0[o[0]]
        a1 = (1.0 - p_ii) * b1[o[0]]
        c = a0 + a1
        alpha0[0], alpha1[0], scale[0] = a0 / c, a1 / c, c
        for t in range(1, n):
            prev0, prev1 = alpha0[t - 1], alpha1[t - 1]
            a0 = (prev0 * p_ii + prev1 * (1.0 - p_bb)) * b0[o[t]]
            a1 = (prev0 * (1.0 - p_ii) + prev1 * p_bb) * b1[o[t]]
            c = a0 + a1
            alpha0[t], alpha1[t], scale[t] = a0 / c, a1 / c, c

        # --- backward pass with on-the-fly sufficient statistics.
        beta0 = beta1 = 1.0
        xi00 = xi11 = 0.0  # expected idle->idle / busy->busy counts
        gamma0_head = 0.0  # sum of P(idle at t), t = 0 .. n-2
        gamma1_head = 0.0
        gamma1_total = 0.0
        gamma1_emit = 0.0
        g1 = alpha1[n - 1] * beta1
        gamma1_total += g1
        gamma1_emit += g1 * o[n - 1]
        for t in range(n - 2, -1, -1):
            c_next = scale[t + 1]
            e0 = b0[o[t + 1]] * beta0 / c_next
            e1 = b1[o[t + 1]] * beta1 / c_next
            xi00 += alpha0[t] * p_ii * e0
            xi11 += alpha1[t] * p_bb * e1
            new_beta0 = p_ii * e0 + (1.0 - p_ii) * e1
            new_beta1 = (1.0 - p_bb) * e0 + p_bb * e1
            beta0, beta1 = new_beta0, new_beta1
            g0 = alpha0[t] * beta0
            g1 = alpha1[t] * beta1
            gamma0_head += g0
            gamma1_head += g1
            gamma1_total += g1
            gamma1_emit += g1 * o[t]

        # The t = 0 step is a transition out of the (deterministic)
        # pre-trace idle state; fold it into the idle-row statistics.
        gamma0_at0 = alpha0[0] * beta0
        xi00_virtual = xi00 + gamma0_at0
        idle_row_total = gamma0_head + 1.0
        busy_row_total = gamma1_head

        # --- M-step.
        p_ii = _clip_probability(xi00_virtual / idle_row_total)
        if busy_row_total > 0.0:
            p_bb = _clip_probability(xi11 / busy_row_total)
        if gamma1_total > 0.0:
            emit = _clip_probability(gamma1_emit / gamma1_total)

        new_log_likelihood = float(np.log(scale).sum())
        if abs(new_log_likelihood - log_likelihood) <= tolerance * (
            1.0 + abs(new_log_likelihood)
        ):
            log_likelihood = new_log_likelihood
            converged = True
            break
        log_likelihood = new_log_likelihood

    return MMPP2Fit(
        p_stay_idle=p_ii,
        p_stay_busy=p_bb,
        busy_arrival_probability=emit,
        log_likelihood=log_likelihood,
        n_iterations=iterations,
        converged=converged,
        n_observations=n,
    )
