"""Trace-driven model identification and scenario generation.

The paper's case studies rest on Markov models Paleologo et al. *fitted
from measured traces*; this package reproduces that step as a library
so any trace becomes a new optimizable system:

* :mod:`~repro.estimation.chain_fit` — MLE arrival chains with
  Dirichlet smoothing and BIC/AIC structure selection;
* :mod:`~repro.estimation.mmpp_fit` — EM fitting of MMPP(2)/Poisson
  stream generators for the fleet runtime;
* :mod:`~repro.estimation.provider_fit` — SP estimation from
  state-residency/transition logs (expected transition times, labeled
  power and service samples);
* :mod:`~repro.estimation.report` — chi-square goodness-of-fit,
  split-half stationarity, Wilson confidence intervals, bundled as a
  :class:`FitReport`;
* :mod:`~repro.estimation.workload` — :func:`fit_workload`, the
  one-call front door;
* :mod:`~repro.estimation.scenario` — fitted SR x SP assembled into
  ready-to-optimize systems, system specs and fleet device groups.

End to end: ``repro-dpm fit trace.txt --resolution 1e-3 --out sys.json``
then ``repro-dpm optimize sys.json`` — raw data to optimal policy.
"""

from repro.estimation.chain_fit import (
    ArrivalChainEstimator,
    ChainFit,
    ChainSelection,
    fit_arrival_chain,
    select_arrival_chain,
)
from repro.estimation.mmpp_fit import (
    MMPP2Fit,
    PoissonFit,
    fit_mmpp2,
    fit_poisson,
)
from repro.estimation.provider_fit import (
    ProviderFit,
    ProviderLog,
    TransitionRecord,
    fit_provider,
    sample_provider_log,
)
from repro.estimation.report import (
    ChiSquareResult,
    FitReport,
    StationarityResult,
    chi_square_transitions,
    split_half_stationarity,
    transition_confidence_intervals,
)
from repro.estimation.scenario import (
    assemble_system,
    fleet_group_from_fit,
    fleet_spec_from_fit,
    provider_spec,
    requester_spec_from_model,
    system_spec_from_fit,
)
from repro.estimation.workload import WorkloadFit, fit_workload

__all__ = [
    "ArrivalChainEstimator",
    "ChainFit",
    "ChainSelection",
    "ChiSquareResult",
    "FitReport",
    "MMPP2Fit",
    "PoissonFit",
    "ProviderFit",
    "ProviderLog",
    "StationarityResult",
    "TransitionRecord",
    "WorkloadFit",
    "assemble_system",
    "chi_square_transitions",
    "fit_arrival_chain",
    "fit_mmpp2",
    "fit_poisson",
    "fit_provider",
    "fit_workload",
    "fleet_group_from_fit",
    "fleet_spec_from_fit",
    "provider_spec",
    "requester_spec_from_model",
    "sample_provider_log",
    "select_arrival_chain",
    "split_half_stationarity",
    "system_spec_from_fit",
    "transition_confidence_intervals",
]
