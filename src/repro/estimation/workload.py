"""One-call workload identification: trace in, validated models out.

:func:`fit_workload` is the front door of the estimation layer — it
discretizes (when handed a :class:`~repro.traces.trace.Trace`), runs
the BIC chain-structure search, fits the MMPP(2)/Poisson generators,
and executes the validation battery, returning a :class:`WorkloadFit`
whose pieces plug directly into composition (``to_requester``), the
fleet runtime (``stream_spec``) and the scenario generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.components import ServiceRequester
from repro.estimation.chain_fit import ChainSelection, select_arrival_chain
from repro.estimation.mmpp_fit import (
    MMPP2Fit,
    PoissonFit,
    fit_mmpp2,
    fit_poisson,
)
from repro.estimation.report import (
    FitReport,
    chi_square_transitions,
    split_half_stationarity,
    transition_confidence_intervals,
)
from repro.traces.extractor import KMemoryModel, SRExtractor
from repro.traces.trace import Trace
from repro.util.validation import ValidationError

__all__ = ["WorkloadFit", "fit_workload"]


@dataclass
class WorkloadFit:
    """A fitted, validated workload ready for scenario assembly.

    Attributes
    ----------
    counts:
        The discretized stream the fit used.
    report:
        The full :class:`~repro.estimation.report.FitReport`.
    resolution:
        Seconds per slice (``None`` when raw counts were supplied).
    """

    counts: np.ndarray
    report: FitReport
    resolution: float | None = None

    @property
    def model(self) -> KMemoryModel:
        """The selected arrival-chain model."""
        return self.report.model

    @property
    def selection(self) -> ChainSelection:
        """The chain structure search behind the fit."""
        return self.report.selection

    @property
    def mmpp2(self) -> MMPP2Fit | None:
        """The MMPP(2) generator fit, when one was made."""
        return self.report.mmpp2

    @property
    def poisson(self) -> PoissonFit | None:
        """The Poisson generator fit, when one was made."""
        return self.report.poisson

    def to_requester(self) -> ServiceRequester:
        """The fitted chain as a composable SR model."""
        return self.model.to_requester()

    def stream_spec(self, generator: str = "auto") -> dict:
        """A fleet-spec ``workload`` mapping for the fitted stream.

        ``generator`` picks ``"mmpp2"``, ``"poisson"``, or ``"auto"``
        (the lower-BIC generator fit).
        """
        if generator == "auto":
            candidates = [
                fit
                for fit in (self.report.mmpp2, self.report.poisson)
                if fit is not None
            ]
            if not candidates:
                raise ValidationError(
                    "no generator fits available; rerun fit_workload with "
                    "generators=True"
                )
            return min(candidates, key=lambda fit: fit.bic).to_stream_spec()
        if generator == "mmpp2":
            if self.report.mmpp2 is None:
                raise ValidationError("no MMPP(2) fit available")
            return self.report.mmpp2.to_stream_spec()
        if generator == "poisson":
            if self.report.poisson is None:
                raise ValidationError("no Poisson fit available")
            return self.report.poisson.to_stream_spec()
        raise ValidationError(
            f"unknown generator {generator!r}; use auto/mmpp2/poisson"
        )

    def summary(self) -> str:
        """The report's human-readable summary."""
        return self.report.summary()


def fit_workload(
    source,
    resolution: float | None = None,
    memories=(1, 2, 3),
    max_levels=None,
    smoothing: float = 0.5,
    criterion: str = "bic",
    max_states: int = 64,
    generators: bool = True,
    alpha: float = 0.01,
    z_threshold: float = 5.0,
    confidence: float = 0.95,
    em_max_slices: int = 20_000,
) -> WorkloadFit:
    """Identify a workload model from a trace or count stream.

    Parameters
    ----------
    source:
        A :class:`~repro.traces.trace.Trace` (requires ``resolution``)
        or a per-slice arrival-count array.
    resolution:
        Seconds per slice for trace discretization.
    memories / max_levels / smoothing / criterion / max_states:
        Chain-structure search options
        (:func:`~repro.estimation.chain_fit.select_arrival_chain`).
    generators:
        Also fit the MMPP(2) and Poisson stream generators.
    alpha / z_threshold / confidence:
        Validation thresholds (chi-square significance, stationarity
        z-cutoff, CI level).
    em_max_slices:
        Truncation length for the EM pass.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.traces.synthetic import mmpp2_trace
    >>> trace = mmpp2_trace(0.95, 0.85, 6000, 1.0, np.random.default_rng(2))
    >>> fit = fit_workload(trace, resolution=1.0, memories=(1, 2))
    >>> fit.report.valid
    True
    >>> fit.model.memory
    1
    """
    if isinstance(source, Trace):
        if resolution is None:
            raise ValidationError(
                "fit_workload needs a resolution to discretize a Trace"
            )
        counts = source.discretize(resolution)
    else:
        counts = np.asarray(source, dtype=int).reshape(-1)
        if np.any(counts < 0):
            raise ValidationError("arrival counts must be non-negative")
    if counts.size < 8:
        raise ValidationError(
            f"fit_workload needs at least 8 slices, got {counts.size}"
        )

    selection = select_arrival_chain(
        counts,
        memories=memories,
        max_levels=max_levels,
        smoothing=smoothing,
        criterion=criterion,
        max_states=max_states,
    )
    best = selection.best

    warnings: list[str] = []
    # Held-out goodness of fit: the first half trains a model of the
    # selected structure, the second half is the test sample.
    half = counts.size // 2
    try:
        held_out_model = SRExtractor(
            memory=best.memory, max_level=best.max_level, smoothing=smoothing
        ).fit(counts[:half])
        chi_square = chi_square_transitions(
            held_out_model, counts[half:], alpha=alpha
        )
    except ValidationError:
        chi_square = chi_square_transitions(best.model, counts, alpha=alpha)
        warnings.append(
            "stream too short for a held-out chi-square; tested in-sample"
        )
    try:
        stationarity = split_half_stationarity(
            counts,
            memory=best.memory,
            max_level=best.max_level,
            z_threshold=z_threshold,
        )
    except ValidationError:
        # The selected memory can demand more slices than a short
        # stream's halves provide; a memory-1 split always fits the
        # >= 8 slices guaranteed above.
        stationarity = split_half_stationarity(
            counts, memory=1, max_level=best.max_level,
            z_threshold=z_threshold,
        )
        warnings.append(
            "stream too short for a split-half check at the selected "
            "memory; checked at memory 1"
        )
    half_widths = transition_confidence_intervals(
        best.model, confidence=confidence
    )
    observed = best.model.state_counts > 0
    max_half_width = (
        float(half_widths[observed].max()) if observed.any() else 1.0
    )

    mmpp2 = None
    poisson = None
    if generators:
        poisson = fit_poisson(counts)
        if counts.max() > 0:
            mmpp2 = fit_mmpp2(counts, max_slices=em_max_slices)
            if not mmpp2.converged:
                warnings.append("MMPP(2) EM hit the iteration cap")
        else:
            warnings.append("all-silent stream: MMPP(2) fit skipped")

    report = FitReport(
        n_slices=int(counts.size),
        mean_rate=float(counts.mean()),
        selection=selection,
        chi_square=chi_square,
        stationarity=stationarity,
        max_ci_half_width=max_half_width,
        confidence=float(confidence),
        mmpp2=mmpp2,
        poisson=poisson,
        warnings=warnings,
    )
    return WorkloadFit(
        counts=counts,
        report=report,
        resolution=None if resolution is None else float(resolution),
    )
